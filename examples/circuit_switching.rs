//! The classical world the paper leaves behind: circuit-switched
//! `Clos(n, m, r)` with a centralized controller, showing the strict-sense
//! / rearrangeable hierarchy in action — and why none of it transfers to
//! distributed packet routing.
//!
//! ```text
//! cargo run --release --example circuit_switching
//! ```

use ftclos::core::circuit::{CircuitClos, ConnectError, MiddlePolicy};

fn main() {
    let (n, r) = (2usize, 3usize);

    println!("Clos({n}, m, {r}) under a centralized circuit controller\n");

    // m = n = 2: rearrangeably nonblocking (Beneš), but a greedy controller
    // can wedge itself.
    let mut c = CircuitClos::new(n, 2, r, MiddlePolicy::FirstFit);
    c.connect(0, 2).unwrap();
    c.connect(3, 4).unwrap();
    c.connect(2, 1).unwrap();
    println!("m = 2 (= n, rearrangeable): after three first-fit circuits,");
    match c.connect(1, 0) {
        Err(ConnectError::Blocked) => {
            println!("  request 1 -> 0 is BLOCKED (both middles conflicted)...")
        }
        other => println!("  unexpected: {other:?}"),
    }
    let middle = c.connect_rearranging(1, 0).expect("Beneš guarantees this");
    println!("  ...but REARRANGING existing circuits frees middle {middle}: connected.");
    c.audit().unwrap();

    // m = 2n-1 = 3: strictly nonblocking — the same prefix leaves room.
    let mut c = CircuitClos::new(n, 3, r, MiddlePolicy::FirstFit);
    c.connect(0, 2).unwrap();
    c.connect(3, 4).unwrap();
    c.connect(2, 1).unwrap();
    let middle = c
        .connect(1, 0)
        .expect("strict sense: no rearrangement needed");
    println!(
        "\nm = 3 (= 2n-1, strict-sense): the same request connects directly via middle {middle}."
    );

    println!("\nthe catch: both guarantees depend on the controller's global view.");
    println!("a fat-tree switch routing packets on its own has neither the view nor");
    println!("the ability to rearrange live circuits — which is why the paper's");
    println!("distributed-control nonblocking condition is m >= n^2, not 2n-1.");
}
