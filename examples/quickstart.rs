//! Quickstart: build the paper's nonblocking fabric, route a random
//! permutation, and verify zero contention.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ftclos::core::construct::NonblockingFtree;
use ftclos::core::flow;
use ftclos::core::verify::is_nonblocking_deterministic;
use ftclos::traffic::patterns;
use rand::SeedableRng;

fn main() {
    // ftree(3+9, 12): the cheapest nonblocking two-level fabric for n = 3
    // built from 12-port switches (Theorems 2-3: m = n² = 9 is tight).
    let fabric = NonblockingFtree::same_radix(3).expect("valid parameters");
    println!(
        "built ftree(3+9, 12): {} ports, {} switches (r = {}, m = 9)",
        fabric.ports(),
        fabric.switches(),
        fabric.r()
    );

    // The complete Lemma 1 audit: every link carries one source or one
    // destination across ALL r(r-1)n² possible SD pairs.
    assert!(is_nonblocking_deterministic(&fabric.router()));
    println!("Lemma 1 audit: PASS — the fabric is nonblocking");

    // Route a random permutation: no two SD pairs share any link.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
    let perm = patterns::random_full(fabric.ports() as u32, &mut rng);
    let routes = fabric.route(&perm).expect("routing always succeeds");
    println!(
        "routed {} SD pairs; max link load = {} (1 = contention-free)",
        routes.len(),
        routes.max_channel_load()
    );
    assert_eq!(routes.max_channel_load(), 1);

    // Flow-level consequence: full crossbar-equivalent throughput.
    println!(
        "saturation throughput = {:.0}% of line rate — crossbar behaviour",
        100.0 * flow::saturation_throughput(&routes)
    );

    // Print one cross-switch route end to end (leaf → bottom → top →
    // bottom → leaf).
    let (pair, path) = routes
        .routes()
        .iter()
        .find(|(_, p)| p.len() == 4)
        .expect("a full random permutation has cross-switch pairs");
    let nodes = path.nodes(fabric.ftree().topology());
    println!("example route {pair}: {nodes:?}");
}
