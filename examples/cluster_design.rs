//! Cluster design study: given a commodity switch radix, compare every
//! fabric you could build with it — the workflow of the paper's Table I and
//! Discussion section.
//!
//! ```text
//! cargo run --release --example cluster_design -- [radix]   # default 36
//! ```

use ftclos::analysis::TextTable;
use ftclos::core::construct::NonblockingFtree;
use ftclos::core::design;
use ftclos::core::verify::is_nonblocking_deterministic;

fn main() {
    let radix: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    println!("design study for {radix}-port switches\n");

    let mut table = TextTable::new([
        "design",
        "ports",
        "switches",
        "sw/port",
        "permutation guarantee",
    ]);

    if let Some(d) = design::nonblocking_two_level(radix) {
        table.row([
            format!("nonblocking ftree({}+{}²,·) 2-level", d.n, d.n),
            d.ports.to_string(),
            d.switches.to_string(),
            format!("{:.3}", d.switches_per_port()),
            "any permutation, zero contention".to_string(),
        ]);
    }
    if let Some(d) = design::nonblocking_three_level(radix) {
        table.row([
            "nonblocking 3-level (recursive)".to_string(),
            d.ports.to_string(),
            d.switches.to_string(),
            format!("{:.3}", d.switches_per_port()),
            "any permutation, zero contention".to_string(),
        ]);
    }
    if let Some(d) = design::mport_two_tree(radix) {
        table.row([
            format!("FT({radix},2) m-port 2-tree"),
            d.ports.to_string(),
            d.switches.to_string(),
            format!("{:.3}", d.switches_per_port()),
            "rearrangeable only (blocks w/ distributed control)".to_string(),
        ]);
    }
    print!("{}", table.render());

    // Build and verify the recommended nonblocking design end to end.
    if let Some(d) = design::nonblocking_two_level(radix) {
        println!("\nbuilding the recommended design (n = {}):", d.n);
        let fabric = NonblockingFtree::same_radix(d.n).expect("design is feasible");
        println!(
            "  built: {} ports from {} x {}-port switches",
            fabric.ports(),
            fabric.switches(),
            radix
        );
        let ok = is_nonblocking_deterministic(&fabric.router());
        println!(
            "  complete Lemma 1 audit over all SD pairs: {}",
            if ok { "PASS (nonblocking)" } else { "FAIL" }
        );
        assert!(ok);
    } else {
        println!("\nradix {radix} is too small for even n = 1 (need >= 2 ports)");
    }
}
