//! Inside NONBLOCKINGADAPTIVE (paper Fig. 4): watch the algorithm split a
//! permutation into configurations and partitions, and compare the
//! top-level switches it consumes against the deterministic requirement
//! `m = n²`.
//!
//! ```text
//! cargo run --release --example adaptive_routing
//! ```

use ftclos::analysis::TextTable;
use ftclos::routing::adaptive::LogicalRoute;
use ftclos::routing::{NonblockingAdaptive, PatternRouter};
use ftclos::topo::Ftree;
use ftclos::traffic::patterns;
use rand::SeedableRng;

fn main() {
    let n = 4usize;
    let r = 16usize; // r = n² -> c = 2 digits
    let ft = Ftree::new(n, 4 * n * n, r).unwrap();
    let router = NonblockingAdaptive::new(&ft).unwrap();
    let c = router.coder().c();
    println!("ftree({n}+m, {r}) with local adaptive routing; digit constant c = {c} (r <= n^c)\n");

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let perm = patterns::random_full((n * r) as u32, &mut rng);
    let plan = router.plan(&perm).expect("plannable");

    // Show the first source switch's schedule.
    let mut table = TextTable::new(["SD pair", "config", "partition", "top-in-partition"]);
    for (pair, route) in plan
        .logical()
        .iter()
        .filter(|(p, _)| (p.src as usize) / n == 0)
    {
        match route {
            LogicalRoute::Local => {
                table.row([format!("{pair}"), "-".into(), "local".into(), "-".into()]);
            }
            LogicalRoute::Top {
                config,
                partition,
                key,
            } => {
                table.row([
                    format!("{pair}"),
                    config.to_string(),
                    partition.to_string(),
                    key.to_string(),
                ]);
            }
        }
    }
    println!("schedule for source switch 0:");
    print!("{}", table.render());

    println!(
        "\nconfigurations per switch: {:?} (totalconf = {})",
        plan.configs_per_switch(),
        plan.total_configs()
    );
    println!(
        "top-level switches consumed: {} (deterministic needs n² = {})",
        plan.tops_needed(),
        n * n
    );

    // Materialize and double-check zero contention.
    let assignment = router.route_pattern(&perm).expect("m is ample");
    assert!(assignment.max_channel_load() <= 1);
    println!(
        "\nmaterialized routes: max link load = {} — nonblocking (Theorem 4)",
        assignment.max_channel_load()
    );

    // Worst case over many permutations.
    let mut worst = 0;
    for _ in 0..50 {
        let perm = patterns::random_full((n * r) as u32, &mut rng);
        worst = worst.max(router.plan(&perm).unwrap().tops_needed());
    }
    println!(
        "worst tops over 50 random permutations: {worst} (paper bound O(n^{{2-1/(2(c+1))}}) = O(n^{:.3}))",
        2.0 - 1.0 / (2.0 * (c as f64 + 1.0))
    );
}
