//! Packet-level throughput comparison: why "rearrangeably nonblocking" is
//! not crossbar behaviour under distributed control — the paper's
//! motivating observation, live.
//!
//! ```text
//! cargo run --release --example throughput_comparison
//! ```

use ftclos::analysis::TextTable;
use ftclos::routing::{DModK, SinglePathRouter, YuanDeterministic};
use ftclos::sim::{Policy, SimConfig, Simulator, Workload};
use ftclos::topo::{crossbar, Crossbar, Ftree};
use ftclos::traffic::patterns;
use rand::SeedableRng;

struct XbRouter<'a>(&'a Crossbar);

impl SinglePathRouter for XbRouter<'_> {
    fn ports(&self) -> u32 {
        self.0.ports() as u32
    }
    fn route(&self, pair: ftclos::traffic::SdPair) -> ftclos::routing::Path {
        if pair.src == pair.dst {
            return ftclos::routing::Path::empty();
        }
        ftclos::routing::Path::new(vec![
            self.0.up_channel(pair.src as usize),
            self.0.down_channel(pair.dst as usize),
        ])
    }
    fn name(&self) -> &'static str {
        "crossbar"
    }
}

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_500,
        ..SimConfig::default()
    };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);

    // Three fabrics, one permutation workload each, full offered load.
    let xb = crossbar(24).unwrap();
    let nb = Ftree::new(2, 4, 12).unwrap(); // nonblocking ftree(2+4, 12): 24 ports
    let ft = Ftree::new(6, 6, 12).unwrap(); // FT(12,2) equivalent: 72 ports, m = n

    let mut table = TextTable::new(["fabric", "ports", "throughput", "mean latency (cyc)"]);

    let xb_router = XbRouter(&xb);
    let perm = patterns::random_derangement(24, &mut rng);
    let s = Simulator::new(xb.topology(), cfg, Policy::from_single_path(&xb_router))
        .run(&Workload::permutation(&perm, 1.0), 1);
    table.row([
        "crossbar".to_string(),
        "24".to_string(),
        format!("{:.3}", s.accepted_throughput()),
        format!("{:.1}", s.mean_latency()),
    ]);

    let nb_router = YuanDeterministic::new(&nb).unwrap();
    let perm = patterns::random_derangement(24, &mut rng);
    let s = Simulator::new(nb.topology(), cfg, Policy::from_single_path(&nb_router))
        .run(&Workload::permutation(&perm, 1.0), 2);
    table.row([
        "nonblocking ftree(2+4,12)".to_string(),
        "24".to_string(),
        format!("{:.3}", s.accepted_throughput()),
        format!("{:.1}", s.mean_latency()),
    ]);

    let ft_router = DModK::new(&ft);
    let perm = patterns::random_derangement(72, &mut rng);
    let s = Simulator::new(ft.topology(), cfg, Policy::from_single_path(&ft_router))
        .run(&Workload::permutation(&perm, 1.0), 3);
    table.row([
        "FT(12,2) + d-mod-k".to_string(),
        "72".to_string(),
        format!("{:.3}", s.accepted_throughput()),
        format!("{:.1}", s.mean_latency()),
    ]);

    print!("{}", table.render());
    println!("\nthe rearrangeable fat-tree is \"nonblocking\" in the classical sense,");
    println!("yet with distributed control it cannot sustain permutation line rate;");
    println!("the paper's construction restores crossbar behaviour at extra switch cost.");
}
