//! Vendored ChaCha8 RNG for air-gapped builds.
//!
//! A real ChaCha8 stream cipher core (Bernstein's quarter-round, 8 rounds,
//! 64-bit block counter) driving [`rand::RngCore`]. Streams are deterministic
//! per seed with full cryptographic-family statistical quality, which is all
//! the workspace relies on; they are not bit-identical to the upstream
//! `rand_chacha` word ordering.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit
    /// stream id (always zero here).
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means exhausted.
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate().take(BLOCK_WORDS) {
            self.buf[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self {
            state,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 fair coin flips: expect ~32,000 ones, sd ~126.
        assert!((31_000..33_000).contains(&ones), "ones={ones}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
