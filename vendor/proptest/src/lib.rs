//! Vendored mini property-testing runner for air-gapped builds.
//!
//! Implements the `proptest` subset this workspace uses: the [`proptest!`]
//! macro (with `#![proptest_config(...)]`), [`Strategy`] for integer/float
//! ranges, tuples of strategies, and `proptest::bool::ANY`, plus
//! [`prop_assert!`]/[`prop_assert_eq!`]. Each test runs `cases` deterministic
//! pseudo-random cases (seeded per case index, so failures are reproducible);
//! there is no shrinking — the failing case's values are printed instead.

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Runner configuration (subset: case count only).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic per-case value source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// A generator for case number `case` (distinct, well-spread seeds).
        pub fn for_case(case: u64) -> Self {
            Self(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CAFE_F00D_D00D)
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: core::fmt::Debug;

    /// Produce one value for this case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                assert!(span > 0, "empty strategy range");
                self.start.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{test_runner::TestRng, Strategy};

    /// Uniform `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Assert a condition inside a `proptest!` body; on failure the property
/// returns an error carrying the (formatted) message and the runner panics
/// with the case's input values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_case_rng =
                    $crate::test_runner::TestRng::for_case(case as u64);
                // Generate all inputs first so a failure can print them.
                let inputs = ( $( $crate::Strategy::generate(&($strat), &mut proptest_case_rng), )+ );
                let inputs_dbg = format!("{:?}", inputs);
                let ( $($arg,)+ ) = inputs;
                let outcome = (|| -> ::core::result::Result<(), String> {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed for inputs {}:\n{}",
                        case + 1,
                        config.cases,
                        inputs_dbg,
                        msg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (usize, u32)> {
        (1usize..4, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, f in 0.0f64..1.0, b in crate::bool::ANY) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(b == b);
        }

        #[test]
        fn tuple_destructuring((n, k) in composite()) {
            prop_assert!((1..4).contains(&n));
            prop_assert_eq!(k / 10, 1);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn inner(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            inner();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("failed for inputs"), "msg: {msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
