//! Vendored marker-trait subset of `serde` for air-gapped builds.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! for downstream tooling but never actually serializes (no format crate is
//! linked). This shim keeps those annotations compiling offline: the derives
//! (re-exported from the vendored `serde_derive`) expand to nothing, and the
//! traits here are blanket-implemented markers so generic bounds like
//! `T: Serialize` would still be satisfiable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    // Named imports: `Serialize` must resolve to the derive macro in derive
    // position and to the trait in bound position, exactly like real serde.
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: u32,
        y: u32,
    }

    fn assert_bounds<T: Serialize + for<'de> Deserialize<'de>>(_t: &T) {}

    #[test]
    fn derive_compiles_and_traits_hold() {
        let p = Point { x: 1, y: 2 };
        assert_bounds(&p);
        assert_eq!(p, Point { x: 1, y: 2 });
    }
}
