//! Slice sampling helpers: the `SliceRandom` subset the workspace uses.

use crate::{RngCore, SampleRange};

/// Random operations on slices: in-place shuffle and uniform choice.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // `Rng::gen_range` needs `Self: Sized`, so sample through the range
        // trait directly — it accepts unsized generators.
        for i in (1..self.len()).rev() {
            let j = SampleRange::sample_single(0..=i, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[SampleRange::sample_single(0..self.len(), rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Lcg(u64);
    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Lcg(u64::from_le_bytes(seed) | 1)
        }
    }
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg::seed_from_u64(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_actually_moves_things() {
        let mut rng = Lcg::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = Lcg::seed_from_u64(3);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
