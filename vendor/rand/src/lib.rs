//! Vendored, API-compatible subset of `rand` 0.8 for air-gapped builds.
//!
//! The container this workspace builds in has no network access and no cargo
//! registry cache, so the real `rand` crate cannot be downloaded. This shim
//! implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open and inclusive integer
//!   ranges, plus float ranges) and `gen_bool`,
//! * [`SeedableRng`] with the `seed_from_u64` convenience (SplitMix64 seed
//!   expansion, like upstream),
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! The numeric streams are *not* bit-identical to upstream `rand`; the
//! workspace only relies on per-seed determinism and statistical quality,
//! both of which hold (the backing generator is ChaCha8 or the caller's).

pub mod seq;

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`, matching upstream.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform multiples of 2^-53, exactly like upstream's
    // `Open01`-style conversion.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample. Implemented for the std range
/// types over the integer widths and floats the workspace uses.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty(&self) -> bool;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Multiply-shift bounded sampling; bias is span/2^64 and the
                // workspace never samples spans anywhere near 2^64.
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
            #[inline]
            fn is_empty(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
            #[inline]
            fn is_empty(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
            #[inline]
            fn is_empty(&self) -> bool {
                self.start >= self.end
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed byte array type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// expansion family upstream uses, so small seeds are well spread).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed-expansion PRNG.
struct SplitMix64(u64);

impl SplitMix64 {
    #[inline]
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal deterministic RngCore for exercising the trait surface.
    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64(self.0);
            self.0 = self.0.wrapping_add(1);
            sm.next()
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Step(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Step(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = Step(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "hits={hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Step(0);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Step(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
