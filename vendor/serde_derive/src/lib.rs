//! Vendored no-op `Serialize`/`Deserialize` derives for air-gapped builds.
//!
//! The workspace derives serde traits on its data types but never serializes
//! anything (no serde_json or similar is linked). These derives therefore
//! expand to nothing: the `#[derive(Serialize, Deserialize)]` attributes
//! compile, and the marker traits in the vendored `serde` shim are blanket
//! implemented. Restoring the real serde is a one-line change in the
//! workspace manifest once a registry is reachable.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
