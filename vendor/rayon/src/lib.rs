//! Vendored sequential stand-in for `rayon`'s prelude.
//!
//! The workspace uses rayon only as `par_iter()` / `into_par_iter()` followed
//! by ordinary iterator combinators (`map`, `enumerate`, `sum`, `collect`).
//! This shim maps both entry points onto std iterators, so every call site
//! compiles unchanged and produces identical (deterministic, sequential)
//! results. Swap the workspace `rayon` path dependency back to the registry
//! crate to regain real parallelism when a network is available.

/// Parallel-iterator entry points, sequential under the hood.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

/// `into_par_iter()` for anything iterable by value.
pub trait IntoParallelIterator {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Sequential stand-in for rayon's by-value parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    #[inline]
    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// `par_iter()` for anything iterable by shared reference.
pub trait IntoParallelRefIterator<'data> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a reference into `self`).
    type Item: 'data;
    /// Sequential stand-in for rayon's by-reference parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
{
    type Iter = <&'data I as IntoIterator>::IntoIter;
    type Item = <&'data I as IntoIterator>::Item;
    #[inline]
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_iter_mut()` for anything iterable by exclusive reference.
pub trait IntoParallelRefMutIterator<'data> {
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (an exclusive reference into `self`).
    type Item: 'data;
    /// Sequential stand-in for rayon's by-mutable-reference parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
{
    type Iter = <&'data mut I as IntoIterator>::IntoIter;
    type Item = <&'data mut I as IntoIterator>::Item;
    #[inline]
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// `par_chunks_mut()` for slices, mirroring `rayon::slice::ParallelSliceMut`.
/// Disjoint chunks make scatter-style fills data-race-free under the real
/// crate; here they simply run in order.
pub trait ParallelSliceMut<T: Send> {
    /// Sequential stand-in for rayon's parallel mutable chunk iterator.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<u32> = (0..5u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_sums() {
        let data = [1.0f64, 2.0, 3.5];
        let total: f64 = data.par_iter().copied().sum();
        assert!((total - 6.5).abs() < 1e-12);
    }

    #[test]
    fn vec_par_iter_enumerates() {
        let data = vec!["a", "b"];
        let pairs: Vec<(usize, &&str)> = data.par_iter().enumerate().collect();
        assert_eq!(pairs[1].0, 1);
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        let mut data = vec![1u32, 2, 3];
        data.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(data, vec![10, 20, 30]);
    }

    #[test]
    fn par_chunks_mut_covers_slice_in_order() {
        let mut data = vec![0u32; 7];
        data.par_chunks_mut(3).enumerate().for_each(|(ci, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 3 + j) as u32;
            }
        });
        assert_eq!(data, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
