//! Vendored minimal benchmark harness for air-gapped builds.
//!
//! API-compatible with the `criterion` subset the workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `Bencher::iter`, `Throughput`,
//! `criterion_group!`/`criterion_main!`). Instead of criterion's statistical
//! machinery it runs a small fixed number of timed iterations and prints the
//! mean wall-clock time — enough to spot order-of-magnitude regressions
//! offline, and the benches compile and run unchanged against the real
//! criterion once a registry is reachable.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark (after one untimed warmup call).
const ITERS: u32 = 10;

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { throughput: None }
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Set the statistical sample count. The shim's fixed iteration count
    /// already bounds runtime, so this only records intent — real criterion
    /// uses it to shorten expensive benchmarks.
    pub fn sample_size(&mut self, _samples: usize) {}

    /// Run one benchmark identified by a plain name or a [`BenchmarkId`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id.into(), &(), |b, ()| f(b));
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        let mean_ns = if b.iters > 0 {
            b.elapsed_ns / b.iters as f64
        } else {
            0.0
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / mean_ns * 1e3 / 1.048_576)
            }
            _ => String::new(),
        };
        println!("  {:<40} {:>12.1} ns/iter{}", id.label, mean_ns, rate);
    }

    /// Finish the group (separator line; real criterion writes reports here).
    pub fn finish(self) {
        println!();
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `name` parameterized by `parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Work per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed_ns: f64,
    iters: u32,
}

impl Bencher {
    /// Run `f` repeatedly, recording mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warmup, untimed
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.iters += ITERS;
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn harness_runs_benchmarks() {
        smoke_group();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("route", 128);
        assert_eq!(id.label, "route/128");
    }
}
