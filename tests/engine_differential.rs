//! Differential properties pinning the arena-backed contention engine to
//! the legacy `HashMap` implementations it replaced.
//!
//! Three oracles, three router families:
//!
//! * **Verdicts** — `nonblocking_verdict` (engine) and
//!   `nonblocking_verdict_legacy` must agree on every `ftree` shape and
//!   routing, on k-ary n-trees, and on the recursive three-level network.
//! * **Two-pair sweeps** — `find_blocking_two_pair` (engine) and
//!   `find_blocking_two_pair_legacy` (exhaustive `O(p⁴)` loop) must agree,
//!   and every blocking witness must genuinely contend when routed.
//! * **Fault masks** — `deterministic_degradation` (arena + dense census)
//!   and `deterministic_degradation_legacy` must report identical
//!   unroutable sets and identical Lemma 1 verdicts under random faults.
//!
//! Witnesses are compared by *validity*, not identity: the engine always
//! reports the lowest violating channel id, while the legacy `HashMap`
//! census iterates in arbitrary order, so each side's witness is checked
//! against the router directly (both pairs cross the claimed channel with
//! distinct sources and destinations).

use ftclos::core::verify::LinkViolation;
use ftclos::core::{
    deterministic_degradation, deterministic_degradation_legacy, find_blocking_two_pair,
    find_blocking_two_pair_legacy, nonblocking_verdict, nonblocking_verdict_legacy, TwoPairOutcome,
};
use ftclos::routing::{
    route_all, DModK, SModK, SinglePathRouter, XgftRouter, YuanDeterministic, YuanRecursive,
};
use ftclos::topo::{kary_ntree, FaultSet, FaultyView, Ftree, RecursiveNonblocking};
use ftclos::traffic::{Permutation, SdPair};
use proptest::prelude::*;

/// A violation witness must name two pairs that really cross its channel.
fn assert_violation_valid<R: SinglePathRouter + ?Sized>(router: &R, v: &LinkViolation) {
    assert_ne!(v.sources[0], v.sources[1], "witness sources distinct");
    assert_ne!(
        v.destinations[0], v.destinations[1],
        "witness destinations distinct"
    );
    for i in 0..2 {
        let path = router.route(SdPair::new(v.sources[i], v.destinations[i]));
        assert!(
            path.channels().contains(&v.channel),
            "witness pair {i} misses channel {:?}",
            v.channel
        );
    }
}

/// A blocking outcome must carry a permutation that contends when routed.
fn assert_outcome_valid<R: SinglePathRouter + ?Sized>(router: &R, outcome: &TwoPairOutcome) {
    if let Some(perm) = outcome.witness() {
        let load = route_all(router, perm).unwrap().max_channel_load();
        assert!(load >= 2, "witness permutation must contend, load {load}");
    }
}

/// Run both verdicts and both sweeps through one router; everything must
/// agree and every witness must check out.
fn assert_engine_matches_legacy<R: SinglePathRouter + ?Sized>(router: &R) {
    let new = nonblocking_verdict(router);
    let old = nonblocking_verdict_legacy(router);
    assert_eq!(new.nonblocking, old.nonblocking, "verdict mismatch");
    for v in [&new.violation, &old.violation].into_iter().flatten() {
        assert_violation_valid(router, v);
    }

    let fast = find_blocking_two_pair(router);
    let slow = find_blocking_two_pair_legacy(router);
    assert_eq!(
        fast.found_blocking(),
        slow.found_blocking(),
        "sweep mismatch"
    );
    assert_eq!(fast.is_nonblocking(), slow.is_nonblocking());
    assert_eq!(fast.found_blocking(), !new.nonblocking, "sweep vs verdict");
    assert_outcome_valid(router, &fast);
    assert_outcome_valid(router, &slow);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ftree_routers_agree((n, m, r) in (1usize..4, 1usize..8, 2usize..6)) {
        let ft = Ftree::new(n, m, r).unwrap();
        assert_engine_matches_legacy(&DModK::new(&ft));
        assert_engine_matches_legacy(&SModK::new(&ft));
    }

    #[test]
    fn yuan_at_m_n2_agrees((n, r) in (1usize..4, 2usize..6)) {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        assert_engine_matches_legacy(&yuan);
        // m = n² with the Theorem 3 routing is the nonblocking regime: both
        // paths must also agree on the *positive* claim.
        prop_assert!(nonblocking_verdict(&yuan).nonblocking);
    }

    #[test]
    fn kary_ntree_routers_agree((k, n) in (2usize..5, 2usize..4)) {
        if k.pow(n as u32) > 32 {
            return Ok(()); // keep the legacy O(p⁴) loop sane
        }
        let t = kary_ntree(k, n).unwrap();
        assert_engine_matches_legacy(&XgftRouter::dmod(&t));
        assert_engine_matches_legacy(&XgftRouter::smod(&t));
    }

    #[test]
    fn degradation_agrees_under_random_faults(
        (n, m, r) in (1usize..4, 1usize..6, 2usize..6),
        links in 0usize..6,
        seed in 0u64..1u64 << 48,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let faults = FaultSet::random_links(ft.topology(), links, seed);
        let view = FaultyView::new(ft.topology(), &faults);
        let dmodk = DModK::new(&ft);
        let new = deterministic_degradation(&dmodk, &view);
        let old = deterministic_degradation_legacy(&dmodk, &view);
        prop_assert_eq!(new.total_pairs, old.total_pairs);
        prop_assert_eq!(&new.unroutable, &old.unroutable);
        prop_assert_eq!(new.lemma1.is_ok(), old.lemma1.is_ok());
        for v in [&new.lemma1, &old.lemma1].into_iter().filter_map(|l| l.as_ref().err()) {
            assert_violation_valid(&dmodk, v);
            // Both witness pairs must have survived the fault overlay.
            for i in 0..2 {
                let path = dmodk.route(SdPair::new(v.sources[i], v.destinations[i]));
                prop_assert!(view.path_alive(path.channels()).is_ok());
            }
        }
    }
}

#[test]
fn recursive_three_level_agrees() {
    let net = RecursiveNonblocking::new(2).unwrap();
    let router = YuanRecursive::new(&net);
    let new = nonblocking_verdict(&router);
    let old = nonblocking_verdict_legacy(&router);
    assert_eq!(new.nonblocking, old.nonblocking);
    assert!(new.nonblocking, "the recursive construction is nonblocking");
    // Sweep agreement too: both must exhaust the (larger) pattern space.
    assert!(find_blocking_two_pair(&router).is_nonblocking());
    assert!(find_blocking_two_pair_legacy(&router).is_nonblocking());
}

#[test]
fn engine_witness_is_channel_normalized() {
    // The engine's witness channel is the *lowest* violating channel id —
    // deterministic across runs and thread schedules, unlike the legacy
    // HashMap iteration order.
    let ft = Ftree::new(2, 2, 5).unwrap();
    let dmodk = DModK::new(&ft);
    let first = nonblocking_verdict(&dmodk).violation.unwrap();
    for _ in 0..10 {
        let again = nonblocking_verdict(&dmodk).violation.unwrap();
        assert_eq!(again, first, "engine witness must be stable");
    }
    // And it really is a two-pair permutation (distinct src, distinct dst).
    let perm = Permutation::from_pairs(
        10,
        [
            SdPair::new(first.sources[0], first.destinations[0]),
            SdPair::new(first.sources[1], first.destinations[1]),
        ],
    )
    .unwrap();
    assert!(route_all(&dmodk, &perm).unwrap().max_channel_load() >= 2);
}
