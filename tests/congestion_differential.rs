//! Differential proptests pinning the min-congestion router family against
//! every existing router, across topology families and fault masks.
//!
//! The invariants under test are the ones the solver's construction is
//! supposed to guarantee:
//!
//! * **Never worse than a projectable baseline.** `plan_seeded` projects
//!   each baseline assignment into the candidate set and starts repair from
//!   the best placement it has seen, so the repaired max link load is `<=`
//!   every baseline that projects — Theorem 3, d-mod-k, s-mod-k on ftrees,
//!   the XGFT mod-routers on k-ary n-trees, and the composed recursive
//!   router on the three-level construction.
//! * **Never below the demand lower bound.** No placement can beat
//!   `ceil(max forced per-channel demand / capacity)`.
//! * **Mode dominance.** `Repaired` starts from the best of the greedy and
//!   rounded placements (plus any seeds) and only accepts strict
//!   improvements, so it is `<=` both other modes.
//! * **Monotone repair.** The repair trace never increases and bookends at
//!   the reported plan: `trace.len() == moves + 1` and the last entry is
//!   the final max link load.
//! * **Host-relabeling invariance.** An order-preserving relabeling of the
//!   hosts (with the candidate provider composed to undo it) changes
//!   nothing: same max load, same move count, same trace.
//!
//! The vendored proptest shim only generates primitive values, so every
//! structured input (permutations, fault masks) derives deterministically
//! from a generated `u64` seed.

use ftclos_routing::{
    demand_lower_bound, route_all, CongestionConfig, CongestionMode, DModK, FaultAware,
    FnCandidates, FtreeCandidates, MinCongestion, Path, RouteAssignment, SModK, SinglePathRouter,
    XgftRouter, YuanDeterministic, YuanRecursive,
};
use ftclos_topo::{kary_ntree, FaultSet, FaultyView, Ftree, RecursiveNonblocking};
use ftclos_traffic::{patterns, Permutation, SdPair};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic random full permutation, optionally thinned to a partial
/// one (Definition 1 allows unused leaves) by dropping one residue class.
fn perm_from_seed(ports: u32, seed: u64, drop: u32) -> Permutation {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let full = patterns::random_full(ports, &mut rng);
    if drop == 0 {
        full
    } else {
        full.filter_sources(|s| s % 4 != drop % 4)
    }
}

/// Max link load of a plan in a given `CongestionMode`.
fn mode_max(
    ft: &Ftree,
    config: CongestionConfig,
    mode: CongestionMode,
    perm: &Permutation,
    seeds: &[&RouteAssignment],
) -> u32 {
    let config = CongestionConfig { mode, ..config };
    let router = MinCongestion::with_config(FtreeCandidates::pristine(ft), config);
    let plan = router
        .plan_seeded(perm, seeds)
        .expect("pristine ftree plans");
    plan.max_link_load()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pristine ftrees: the repaired plan never loses to any baseline
    /// router, never beats the demand lower bound, dominates the other two
    /// modes, and its assignment re-measures to the claimed max load.
    #[test]
    fn ftree_repaired_beats_every_projectable_baseline(
        seed in 0u64..1_000_000,
        n in 1u32..4,
        m in 1u32..6,
        r in 2u32..7,
        drop in 0u32..4,
    ) {
        let ft = Ftree::new(n as usize, m as usize, r as usize).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = perm_from_seed(ports, seed, drop);

        let mut seeds: Vec<RouteAssignment> = Vec::new();
        if let Ok(yuan) = YuanDeterministic::new(&ft) {
            seeds.push(route_all(&yuan, &perm).unwrap());
        }
        seeds.push(route_all(&DModK::new(&ft), &perm).unwrap());
        seeds.push(route_all(&SModK::new(&ft), &perm).unwrap());
        let seed_refs: Vec<&RouteAssignment> = seeds.iter().collect();

        let config = CongestionConfig { seed, ..CongestionConfig::default() };
        let router = MinCongestion::with_config(FtreeCandidates::pristine(&ft), config);
        let plan = router.plan_seeded(&perm, &seed_refs).unwrap();
        plan.assignment().validate(ft.topology()).map_err(|e| e.to_string())?;

        for baseline in &seeds {
            prop_assert!(
                plan.max_link_load() <= baseline.max_channel_load(),
                "repaired {} > baseline {}",
                plan.max_link_load(),
                baseline.max_channel_load()
            );
        }
        let bound = demand_lower_bound(&FtreeCandidates::pristine(&ft), &perm, 1).unwrap();
        prop_assert!(plan.max_link_load() >= bound);
        // The plan's own meter agrees with the assignment-level recount.
        prop_assert_eq!(plan.max_link_load(), plan.assignment().max_channel_load());

        // Mode dominance: repaired starts from the best of both other
        // modes' placements, so it can only be at least as good.
        let greedy = mode_max(&ft, config, CongestionMode::Greedy, &perm, &seed_refs);
        let rounded = mode_max(&ft, config, CongestionMode::Rounded, &perm, &seed_refs);
        prop_assert!(plan.max_link_load() <= greedy);
        prop_assert!(plan.max_link_load() <= rounded);
    }

    /// Faulted ftrees: wherever the masked solver still plans, it uses only
    /// surviving channels, respects the masked demand lower bound, and never
    /// loses to a fault-aware baseline that also managed to route.
    #[test]
    fn faulted_ftree_differential(
        seed in 0u64..1_000_000,
        n in 1u32..4,
        m in 2u32..6,
        r in 2u32..7,
        fail_links in 1u32..5,
    ) {
        let ft = Ftree::new(n as usize, m as usize, r as usize).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = perm_from_seed(ports, seed, 0);
        let faults = FaultSet::random_links(ft.topology(), fail_links as usize, seed);
        let view = FaultyView::new(ft.topology(), &faults);

        let mut seeds: Vec<RouteAssignment> = Vec::new();
        if let Ok(yuan) = YuanDeterministic::new(&ft) {
            if let Ok(asg) = FaultAware::new(yuan, &view).route_pattern_checked(&perm) {
                seeds.push(asg);
            }
        }
        if let Ok(asg) = FaultAware::new(DModK::new(&ft), &view).route_pattern_checked(&perm) {
            seeds.push(asg);
        }
        if let Ok(asg) = FaultAware::new(SModK::new(&ft), &view).route_pattern_checked(&perm) {
            seeds.push(asg);
        }
        let seed_refs: Vec<&RouteAssignment> = seeds.iter().collect();

        let router = MinCongestion::with_config(
            FtreeCandidates::masked(&ft, &view),
            CongestionConfig { seed, ..CongestionConfig::default() },
        );
        let plan = match router.plan_seeded(&perm, &seed_refs) {
            Ok(plan) => plan,
            // The mask can sever a pair entirely; nothing to compare then.
            Err(_) => return Ok(()),
        };
        plan.assignment().validate(ft.topology()).map_err(|e| e.to_string())?;
        for (_, path) in plan.assignment().routes() {
            prop_assert!(view.path_alive(path.channels()).is_ok());
        }
        for baseline in &seeds {
            prop_assert!(plan.max_link_load() <= baseline.max_channel_load());
        }
        let bound = demand_lower_bound(&FtreeCandidates::masked(&ft, &view), &perm, 1).unwrap();
        prop_assert!(plan.max_link_load() >= bound);
    }

    /// The repair loop only ever accepts strict improvements: the recorded
    /// trace is non-increasing, one entry per accepted move plus the start,
    /// ending exactly at the reported max link load.
    #[test]
    fn repair_trace_never_increases_per_accepted_move(
        seed in 0u64..1_000_000,
        n in 1u32..4,
        m in 1u32..5,
        r in 2u32..7,
        drop in 0u32..4,
    ) {
        let ft = Ftree::new(n as usize, m as usize, r as usize).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = perm_from_seed(ports, seed, drop);
        let router = MinCongestion::with_config(
            FtreeCandidates::pristine(&ft),
            CongestionConfig { seed, ..CongestionConfig::default() },
        );
        let plan = router.plan(&perm).unwrap();
        let trace = plan.repair_trace();
        prop_assert_eq!(trace.len() as u64, plan.moves() + 1);
        for w in trace.windows(2) {
            prop_assert!(w[1] <= w[0], "repair increased max load: {:?}", trace);
        }
        prop_assert_eq!(*trace.last().unwrap(), plan.max_link_load());
    }

    /// Order-preserving host relabeling is a no-op: shifting every host id
    /// by a constant (and composing the candidate provider with the inverse
    /// shift) preserves pair order, candidate order, and RNG draws, so the
    /// whole solve replays identically.
    #[test]
    fn host_relabeling_leaves_the_solve_invariant(
        seed in 0u64..1_000_000,
        n in 1u32..4,
        m in 1u32..6,
        r in 2u32..7,
        offset in 1u32..9,
    ) {
        let ft = Ftree::new(n as usize, m as usize, r as usize).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = perm_from_seed(ports, seed, 0);
        let config = CongestionConfig { seed, ..CongestionConfig::default() };

        let base = FtreeCandidates::pristine(&ft);
        let plan = MinCongestion::with_config(FtreeCandidates::pristine(&ft), config)
            .plan(&perm)
            .unwrap();

        let shifted_perm = Permutation::from_pairs(
            ports + offset,
            perm.pairs()
                .iter()
                .map(|p| SdPair::new(p.src + offset, p.dst + offset)),
        )
        .unwrap();
        let shifted = FnCandidates::new(ports + offset, |pair: SdPair| {
            ftclos_routing::PathCandidates::candidates(
                &base,
                SdPair::new(pair.src - offset, pair.dst - offset),
            )
        });
        let shifted_plan = MinCongestion::with_config(shifted, config)
            .plan(&shifted_perm)
            .unwrap();

        prop_assert_eq!(plan.max_link_load(), shifted_plan.max_link_load());
        prop_assert_eq!(plan.moves(), shifted_plan.moves());
        prop_assert_eq!(plan.rounds(), shifted_plan.rounds());
        prop_assert_eq!(plan.repair_trace(), shifted_plan.repair_trace());
        prop_assert_eq!(plan.witness_channel(), shifted_plan.witness_channel());
    }

    /// K-ary n-trees through the XGFT routers: the solver over
    /// `XgftRouter::all_paths` candidates never loses to the d-mod or s-mod
    /// single-path placements and stays above the demand bound.
    #[test]
    fn kary_ntree_differential(
        seed in 0u64..1_000_000,
        k in 2u32..4,
        levels in 2u32..4,
        drop in 0u32..4,
    ) {
        let t = kary_ntree(k as usize, levels as usize).unwrap();
        let ports = (k as u64).pow(levels) as u32;
        let perm = perm_from_seed(ports, seed, drop);
        let dmod = XgftRouter::dmod(&t);
        let smod = XgftRouter::smod(&t);
        let seeds = [route_all(&dmod, &perm).unwrap(), route_all(&smod, &perm).unwrap()];
        let seed_refs: Vec<&RouteAssignment> = seeds.iter().collect();

        let provider = FnCandidates::new(ports, |pair| Ok(dmod.all_paths(pair)));
        let router = MinCongestion::with_config(
            provider,
            CongestionConfig { seed, ..CongestionConfig::default() },
        );
        let plan = router.plan_seeded(&perm, &seed_refs).unwrap();
        plan.assignment().validate(t.topology()).map_err(|e| e.to_string())?;
        for baseline in &seeds {
            prop_assert!(plan.max_link_load() <= baseline.max_channel_load());
        }
        let bound = demand_lower_bound(
            &FnCandidates::new(ports, |pair| Ok(dmod.all_paths(pair))),
            &perm,
            1,
        )
        .unwrap();
        prop_assert!(plan.max_link_load() >= bound);
    }

    /// The three-level recursive construction: candidates enumerate every
    /// (logical top, inner top) choice, so the composed Theorem 3 route is
    /// one of them and the warm-started solver can only match or beat it.
    #[test]
    fn recursive_differential(seed in 0u64..1_000_000, drop in 0u32..4) {
        let net = RecursiveNonblocking::new(2).unwrap();
        let ports = net.num_leaves() as u32;
        let perm = perm_from_seed(ports, seed, drop);
        let yuan = YuanRecursive::new(&net);
        let baseline = route_all(&yuan, &perm).unwrap();
        let seed_refs = [&baseline];

        let provider = FnCandidates::new(ports, |pair| Ok(recursive_candidates(&net, pair)));
        let router = MinCongestion::with_config(
            provider,
            CongestionConfig { seed, ..CongestionConfig::default() },
        );
        let plan = router.plan_seeded(&perm, &seed_refs).unwrap();
        plan.assignment().validate(net.topology()).map_err(|e| e.to_string())?;
        prop_assert!(plan.max_link_load() <= baseline.max_channel_load());
        // Full permutations on the nonblocking construction: the baseline is
        // already optimal at load 1, and the solver must land there too.
        if perm.is_full() && !perm.pairs().iter().all(|p| p.src == p.dst) {
            prop_assert_eq!(plan.max_link_load(), 1);
        }
        let bound = demand_lower_bound(
            &FnCandidates::new(ports, |pair| Ok(recursive_candidates(&net, pair))),
            &perm,
            1,
        )
        .unwrap();
        prop_assert!(plan.max_link_load() >= bound);
    }
}

/// Every up-down path of the three-level recursive construction for one SD
/// pair: all `n²` logical-top choices crossed with all `n²` inner-top
/// choices (the composed Theorem 3 route is the `(i·n+j, ii·n+ij)` member).
fn recursive_candidates(net: &RecursiveNonblocking, pair: SdPair) -> Vec<Path> {
    let n = net.n();
    let (v, i) = (pair.src as usize / n, pair.src as usize % n);
    let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
    if pair.src == pair.dst {
        return vec![Path::empty()];
    }
    if v == w {
        return vec![Path::new(vec![
            net.leaf_up_channel(v, i),
            net.leaf_down_channel(w, j),
        ])];
    }
    let (ib_s, ib_d) = (v / n, w / n);
    let mut out = Vec::new();
    for g in 0..n * n {
        if ib_s == ib_d {
            out.push(Path::new(vec![
                net.leaf_up_channel(v, i),
                net.up1_channel(v, g),
                net.down1_channel(g, w),
                net.leaf_down_channel(w, j),
            ]));
        } else {
            for it in 0..n * n {
                out.push(Path::new(vec![
                    net.leaf_up_channel(v, i),
                    net.up1_channel(v, g),
                    net.up2_channel(g, ib_s, it),
                    net.down2_channel(g, it, ib_d),
                    net.down1_channel(g, w),
                    net.leaf_down_channel(w, j),
                ]));
            }
        }
    }
    out
}

/// The composed recursive route really is a member of the enumerated
/// candidate set (otherwise the projection warm start silently degrades).
#[test]
fn recursive_candidates_contain_the_yuan_route() {
    let net = RecursiveNonblocking::new(2).unwrap();
    let yuan = YuanRecursive::new(&net);
    let ports = net.num_leaves() as u32;
    for s in 0..ports {
        for d in 0..ports {
            let pair = SdPair::new(s, d);
            let route = yuan.route(pair);
            let cands = recursive_candidates(&net, pair);
            assert!(
                cands.iter().any(|c| c.channels() == route.channels()),
                "({s},{d}): composed route missing from candidates"
            );
        }
    }
}
