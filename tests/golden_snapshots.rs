//! Golden-file snapshot tests: pin the exact text/JSON the user-facing
//! surfaces emit — flowsim reports, the faults and churn commands, and the
//! `--trace` JSON (with volatile `*_ns` timing fields scrubbed to zero so
//! only the *shape* is pinned: span paths, counts, counters, gauges).
//!
//! On intentional output changes, regenerate with:
//! `UPDATE_SNAPSHOTS=1 cargo test --test golden_snapshots`

use ftclos::obs::json::Json;
use std::path::{Path, PathBuf};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name)
}

/// Compare `actual` against the stored golden file, or rewrite the golden
/// when `UPDATE_SNAPSHOTS` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir snapshots");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); create it with UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        expected, actual,
        "output drifted from tests/snapshots/{name}; if intentional, \
         regenerate with UPDATE_SNAPSHOTS=1"
    );
}

/// Run a CLI invocation (the same entry the binary uses) and return stdout.
fn cli(args: &str) -> String {
    let argv: Vec<String> = args.split_whitespace().map(String::from).collect();
    ftclos_cli::run(&argv).unwrap_or_else(|e| panic!("`ftclos {args}` failed: {e}"))
}

#[test]
fn flowsim_text_report_is_stable() {
    assert_matches_golden("flowsim_2_4_5.txt", &cli("flowsim 2 4 5"));
}

#[test]
fn flowsim_json_report_is_stable() {
    assert_matches_golden("flowsim_2_4_5.json", &cli("flowsim 2 4 5 --json"));
}

#[test]
fn flowsim_faulted_report_is_stable() {
    assert_matches_golden(
        "flowsim_2_4_5_failtop.txt",
        &cli("flowsim 2 4 5 --router multipath --fail-tops 1"),
    );
}

#[test]
fn faults_output_is_stable() {
    assert_matches_golden(
        "faults_2_4_5.txt",
        &cli("faults 2 4 5 --fail-tops 1 --samples 5 --max-k 1 --seed 0"),
    );
}

#[test]
fn churn_output_is_stable() {
    assert_matches_golden(
        "churn_2_4_3.txt",
        &cli("churn 2 4 3 --links 1 --mtbf 200 --mttr 60 --cycles 600 --samples 10 --seed 3"),
    );
}

/// The full deadlock sweep, pristine: every production router proved FREE
/// and the valley straw-man caught CYCLIC with its deterministic witness.
#[test]
fn deadlock_sweep_text_is_stable() {
    assert_matches_golden("deadlock_2_4_5.txt", &cli("deadlock 2 4 5"));
}

/// The valley witness-injection run, JSON: the witness cycle, the
/// dependency counts, and the wedge statistics (stranded / delivered /
/// conservation, plus the clean-draining control) are all deterministic.
#[test]
fn deadlock_witness_injection_json_is_stable() {
    assert_matches_golden(
        "deadlock_valley_inject.json",
        &cli("deadlock 1 1 4 --router valley --inject true --json"),
    );
}

/// A seeded *faulted* witness: a dead link thins the valley CDG (fewer
/// dependencies than pristine) but the residual cycle — and its
/// deterministic witness — survives.
#[test]
fn deadlock_faulted_witness_text_is_stable() {
    assert_matches_golden(
        "deadlock_valley_faulted.txt",
        &cli("deadlock 1 1 4 --router valley --fail-links 1 --seed 7"),
    );
}

/// The `--trace` JSON, with every `*_ns` field zeroed: the span tree
/// (paths, nesting, counts), counters, and gauges must not drift silently.
#[test]
fn verify_trace_shape_is_stable() {
    let trace = std::env::temp_dir().join("ftclos_golden_trace.json");
    cli(&format!("verify 2 4 5 --trace {}", trace.display()));
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let _ = std::fs::remove_file(&trace);
    let mut doc = Json::parse(&text).expect("trace parses");
    doc.scrub_keys_ending("_ns");
    // Scrub the args line too: it embeds the temp path.
    if let Json::Obj(entries) = &mut doc {
        for (k, v) in entries.iter_mut() {
            if k == "meta" {
                if let Json::Obj(meta) = v {
                    for (mk, mv) in meta.iter_mut() {
                        if mk == "args" {
                            *mv = Json::Str("<args>".to_string());
                        }
                    }
                }
            }
        }
    }
    assert_matches_golden("verify_trace_2_4_5.json", &doc.write());
}

/// The event engine's user-facing text output, pristine: byte-identical to
/// the cycle engine's report apart from the engine tag in the header.
#[test]
fn simulate_event_text_is_stable() {
    let args = "simulate 2 4 5 --pattern shift:3 --rate 0.9 --cycles 600 --seed 5";
    let event = cli(&format!("{args} --engine event"));
    assert_matches_golden("simulate_event_2_4_5.txt", &event);
    let cycle = cli(&format!("{args} --engine cycle"));
    assert_eq!(
        cycle.replace("(HolFifo)", "(HolFifo, event engine)"),
        event,
        "engines must emit the same report apart from the tag"
    );
}

/// The event engine's JSON output, pristine.
#[test]
fn simulate_event_json_is_stable() {
    assert_matches_golden(
        "simulate_event_2_4_5.json",
        &cli(
            "simulate 2 4 5 --pattern shift:3 --rate 0.9 --cycles 600 --seed 5 \
              --engine event --json",
        ),
    );
}

/// A faulted event-engine run: two uplinks of edge switch 0 die mid-run;
/// the outage line, degraded throughput, and leftovers are deterministic.
#[test]
fn simulate_event_faulted_text_is_stable() {
    assert_matches_golden(
        "simulate_event_2_4_5_faulted.txt",
        &cli(
            "simulate 2 4 5 --pattern shift:3 --rate 0.9 --cycles 600 --seed 5 \
              --engine event --fail-uplinks 2",
        ),
    );
}

/// The faulted run in JSON — and field-for-field agreement with the cycle
/// engine under the same faults.
#[test]
fn simulate_event_faulted_json_is_stable() {
    let args = "simulate 2 4 5 --pattern shift:3 --rate 0.9 --cycles 600 --seed 5 \
                --fail-uplinks 2 --json";
    let event = cli(&format!("{args} --engine event"));
    assert_matches_golden("simulate_event_2_4_5_faulted.json", &event);
    let cycle = cli(&format!("{args} --engine cycle"));
    assert_eq!(
        cycle.replace("\"engine\":\"cycle\"", "\"engine\":\"event\""),
        event
    );
}

/// The simulate command's trace: sim counters must conserve packets
/// (injected = delivered + abandoned + in-flight) in the final state.
#[test]
fn simulate_trace_counters_conserve() {
    let trace = std::env::temp_dir().join("ftclos_golden_sim_trace.json");
    cli(&format!(
        "simulate 2 4 5 --pattern shift:3 --rate 0.8 --cycles 400 --trace {}",
        trace.display()
    ));
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let _ = std::fs::remove_file(&trace);
    let doc = Json::parse(&text).expect("trace parses");
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let in_flight = doc
        .get("gauges")
        .and_then(|g| g.get("sim.in_flight"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let injected = counter("sim.injected");
    assert!(injected > 0, "trace recorded injections: {text}");
    assert_eq!(
        injected,
        counter("sim.delivered") + counter("sim.abandoned") + in_flight,
        "conservation over the final flush: {text}"
    );
}

/// The min-congestion head-to-head, pristine: every baseline row, the
/// solver row with its move/round counters, and the per-pattern verdicts.
#[test]
fn congestion_pristine_text_is_stable() {
    assert_matches_golden("congestion_2_4_5.txt", &cli("congestion 2 4 5"));
}

#[test]
fn congestion_pristine_json_is_stable() {
    assert_matches_golden("congestion_2_4_5.json", &cli("congestion 2 4 5 --json"));
}

/// Faulted head-to-head: a dead top switch turns the deterministic
/// baselines unroutable while the masked solver still places the suite.
#[test]
fn congestion_faulted_text_is_stable() {
    assert_matches_golden(
        "congestion_2_4_5_failtop.txt",
        &cli("congestion 2 4 5 --fail-tops 1 --seed 7"),
    );
}

/// Churn epochs: each distinct fault epoch of the flap schedule replayed
/// as a repaired-vs-dmodk line; the epoch list is seed-deterministic.
#[test]
fn congestion_churn_text_is_stable() {
    assert_matches_golden(
        "congestion_2_4_5_churn.txt",
        &cli("congestion 2 4 5 --churn-links 2 --churn-cycles 800 --seed 5"),
    );
}

/// Exhaustive k-fault-tolerance certification: the text certificate for
/// adaptive routability over the top switches of `ftree(2+4, 5)`.
#[test]
fn campaign_exhaustive_text_is_stable() {
    assert_matches_golden(
        "campaign_exhaustive_2_4_5.txt",
        &cli("campaign 2 4 5 --mode exhaustive --k 2 --universe tops"),
    );
}

/// Randomized campaign with shrinking: killer lines, 1-minimal cores, and
/// the criticality ranking are all seed-deterministic.
#[test]
fn campaign_random_text_is_stable() {
    assert_matches_golden(
        "campaign_random_2_4_5.txt",
        &cli("campaign 2 4 5 --waves 4 --wave-size 6 --links 2 --switches 1 --seed 7 --shrink"),
    );
}

#[test]
fn campaign_random_json_is_stable() {
    assert_matches_golden(
        "campaign_random_2_4_5.json",
        &cli(
            "campaign 2 4 5 --waves 4 --wave-size 6 --links 2 --switches 1 --seed 7 \
             --shrink --json",
        ),
    );
}

/// The `--confirm` stall diagnosis: the valley router's baseline CDG cycle
/// replayed in the simulator until the watchdog converts the wedge into a
/// strand-graph report (who holds what, waiting on whom).
#[test]
fn campaign_confirm_stall_diagnosis_is_stable() {
    assert_matches_golden(
        "campaign_confirm_valley.txt",
        &cli(
            "campaign 1 1 4 --property deadlock --router valley --waves 1 --wave-size 2 \
             --links 1 --switches 0 --confirm",
        ),
    );
}
