//! Packet conservation audited *from the trace alone*: the recorder's
//! cumulative counters and the `sim.in_flight` gauge must satisfy
//! `injected = delivered + abandoned + in_flight` at **every** epoch mark
//! the simulator emits — not just at the end of the run — and the final
//! recorder state must agree with the engine's own `SimStats`, which are
//! accumulated by a separate code path. A delta-flush bug (double-counted
//! or skipped window) breaks the cross-check even when each side is
//! self-consistent.

use ftclos::obs::Registry;
use ftclos::routing::{ObliviousMultipath, SpreadPolicy, YuanDeterministic};
use ftclos::sim::{
    Arbiter, ChurnConfig, ChurnSchedule, Policy, ReplanMode, SimConfig, Simulator, Workload,
};
use ftclos::topo::Ftree;
use ftclos::traffic::patterns;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Churn runs mark one epoch per liveness transition plus a final
    /// `end`: every one of them must conserve packets, counters must be
    /// monotone across epochs, and the last epoch is the final state.
    #[test]
    fn churn_epochs_conserve_packets(
        n in 1usize..3,
        r in 2usize..5,
        rate in 0.1f64..0.9,
        links in 1usize..3,
        mtbf in 100u64..400,
        mttr in 20u64..120,
        seed in 0u64..200,
    ) {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let cycles = 500;
        let schedule =
            ChurnSchedule::flapping_links(ft.topology(), links, mtbf, mttr, cycles, seed);
        let cfg = SimConfig {
            warmup_cycles: 50,
            measure_cycles: cycles,
            ttl_cycles: 40,
            retry: true,
            retry_limit: 3,
            drain: true,
            arbiter: Arbiter::Voq { iterations: 2 },
            ..SimConfig::default()
        };
        let churn_cfg = ChurnConfig {
            mode: ReplanMode::Hysteresis { k: 30 },
            epsilon: 0.1,
            recovery_window: 40,
        };
        let perm = patterns::shift(ft.num_leaves() as u32, 1);
        let reg = Registry::new();
        let (stats, _report) =
            Simulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, true))
                .try_run_churn_recorded(
                    &Workload::permutation(&perm, rate),
                    seed ^ 0xBEEF,
                    &schedule,
                    &churn_cfg,
                    &reg,
                )
                .unwrap();
        let snap = reg.snapshot();
        prop_assert!(!snap.epochs.is_empty(), "a churn run always marks epochs");
        let mut prev = (0u64, 0u64, 0u64);
        for e in &snap.epochs {
            let injected = e.counter("sim.injected");
            let delivered = e.counter("sim.delivered");
            let abandoned = e.counter("sim.abandoned");
            prop_assert_eq!(
                injected,
                delivered + abandoned + e.gauge("sim.in_flight"),
                "epoch `{}` leaks packets", e.label
            );
            prop_assert!(
                injected >= prev.0 && delivered >= prev.1 && abandoned >= prev.2,
                "cumulative counters went backwards at epoch `{}`", e.label
            );
            prev = (injected, delivered, abandoned);
        }
        prop_assert_eq!(snap.epochs.last().unwrap().label.as_str(), "end");
        // Cross-check against the engine's independently-accumulated stats.
        prop_assert_eq!(snap.counter("sim.injected"), Some(stats.injected_total));
        prop_assert_eq!(snap.counter("sim.delivered"), Some(stats.delivered_total));
        prop_assert_eq!(snap.counter("sim.abandoned"), Some(stats.abandoned_total));
        prop_assert_eq!(snap.gauge("sim.in_flight"), Some(stats.leftover_packets));
        prop_assert!(stats.conservation_ok(), "{:?}", stats);
    }

    /// Fault-free runs under any load and packet size: the single `end`
    /// epoch and the final counters conserve, and with drain enabled the
    /// in-flight gauge settles to the leftover count (zero).
    #[test]
    fn plain_runs_conserve_at_the_end_mark(
        n in 1usize..4,
        r in 2usize..6,
        rate in 0.05f64..1.0,
        flits in 1u64..4,
        seed in 0u64..300,
    ) {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let cfg = SimConfig {
            warmup_cycles: 20,
            measure_cycles: 200,
            packet_flits: flits,
            drain: true,
            ..SimConfig::default()
        };
        let perm = patterns::shift(ft.num_leaves() as u32, 1);
        let reg = Registry::new();
        let stats = Simulator::new(ft.topology(), cfg, Policy::from_single_path(&router))
            .try_run_recorded(&Workload::permutation(&perm, rate), seed, &reg)
            .unwrap();
        let snap = reg.snapshot();
        for e in &snap.epochs {
            prop_assert_eq!(
                e.counter("sim.injected"),
                e.counter("sim.delivered")
                    + e.counter("sim.abandoned")
                    + e.gauge("sim.in_flight"),
                "epoch `{}` leaks packets", e.label
            );
        }
        prop_assert_eq!(snap.counter("sim.injected"), Some(stats.injected_total));
        prop_assert_eq!(snap.gauge("sim.in_flight"), Some(stats.leftover_packets));
        prop_assert_eq!(stats.leftover_packets, 0, "drain must empty the fabric");
    }
}
