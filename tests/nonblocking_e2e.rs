//! End-to-end integration: topology → routing → verification → simulation,
//! across crates. These tests exercise the whole pipeline the way the
//! experiment harnesses do, but with assertions suitable for CI.

use ftclos::core::construct::{NonblockingFtree, NonblockingThreeLevel};
use ftclos::core::flow;
use ftclos::core::search::{blocking_report, find_blocking_two_pair};
use ftclos::core::verify::is_nonblocking_deterministic;
use ftclos::routing::{
    route_all, DModK, NonblockingAdaptive, PatternRouter, RearrangeableRouter, YuanDeterministic,
};
use ftclos::sim::{Policy, SimConfig, Simulator, Workload};
use ftclos::topo::Ftree;
use ftclos::traffic::patterns;
use rand::SeedableRng;

fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn theorem3_pipeline_flow_and_packets_agree() {
    // Flow-level says throughput 1.0; the packet simulator should deliver
    // ~line rate for the same permutation on the same fabric.
    let fabric = NonblockingFtree::new(2, 6).unwrap();
    let mut g = rng(1);
    let perm = patterns::random_derangement(fabric.ports() as u32, &mut g);
    let assignment = fabric.route(&perm).unwrap();
    assert_eq!(flow::saturation_throughput(&assignment), 1.0);

    let cfg = SimConfig {
        warmup_cycles: 200,
        measure_cycles: 1_000,
        ..SimConfig::default()
    };
    let router = fabric.router();
    let stats = Simulator::new(
        fabric.ftree().topology(),
        cfg,
        Policy::from_single_path(&router),
    )
    .run(&Workload::permutation(&perm, 1.0), 5);
    assert!(
        stats.accepted_throughput() > 0.95,
        "packet level {} disagrees with flow level 1.0",
        stats.accepted_throughput()
    );
}

#[test]
fn contended_assignment_flow_predicts_packet_loss() {
    // d-mod-k funnel: flow-level predicts 1/4 throughput for the 4-flow
    // funnel; the simulator should be in that ballpark.
    let ft = Ftree::new(4, 4, 9).unwrap();
    let router = DModK::new(&ft);
    let perm = ftclos::traffic::Permutation::from_pairs(
        36,
        (0..4).map(|k| ftclos::traffic::SdPair::new(k, (k + 1) * 4)),
    )
    .unwrap();
    let assignment = route_all(&router, &perm).unwrap();
    let predicted = flow::saturation_throughput(&assignment);
    assert!((predicted - 0.25).abs() < 1e-9);

    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_500,
        ..SimConfig::default()
    };
    let stats = Simulator::new(ft.topology(), cfg, Policy::from_single_path(&router))
        .run(&Workload::permutation(&perm, 1.0), 9);
    assert!(
        (stats.accepted_throughput() - predicted).abs() < 0.08,
        "sim {} vs flow {predicted}",
        stats.accepted_throughput()
    );
}

#[test]
fn all_nonblocking_constructions_pass_complete_audit() {
    for n in 1..=3usize {
        let f2 = NonblockingFtree::new(n, (2 * n + 1).max(2)).unwrap();
        assert!(
            is_nonblocking_deterministic(&f2.router()),
            "2-level n={n} fails audit"
        );
    }
    let f3 = NonblockingThreeLevel::new(2).unwrap();
    assert!(
        is_nonblocking_deterministic(&f3.router()),
        "3-level fails audit"
    );
}

#[test]
fn deterministic_routers_below_n2_always_block() {
    for (n, r) in [(2usize, 5usize), (3, 7)] {
        for m in 1..n * n {
            let ft = Ftree::new(n, m, r).unwrap();
            assert!(
                find_blocking_two_pair(&DModK::new(&ft)).found_blocking(),
                "n={n} m={m} should block"
            );
        }
    }
}

#[test]
fn pattern_routers_agree_on_nonblocking_verdicts() {
    // On a fabric where all three "clean" routers apply, none ever
    // contends over a shared random workload.
    let ft = Ftree::new(2, 16, 4).unwrap();
    let yuan_ft = Ftree::new(2, 4, 4).unwrap();
    let benes_ft = Ftree::new(2, 2, 4).unwrap();
    let adaptive = NonblockingAdaptive::new(&ft).unwrap();
    let yuan = YuanDeterministic::new(&yuan_ft).unwrap();
    let central = RearrangeableRouter::new(&benes_ft).unwrap();
    let mut g = rng(3);
    for _ in 0..25 {
        let perm = patterns::random_full(8, &mut g);
        assert!(adaptive.route_pattern(&perm).unwrap().max_channel_load() <= 1);
        assert!(
            PatternRouter::route_pattern(&yuan, &perm)
                .unwrap()
                .max_channel_load()
                <= 1
        );
        assert!(central.route_pattern(&perm).unwrap().max_channel_load() <= 1);
    }
}

#[test]
fn contention_structure_of_baselines_is_complementary() {
    // At m = n, d-mod-k and greedy local adaptive fail in mirror ways:
    // d-mod-k's downlinks are clean (top = d mod n separates same-switch
    // destinations) but its uplinks collide; greedy balances each switch's
    // uplinks perfectly but its downlinks collide. The Theorem 3 routing
    // at m = n² has neither. This is the structural content behind any
    // blocking-probability comparison.
    let ft = Ftree::new(3, 3, 7).unwrap();
    let topo = ft.topology();
    let dmodk = DModK::new(&ft);
    let greedy = ftclos::routing::GreedyLocalAdaptive::new(&ft);
    let mut g = rng(7);
    let mut dmodk_up = 0u32;
    let mut dmodk_down = 0u32;
    let mut greedy_up = 0u32;
    let mut greedy_down = 0u32;
    for _ in 0..60 {
        let perm = patterns::random_full(21, &mut g);
        for (router, up, down) in [
            (
                PatternRouter::route_pattern(&dmodk, &perm).unwrap(),
                &mut dmodk_up,
                &mut dmodk_down,
            ),
            (
                greedy.route_pattern(&perm).unwrap(),
                &mut greedy_up,
                &mut greedy_down,
            ),
        ] {
            for (c, load) in router.channel_loads() {
                if load <= 1 {
                    continue;
                }
                let ch = topo.channel(c);
                if ft.top_index(ch.dst).is_some() {
                    *up += 1;
                } else if ft.top_index(ch.src).is_some() {
                    *down += 1;
                }
            }
        }
    }
    assert!(dmodk_up > 0, "d-mod-k must show uplink contention");
    assert_eq!(dmodk_down, 0, "d-mod-k downlinks are clean at m = n");
    assert_eq!(greedy_up, 0, "greedy uplinks are clean");
    assert!(greedy_down > 0, "greedy must show downlink contention");

    let ft_nb = Ftree::new(3, 9, 7).unwrap();
    let f_yuan =
        blocking_report(&YuanDeterministic::new(&ft_nb).unwrap(), 120, 7).blocking_fraction();
    assert_eq!(f_yuan, 0.0);
}

#[test]
fn forwarding_tables_reproduce_router_paths() {
    use ftclos::routing::ForwardingTables;
    let ft = Ftree::new(3, 9, 5).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let tables = ForwardingTables::compile(&router, ft.topology()).unwrap();
    let topo = ft.topology();
    for s in 0..15u32 {
        for d in 0..15u32 {
            if s == d {
                continue;
            }
            let path = ftclos::routing::SinglePathRouter::route(
                &router,
                ftclos::traffic::SdPair::new(s, d),
            );
            // Walk by table lookups and compare.
            let mut walked = vec![path.channels()[0]];
            loop {
                let last = topo.channel(*walked.last().unwrap());
                if last.dst.0 == d {
                    break;
                }
                walked.push(tables.next_hop(last.dst, last.dst_port, d).unwrap());
            }
            assert_eq!(walked, path.channels(), "pair ({s},{d})");
        }
    }
}

#[test]
fn adaptive_beats_deterministic_top_count_at_scale() {
    // Theorem 5's practical consequence on a concrete fabric sweep.
    let mut g = rng(11);
    for n in [6usize, 8] {
        let r = n * n;
        let ft = Ftree::new(n, 1, r).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let mut worst = 0usize;
        for _ in 0..10 {
            let perm = patterns::random_full((n * r) as u32, &mut g);
            worst = worst.max(router.plan(&perm).unwrap().tops_needed());
        }
        assert!(worst < n * n, "n={n}: {worst} tops >= n²");
    }
}

#[test]
fn three_level_sim_delivers_line_rate() {
    let f3 = NonblockingThreeLevel::new(2).unwrap();
    let router = f3.router();
    let mut g = rng(13);
    let perm = patterns::random_derangement(f3.ports() as u32, &mut g);
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_200,
        ..SimConfig::default()
    };
    let stats = Simulator::new(
        f3.network().topology(),
        cfg,
        Policy::from_single_path(&router),
    )
    .run(&Workload::permutation(&perm, 1.0), 17);
    assert!(
        stats.accepted_throughput() > 0.93,
        "3-level throughput {}",
        stats.accepted_throughput()
    );
}
