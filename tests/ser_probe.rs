#[test]
fn channel_busy_serde_roundtrip() {
    let mut cb = ftclos_sim::ChannelBusy::zeros(2000);
    cb.add(7, 3);
    cb.add(1500, 9);
    let s = serde_json::to_string(&cb).unwrap();
    println!("serialized: {}", &s[..s.len().min(400)]);
    let back: ftclos_sim::ChannelBusy = serde_json::from_str(&s).unwrap();
    assert_eq!(back, cb);
    assert_eq!(back.get(7), 3);
    assert_eq!(back.len(), 2000);
}
