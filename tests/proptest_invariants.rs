//! Property-based tests over the core invariants, spanning crates.

use ftclos::core::lemma2;
use ftclos::routing::{
    route_all, DModK, NonblockingAdaptive, PatternRouter, RearrangeableRouter, SinglePathRouter,
    YuanDeterministic,
};
use ftclos::topo::{
    kary_ntree, FaultSet, FaultyView, Ftree, NodeId, StructureReport, Topology, Transition,
};
use ftclos::traffic::{patterns, Permutation, SdPair};
use proptest::prelude::*;
use rand::SeedableRng;

/// A random small `(n, m, r)` shape.
fn shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..5, 1usize..8, 1usize..8)
}

/// Apply a random fault set to `t`, then repair every fault individually
/// (channels via `Up` transitions, switches via `repair_switch` — no
/// wholesale `clear()`): the resulting view must be indistinguishable from
/// pristine and the underlying topology bit-identical.
fn assert_revive_round_trip(t: &Topology, links: usize, switches: usize, seed: u64) {
    let before = t.clone();
    let mut faults = FaultSet::random_links(t, links, seed);
    faults.merge(&FaultSet::random_top_switches(t, switches, seed ^ 0x9E37));
    let failed_channels: Vec<_> = faults.failed_channels().collect();
    let failed_switches: Vec<_> = faults.failed_switches().collect();
    {
        let view = FaultyView::new(t, &faults);
        assert_eq!(
            view.num_dead_nodes(),
            failed_switches.len(),
            "every sampled switch is dead while faulted"
        );
    }
    for c in failed_channels {
        faults.apply_channel(c, Transition::Up);
    }
    for s in failed_switches {
        faults.repair_switch(s);
    }
    assert!(faults.is_empty(), "all faults individually removed");
    let view = FaultyView::new(t, &faults);
    assert_eq!(view.num_dead_channels(), 0);
    assert_eq!(view.num_dead_nodes(), 0);
    assert!(t.channel_ids().all(|c| view.channel_alive(c)));
    assert!(t.node_ids().all(|v| view.node_alive(v)));
    assert_eq!(*t, before, "overlay never mutates the topology");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ftree_structure_invariants((n, m, r) in shape()) {
        let ft = Ftree::new(n, m, r).unwrap();
        let t = ft.topology();
        prop_assert!(t.audit().is_ok());
        prop_assert_eq!(t.num_nodes(), r * n + r + m);
        prop_assert_eq!(t.num_channels(), 2 * (r * n + r * m));
        let rep = StructureReport::new(t);
        prop_assert_eq!(rep.leaves, r * n);
        prop_assert_eq!(rep.total_switches(), r + m);
        // Every bottom switch has radix n+m; every top has radix r.
        for v in 0..r {
            prop_assert_eq!(t.radix(ft.bottom(v)), n + m);
        }
        for tt in 0..m {
            prop_assert_eq!(t.radix(ft.top(tt)), r);
        }
    }

    #[test]
    fn random_permutations_satisfy_property1(ports in 2u32..40, seed in 0u64..1000) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full(ports, &mut rng);
        prop_assert!(perm.is_full());
        // Property 1: distinct sources, distinct destinations.
        let mut srcs: Vec<u32> = perm.pairs().iter().map(|p| p.src).collect();
        let mut dsts: Vec<u32> = perm.pairs().iter().map(|p| p.dst).collect();
        srcs.sort_unstable(); srcs.dedup();
        dsts.sort_unstable(); dsts.dedup();
        prop_assert_eq!(srcs.len(), ports as usize);
        prop_assert_eq!(dsts.len(), ports as usize);
    }

    #[test]
    fn partial_permutations_validate(ports in 2u32..30, density in 0.0f64..1.0, seed in 0u64..500) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_partial(ports, density, &mut rng);
        // Re-validating through the constructor must succeed.
        let rebuilt = Permutation::from_pairs(ports, perm.pairs().iter().copied());
        prop_assert!(rebuilt.is_ok());
    }

    #[test]
    fn yuan_routing_never_contends(n in 1usize..4, r in 1usize..8, seed in 0u64..500) {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full((n * r) as u32, &mut rng);
        let a = route_all(&router, &perm).unwrap();
        prop_assert!(a.max_channel_load() <= 1);
        prop_assert!(a.validate(ft.topology()).is_ok());
    }

    #[test]
    fn yuan_paths_are_minimal(n in 1usize..4, r in 1usize..8, s in 0usize..24, d in 0usize..24) {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let ports = n * r;
        let (s, d) = (s % ports, d % ports);
        let router = YuanDeterministic::new(&ft).unwrap();
        let path = router.route(SdPair::new(s as u32, d as u32));
        let expected = if s == d { 0 } else if s / n == d / n { 2 } else { 4 };
        prop_assert_eq!(path.len(), expected);
        prop_assert!(path.validate(ft.topology(), NodeId(s as u32), NodeId(d as u32)).is_ok());
    }

    #[test]
    fn adaptive_never_contends_and_stays_under_budget(
        n in 2usize..5, r_mult in 1usize..4, seed in 0u64..300,
    ) {
        let r = n * r_mult;
        let ft = Ftree::new(n, 4 * n * n, r).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full((n * r) as u32, &mut rng);
        let plan = router.plan(&perm).unwrap();
        let c = router.coder().c();
        // Coarse bound from the paper's counting argument.
        prop_assert!(plan.total_configs() <= n.div_ceil(c + 2) + 1);
        let a = router.route_pattern(&perm).unwrap();
        prop_assert!(a.max_channel_load() <= 1);
    }

    #[test]
    fn edge_coloring_is_always_proper(n in 1usize..5, r in 2usize..7, seed in 0u64..300) {
        let ft = Ftree::new(n, n.max(1), r).unwrap();
        let router = RearrangeableRouter::new(&ft).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full((n * r) as u32, &mut rng);
        let a = router.route_pattern(&perm).unwrap();
        prop_assert!(a.max_channel_load() <= 1, "Beneš m = n must color any permutation");
        prop_assert!(a.validate(ft.topology()).is_ok());
    }

    #[test]
    fn dmodk_paths_valid_even_when_blocking(
        n in 1usize..5, m in 1usize..6, r in 1usize..7, seed in 0u64..200,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let router = DModK::new(&ft);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full((n * r) as u32, &mut rng);
        let a = route_all(&router, &perm).unwrap();
        prop_assert!(a.validate(ft.topology()).is_ok());
    }

    #[test]
    fn lemma2_greedy_and_type3_within_bound(n in 1usize..5, r in 2usize..9) {
        let bound = lemma2::lemma2_bound(n, r);
        let t3 = lemma2::type3_construction(n, r);
        prop_assert!(lemma2::is_routable_through_root(n, r, &t3));
        prop_assert!(t3.len() <= bound);
        let greedy = lemma2::greedy_max(n, r);
        prop_assert!(lemma2::is_routable_through_root(n, r, &greedy));
        prop_assert!(greedy.len() <= bound);
    }

    #[test]
    fn kary_ntree_structure(k in 1usize..5, levels in 1usize..4) {
        let t = kary_ntree(k, levels).unwrap();
        prop_assert!(t.topology().audit().is_ok());
        prop_assert_eq!(t.num_leaves(), k.pow(levels as u32));
        prop_assert_eq!(t.num_switches(), levels * k.pow(levels as u32 - 1));
    }

    #[test]
    fn permutation_inverse_involution(ports in 1u32..30, seed in 0u64..200) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full(ports, &mut rng);
        prop_assert_eq!(perm.inverse().inverse(), perm);
    }

    #[test]
    fn structured_patterns_are_valid_permutations(ports in 1u32..64) {
        for pat in patterns::StructuredPattern::ALL {
            if let Some(perm) = pat.generate(ports) {
                let rebuilt = Permutation::from_pairs(ports, perm.pairs().iter().copied());
                prop_assert!(rebuilt.is_ok(), "{:?} at {} ports", pat, ports);
            }
        }
    }

    #[test]
    fn simulator_conserves_packets_under_any_config(
        n in 1usize..4,
        r in 2usize..6,
        rate in 0.05f64..1.0,
        flits in 1u64..4,
        islip in proptest::bool::ANY,
        seed in 0u64..500,
    ) {
        use ftclos::sim::{Arbiter, Policy, SimConfig, Simulator, Workload};
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let cfg = SimConfig {
            warmup_cycles: 20,
            measure_cycles: 150,
            packet_flits: flits,
            arbiter: if islip { Arbiter::Voq { iterations: 1 } } else { Arbiter::HolFifo },
            drain: true,
            ..SimConfig::default()
        };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Derangement: self-pairs deliver instantly with zero latency and
        // would dilute the latency lower bound below.
        let perm = patterns::random_derangement((n * r) as u32, &mut rng);
        let stats = Simulator::new(ft.topology(), cfg, Policy::from_single_path(&router))
            .run(&Workload::permutation(&perm, rate), seed);
        // Conservation: drain empties the network entirely.
        prop_assert_eq!(stats.leftover_packets, 0);
        prop_assert_eq!(stats.injected_total, stats.delivered_total);
        // Latency sanity: at least the hop count (+ serialization).
        if stats.delivered_in_window > 0 {
            prop_assert!(stats.mean_latency() >= flits as f64);
            prop_assert!(stats.latency_p50 <= stats.latency_p99);
        }
        // Accepted throughput can never exceed offered (open-loop sources).
        prop_assert!(stats.accepted_throughput() <= rate + 0.15);
    }

    #[test]
    fn circuit_clos_audit_holds_under_random_churn(
        n in 1usize..4,
        m_extra in 0usize..4,
        r in 2usize..5,
        seed in 0u64..500,
    ) {
        use ftclos::core::circuit::{CircuitClos, ConnectError, MiddlePolicy};
        use rand::Rng as _;
        let m = n + m_extra; // always >= n: rearrangement must succeed
        let mut c = CircuitClos::new(n, m, r, MiddlePolicy::FirstFit);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let ports = c.ports();
        for _ in 0..300 {
            if rng.gen_bool(0.6) {
                let s = rng.gen_range(0..ports);
                let d = rng.gen_range(0..ports);
                if let Err(ConnectError::Blocked) = c.connect(s, d) {
                    // m >= n: Beneš says rearrangement always recovers.
                    prop_assert!(c.connect_rearranging(s, d).is_ok());
                }
            } else {
                let s = rng.gen_range(0..ports);
                c.disconnect(s);
            }
            prop_assert!(c.audit().is_ok());
        }
    }

    #[test]
    fn ftree_fault_revive_round_trip(
        (n, m, r) in shape(), links in 0usize..6, switches in 0usize..3, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        assert_revive_round_trip(ft.topology(), links, switches, seed);
    }

    #[test]
    fn kary_ntree_fault_revive_round_trip(
        k in 1usize..5, levels in 1usize..4, links in 0usize..6, seed in 0u64..500,
    ) {
        let t = kary_ntree(k, levels).unwrap();
        assert_revive_round_trip(t.topology(), links, 1, seed);
    }

    #[test]
    fn recursive_fault_revive_round_trip(links in 0usize..8, seed in 0u64..500) {
        use ftclos::topo::RecursiveNonblocking;
        let net = RecursiveNonblocking::new(2).unwrap();
        assert_revive_round_trip(net.topology(), links, 2, seed);
    }

    #[test]
    fn yuan_recursive_paths_valid_and_disjoint(seed in 0u64..300) {
        use ftclos::routing::YuanRecursive;
        use ftclos::topo::RecursiveNonblocking;
        let net = RecursiveNonblocking::new(2).unwrap();
        let router = YuanRecursive::new(&net);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full(net.num_leaves() as u32, &mut rng);
        let a = route_all(&router, &perm).unwrap();
        prop_assert!(a.validate(net.topology()).is_ok());
        prop_assert!(a.max_channel_load() <= 1);
    }
}
