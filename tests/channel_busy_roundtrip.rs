//! `ChannelBusy` serialization round-trips (replaces the PR 9 `ser_probe`
//! debug leftover).
//!
//! The vendored `serde` is a no-op marker shim (no `serde_json` exists
//! in-tree), so the accumulator's real serialization surface is the dense
//! codec: `to_vec()` out, `From<Vec<u64>>` back in. These proptests pin
//! that codec plus the sparse representation's equality semantics: logical
//! equality must ignore page materialization (an explicitly-written zero
//! and a never-touched slot are the same value), and `get()` must answer 0
//! for untouched pages and out-of-range ids without materializing anything.

use ftclos_sim::state::PAGE_LEN;
use ftclos_sim::ChannelBusy;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Expand `(seed, len, writes)` into a concrete write list.
fn writes_from_seed(seed: u64, len: usize, writes: usize) -> Vec<(usize, u64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..writes)
        .map(|_| (rng.gen_range(0..len), rng.gen_range(0..100u64)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sparse round-trip: few touches over a many-page span; the dense
    /// codec out and back preserves logical value, length, and every
    /// per-channel count.
    #[test]
    fn sparse_roundtrip(seed in 0u64..1000, len in 1usize..6 * PAGE_LEN, writes in 0usize..24) {
        let mut cb = ChannelBusy::zeros(len);
        for (id, cycles) in writes_from_seed(seed, len, writes) {
            cb.add(id, cycles);
        }
        let dense = cb.to_vec();
        prop_assert_eq!(dense.len(), len);
        let back = ChannelBusy::from(dense.clone());
        prop_assert_eq!(&back, &cb);
        prop_assert_eq!(back.len(), cb.len());
        for (id, &count) in dense.iter().enumerate() {
            prop_assert_eq!(back.get(id), cb.get(id));
            prop_assert_eq!(cb.get(id), count);
        }
        // The decoder skips zeros: it never materializes more than the
        // encoder's touched footprint.
        prop_assert!(back.touched_channels() <= cb.touched_channels());
    }

    /// Dense round-trip: every channel written.
    #[test]
    fn dense_roundtrip(seed in 0u64..1000, len in 0usize..2 * PAGE_LEN + 7) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dense: Vec<u64> = (0..len).map(|_| rng.gen_range(0..50u64)).collect();
        let cb = ChannelBusy::from(dense.clone());
        prop_assert_eq!(cb.len(), dense.len());
        prop_assert_eq!(cb.to_vec(), dense.clone());
        let nonzero_expected = dense.iter().filter(|&&b| b > 0).count();
        prop_assert_eq!(cb.nonzero().count(), nonzero_expected);
        prop_assert_eq!(&ChannelBusy::from(cb.to_vec()), &cb);
    }

    /// Trailing-zero-page equality: materializing pages by writing explicit
    /// zeros must not break logical equality, in either direction.
    #[test]
    fn trailing_zero_pages_compare_equal(seed in 0u64..1000, pages in 2usize..5, touches in 1usize..6) {
        let len = pages * PAGE_LEN;
        let mut plain = ChannelBusy::zeros(len);
        let mut padded = ChannelBusy::zeros(len);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..touches {
            let (off, cycles) = (rng.gen_range(0..PAGE_LEN), rng.gen_range(1..9u64));
            plain.add(off, cycles); // page 0 only
            padded.add(off, cycles);
        }
        // Materialize every later page of `padded` with explicit zeros.
        for p in 1..pages {
            padded.add(p * PAGE_LEN, 0);
        }
        prop_assert!(padded.touched_channels() > plain.touched_channels());
        prop_assert_eq!(&padded, &plain);
        prop_assert_eq!(&plain, &padded);
        prop_assert_eq!(padded.to_vec(), plain.to_vec());
        // The round-tripped padded image drops the zero pages entirely.
        let back = ChannelBusy::from(padded.to_vec());
        prop_assert_eq!(&back, &padded);
        prop_assert_eq!(back.touched_channels(), plain.touched_channels());
    }

    /// `get()` past materialized pages: ids in untouched pages and ids
    /// beyond `len` read 0, and reading never materializes state.
    #[test]
    fn get_past_materialized_pages(pages in 2usize..5, probe in 0usize..8 * PAGE_LEN, cycles in 1u64..9) {
        let len = pages * PAGE_LEN;
        let mut cb = ChannelBusy::zeros(len);
        cb.add(3, cycles); // materializes page 0 only
        let bytes_before = cb.state_bytes();
        let touched_before = cb.touched_channels();
        let expect = if probe == 3 { cycles } else { 0 };
        prop_assert_eq!(cb.get(probe), expect);
        prop_assert_eq!(cb.get(len), 0); // first out-of-range id
        prop_assert_eq!(cb.get(len + probe), 0);
        prop_assert_eq!(cb.state_bytes(), bytes_before);
        prop_assert_eq!(cb.touched_channels(), touched_before);
    }
}

#[test]
fn empty_roundtrip() {
    let cb = ChannelBusy::zeros(0);
    assert!(cb.is_empty());
    assert_eq!(cb.to_vec(), Vec::<u64>::new());
    assert_eq!(ChannelBusy::from(Vec::new()), cb);
    assert_eq!(cb.get(0), 0);
    assert_eq!(cb.nonzero().count(), 0);
}
