//! Failure injection: sabotage routing in controlled ways and confirm every
//! verifier actually catches the fault. A verification suite that never
//! sees a negative is untested itself.

use ftclos::core::search::find_blocking_two_pair;
use ftclos::core::verify::{is_nonblocking_deterministic, LinkAudit};
use ftclos::routing::{
    route_all, ForwardingTables, Path, SinglePathRouter, YuanDeterministic,
};
use ftclos::topo::Ftree;
use ftclos::traffic::SdPair;

/// Wraps the Theorem 3 router but forces one specific pair onto the wrong
/// top switch.
struct Sabotaged<'a> {
    inner: YuanDeterministic<'a>,
    ft: &'a Ftree,
    victim: SdPair,
    wrong_top: usize,
}

impl SinglePathRouter for Sabotaged<'_> {
    fn ports(&self) -> u32 {
        SinglePathRouter::ports(&self.inner)
    }
    fn route(&self, pair: SdPair) -> Path {
        if pair != self.victim {
            return self.inner.route(pair);
        }
        let n = self.ft.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        Path::new(vec![
            self.ft.leaf_up_channel(v, i),
            self.ft.up_channel(v, self.wrong_top),
            self.ft.down_channel(self.wrong_top, w),
            self.ft.leaf_down_channel(w, j),
        ])
    }
    fn name(&self) -> &'static str {
        "sabotaged-yuan"
    }
}

#[test]
fn audit_catches_a_single_misrouted_pair() {
    let ft = Ftree::new(2, 4, 5).unwrap();
    let clean = YuanDeterministic::new(&ft).unwrap();
    assert!(is_nonblocking_deterministic(&clean), "baseline must be clean");

    // Misroute (leaf 0 -> leaf 9): correct top is (0, 1) = 1; force top 0.
    // Top 0's downlink to switch 4 now carries destination 9 *and* the
    // legitimate (·,0)-destined traffic — a Lemma 1 violation.
    let bad = Sabotaged {
        inner: clean,
        ft: &ft,
        victim: SdPair::new(0, 9),
        wrong_top: 0,
    };
    assert!(
        !is_nonblocking_deterministic(&bad),
        "audit must flag one misrouted pair among all {} pairs",
        10 * 9
    );
    // And the complete two-pair search produces a concrete witness that
    // really contends.
    let witness = find_blocking_two_pair(&bad).expect("witness exists");
    let a = route_all(&bad, &witness).unwrap();
    assert!(a.max_channel_load() >= 2);
}

/// Routes every pair like Yuan, except the top choice additionally depends
/// on the *source switch parity* — not realizable as per-(input port,
/// destination) forwarding tables.
struct TableUnrealizable<'a> {
    ft: &'a Ftree,
}

impl SinglePathRouter for TableUnrealizable<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }
    fn route(&self, pair: SdPair) -> Path {
        let n = self.ft.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        if pair.src == pair.dst {
            return Path::empty();
        }
        if v == w {
            return Path::new(vec![
                self.ft.leaf_up_channel(v, i),
                self.ft.leaf_down_channel(w, j),
            ]);
        }
        // Downlink choice at the top switch depends on v's parity, which a
        // (in_port, dst) table at the top cannot express... actually the
        // top sees different in-ports for different v. Make it depend on
        // *i* instead at the TOP switch: two different tops converge is
        // fine; instead vary the DOWNSTREAM behaviour per source parity by
        // picking different tops for the same (i, dst) — that breaks the
        // *bottom* switch table, which keys on (in_port = i, dst).
        let t = (i * n + j + v % 2) % self.ft.m();
        Path::new(vec![
            self.ft.leaf_up_channel(v, i),
            self.ft.up_channel(v, t),
            self.ft.down_channel(t, w),
            self.ft.leaf_down_channel(w, j),
        ])
    }
    fn name(&self) -> &'static str {
        "table-unrealizable"
    }
}

#[test]
fn forwarding_table_compiler_rejects_unrealizable_routing() {
    let ft = Ftree::new(2, 4, 5).unwrap();
    let clean = YuanDeterministic::new(&ft).unwrap();
    assert!(ForwardingTables::compile(&clean, ft.topology()).is_ok());

    let weird = TableUnrealizable { ft: &ft };
    // Same (in_port, dst) at a bottom switch demands different uplinks for
    // odd/even source switches... per-switch tables are keyed by switch, so
    // v parity IS distinguishable per bottom switch. The conflict appears
    // at the TOP switch: top t's (in_port = v, dst) entries stay
    // consistent... Verify empirically which it is: either compile fails,
    // or the routing is realizable after all — assert the compiler and a
    // manual walk agree.
    match ForwardingTables::compile(&weird, ft.topology()) {
        Err(_) => {} // rejected: conflict detected, as designed
        Ok(tables) => {
            // If it compiled, walking the tables must reproduce the router
            // exactly for every pair (i.e. compile() accepted it because it
            // truly is table-realizable).
            let topo = ft.topology();
            for s in 0..10u32 {
                for d in 0..10u32 {
                    if s == d {
                        continue;
                    }
                    let path = weird.route(SdPair::new(s, d));
                    let mut walked = vec![path.channels()[0]];
                    loop {
                        let last = topo.channel(*walked.last().unwrap());
                        if last.dst.0 == d {
                            break;
                        }
                        walked.push(tables.next_hop(last.dst, last.dst_port, d).unwrap());
                    }
                    assert_eq!(walked, path.channels(), "tables diverge for ({s},{d})");
                }
            }
        }
    }
}

#[test]
fn truncated_and_scrambled_paths_fail_validation() {
    let ft = Ftree::new(2, 4, 5).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let good = router.route(SdPair::new(0, 9));
    good.validate(ft.topology(), ftclos::topo::NodeId(0), ftclos::topo::NodeId(9))
        .unwrap();

    // Truncate: ends at the wrong node.
    let truncated = Path::new(good.channels()[..3].to_vec());
    assert!(truncated
        .validate(ft.topology(), ftclos::topo::NodeId(0), ftclos::topo::NodeId(9))
        .is_err());

    // Scramble: swap two hops — walk becomes discontinuous.
    let mut scrambled = good.channels().to_vec();
    scrambled.swap(1, 2);
    assert!(Path::new(scrambled)
        .validate(ft.topology(), ftclos::topo::NodeId(0), ftclos::topo::NodeId(9))
        .is_err());
}

#[test]
fn audit_census_is_exact_not_heuristic() {
    // Remove the sabotage and the audit must pass again — no false
    // positives from the machinery itself.
    let ft = Ftree::new(3, 9, 7).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let audit = LinkAudit::build(&router);
    assert!(audit.lemma1_check(&router).is_ok());
    // Every used channel has either exactly 1 source or exactly 1 dest.
    for t in 0..9usize {
        for v in 0..7usize {
            let (srcs, dsts) = audit.channel_census(ft.up_channel(v, t)).unwrap();
            assert_eq!(srcs.len(), 1);
            assert_eq!(dsts.len(), ft.r() - 1);
        }
    }
}

#[test]
fn sim_counts_unrouteable_pairs_as_refusals() {
    use ftclos::sim::{Policy, SimConfig, Simulator, Workload};
    let ft = Ftree::new(2, 4, 5).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    // Policy knows only ONE pair; workload asks every leaf to send.
    let perm = ftclos::traffic::Permutation::from_pairs(10, [SdPair::new(0, 5)]).unwrap();
    let assignment = route_all(&router, &perm).unwrap();
    let policy = Policy::from_assignment(&assignment);
    let full = ftclos::traffic::patterns::shift(10, 3);
    let cfg = SimConfig {
        warmup_cycles: 10,
        measure_cycles: 100,
        ..SimConfig::default()
    };
    let stats = Simulator::new(ft.topology(), cfg, policy)
        .run(&Workload::permutation(&full, 1.0), 3);
    assert!(stats.injection_refusals > 0, "unknown pairs must be refused");
    assert_eq!(
        stats.injected_total,
        stats.delivered_total + stats.leftover_packets
    );
}
