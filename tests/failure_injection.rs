//! Failure injection: sabotage routing in controlled ways and confirm every
//! verifier actually catches the fault. A verification suite that never
//! sees a negative is untested itself.

use ftclos::core::search::find_blocking_two_pair;
use ftclos::core::verify::{is_nonblocking_deterministic, LinkAudit};
use ftclos::routing::{route_all, ForwardingTables, Path, SinglePathRouter, YuanDeterministic};
use ftclos::topo::Ftree;
use ftclos::traffic::SdPair;

/// Wraps the Theorem 3 router but forces one specific pair onto the wrong
/// top switch.
struct Sabotaged<'a> {
    inner: YuanDeterministic<'a>,
    ft: &'a Ftree,
    victim: SdPair,
    wrong_top: usize,
}

impl SinglePathRouter for Sabotaged<'_> {
    fn ports(&self) -> u32 {
        SinglePathRouter::ports(&self.inner)
    }
    fn route(&self, pair: SdPair) -> Path {
        if pair != self.victim {
            return self.inner.route(pair);
        }
        let n = self.ft.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        Path::new(vec![
            self.ft.leaf_up_channel(v, i),
            self.ft.up_channel(v, self.wrong_top),
            self.ft.down_channel(self.wrong_top, w),
            self.ft.leaf_down_channel(w, j),
        ])
    }
    fn name(&self) -> &'static str {
        "sabotaged-yuan"
    }
}

#[test]
fn audit_catches_a_single_misrouted_pair() {
    let ft = Ftree::new(2, 4, 5).unwrap();
    let clean = YuanDeterministic::new(&ft).unwrap();
    assert!(
        is_nonblocking_deterministic(&clean),
        "baseline must be clean"
    );

    // Misroute (leaf 0 -> leaf 9): correct top is (0, 1) = 1; force top 0.
    // Top 0's downlink to switch 4 now carries destination 9 *and* the
    // legitimate (·,0)-destined traffic — a Lemma 1 violation.
    let bad = Sabotaged {
        inner: clean,
        ft: &ft,
        victim: SdPair::new(0, 9),
        wrong_top: 0,
    };
    assert!(
        !is_nonblocking_deterministic(&bad),
        "audit must flag one misrouted pair among all {} pairs",
        10 * 9
    );
    // And the complete two-pair search produces a concrete witness that
    // really contends.
    let witness = find_blocking_two_pair(&bad)
        .into_witness()
        .expect("witness exists");
    let a = route_all(&bad, &witness).unwrap();
    assert!(a.max_channel_load() >= 2);
}

/// Routes every pair like Yuan, except the top choice additionally depends
/// on the *source switch parity* — not realizable as per-(input port,
/// destination) forwarding tables.
struct TableUnrealizable<'a> {
    ft: &'a Ftree,
}

impl SinglePathRouter for TableUnrealizable<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }
    fn route(&self, pair: SdPair) -> Path {
        let n = self.ft.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        if pair.src == pair.dst {
            return Path::empty();
        }
        if v == w {
            return Path::new(vec![
                self.ft.leaf_up_channel(v, i),
                self.ft.leaf_down_channel(w, j),
            ]);
        }
        // Downlink choice at the top switch depends on v's parity, which a
        // (in_port, dst) table at the top cannot express... actually the
        // top sees different in-ports for different v. Make it depend on
        // *i* instead at the TOP switch: two different tops converge is
        // fine; instead vary the DOWNSTREAM behaviour per source parity by
        // picking different tops for the same (i, dst) — that breaks the
        // *bottom* switch table, which keys on (in_port = i, dst).
        let t = (i * n + j + v % 2) % self.ft.m();
        Path::new(vec![
            self.ft.leaf_up_channel(v, i),
            self.ft.up_channel(v, t),
            self.ft.down_channel(t, w),
            self.ft.leaf_down_channel(w, j),
        ])
    }
    fn name(&self) -> &'static str {
        "table-unrealizable"
    }
}

#[test]
fn forwarding_table_compiler_rejects_unrealizable_routing() {
    let ft = Ftree::new(2, 4, 5).unwrap();
    let clean = YuanDeterministic::new(&ft).unwrap();
    assert!(ForwardingTables::compile(&clean, ft.topology()).is_ok());

    let weird = TableUnrealizable { ft: &ft };
    // Same (in_port, dst) at a bottom switch demands different uplinks for
    // odd/even source switches... per-switch tables are keyed by switch, so
    // v parity IS distinguishable per bottom switch. The conflict appears
    // at the TOP switch: top t's (in_port = v, dst) entries stay
    // consistent... Verify empirically which it is: either compile fails,
    // or the routing is realizable after all — assert the compiler and a
    // manual walk agree.
    match ForwardingTables::compile(&weird, ft.topology()) {
        Err(_) => {} // rejected: conflict detected, as designed
        Ok(tables) => {
            // If it compiled, walking the tables must reproduce the router
            // exactly for every pair (i.e. compile() accepted it because it
            // truly is table-realizable).
            let topo = ft.topology();
            for s in 0..10u32 {
                for d in 0..10u32 {
                    if s == d {
                        continue;
                    }
                    let path = weird.route(SdPair::new(s, d));
                    let mut walked = vec![path.channels()[0]];
                    loop {
                        let last = topo.channel(*walked.last().unwrap());
                        if last.dst.0 == d {
                            break;
                        }
                        walked.push(tables.next_hop(last.dst, last.dst_port, d).unwrap());
                    }
                    assert_eq!(walked, path.channels(), "tables diverge for ({s},{d})");
                }
            }
        }
    }
}

#[test]
fn truncated_and_scrambled_paths_fail_validation() {
    let ft = Ftree::new(2, 4, 5).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let good = router.route(SdPair::new(0, 9));
    good.validate(
        ft.topology(),
        ftclos::topo::NodeId(0),
        ftclos::topo::NodeId(9),
    )
    .unwrap();

    // Truncate: ends at the wrong node.
    let truncated = Path::new(good.channels()[..3].to_vec());
    assert!(truncated
        .validate(
            ft.topology(),
            ftclos::topo::NodeId(0),
            ftclos::topo::NodeId(9)
        )
        .is_err());

    // Scramble: swap two hops — walk becomes discontinuous.
    let mut scrambled = good.channels().to_vec();
    scrambled.swap(1, 2);
    assert!(Path::new(scrambled)
        .validate(
            ft.topology(),
            ftclos::topo::NodeId(0),
            ftclos::topo::NodeId(9)
        )
        .is_err());
}

#[test]
fn audit_census_is_exact_not_heuristic() {
    // Remove the sabotage and the audit must pass again — no false
    // positives from the machinery itself.
    let ft = Ftree::new(3, 9, 7).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let audit = LinkAudit::build(&router);
    assert!(audit.lemma1_check(&router).is_ok());
    // Every used channel has either exactly 1 source or exactly 1 dest.
    for t in 0..9usize {
        for v in 0..7usize {
            let (srcs, dsts) = audit.channel_census(ft.up_channel(v, t)).unwrap();
            assert_eq!(srcs.len(), 1);
            assert_eq!(dsts.len(), ft.r() - 1);
        }
    }
}

#[test]
fn masked_adaptive_routes_around_dead_top_contention_free() {
    // Positive route-around: ftree(3+12, 9) has a spare partition. Kill any
    // single top and the masked NONBLOCKINGADAPTIVE still routes full
    // permutations at channel load 1, using only live hardware.
    use ftclos::routing::NonblockingAdaptive;
    use ftclos::topo::{FaultSet, FaultyView};
    use ftclos::traffic::patterns;
    use rand::SeedableRng;

    let ft = Ftree::new(3, 12, 9).unwrap();
    let router = NonblockingAdaptive::new(&ft).unwrap();
    let mut faults = FaultSet::new();
    faults.fail_switch(ft.top(4));
    let view = FaultyView::new(ft.topology(), &faults);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    for _ in 0..5 {
        let perm = patterns::random_full(27, &mut rng);
        let a = router.route_pattern_masked(&perm, &view).unwrap();
        assert_eq!(
            a.max_channel_load(),
            1,
            "masked plan must stay contention-free"
        );
        for (_, path) in a.routes() {
            view.path_alive(path.channels())
                .expect("masked routes must use only live channels");
        }
    }
}

#[test]
fn lemma1_catches_multipath_forced_onto_shared_top() {
    // Negative: kill every top except one. The masked spreader still finds
    // routes (it degrades rather than fails), but two same-switch pairs now
    // share the lone top's downlink — and lemma1_violation must say so.
    use ftclos::routing::{ObliviousMultipath, SpreadPolicy};
    use ftclos::topo::{FaultSet, FaultyView};
    use ftclos::traffic::Permutation;

    let ft = Ftree::new(2, 4, 5).unwrap();
    let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
    let mut faults = FaultSet::new();
    for t in 1..4 {
        faults.fail_switch(ft.top(t));
    }
    let view = FaultyView::new(ft.topology(), &faults);
    // Two cross pairs from switch 0 to switch 2: only top 0 remains.
    let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 5)]).unwrap();
    let spread = mp.spread_pattern_masked(&perm, &view).unwrap();
    assert!(
        spread.lemma1_violation().is_some(),
        "both flows were forced through top 0; the audit must catch the shared channel"
    );
    // Pristine fabric: the same pairs spread over 4 tops still violate
    // Lemma 1 in the union sense (Section IV.B), so this is not an artifact
    // of masking — but the masked single-top case shares EVERY path.
    let clean = mp
        .spread_pattern_masked(&perm, &FaultyView::pristine(ft.topology()))
        .unwrap();
    let dead_count = clean
        .entries()
        .iter()
        .map(|(_, paths)| paths.len())
        .sum::<usize>();
    let lone = spread
        .entries()
        .iter()
        .map(|(_, paths)| paths.len())
        .sum::<usize>();
    assert!(
        lone < dead_count,
        "masking must have pruned candidate paths"
    );
}

#[test]
fn degraded_analysis_flags_sabotaged_router_under_faults() {
    // The degraded-nonblocking analyzer runs the SAME Lemma 1 census over
    // the surviving routes, so a misroute among the survivors is caught.
    use ftclos::core::degraded::deterministic_degradation;
    use ftclos::topo::{FaultSet, FaultyView};

    let ft = Ftree::new(2, 4, 5).unwrap();
    let clean = YuanDeterministic::new(&ft).unwrap();
    let bad = Sabotaged {
        inner: clean,
        ft: &ft,
        victim: SdPair::new(0, 9),
        wrong_top: 0,
    };
    // Fault a top NOT involved in the sabotage so both routes survive.
    let mut faults = FaultSet::new();
    faults.fail_switch(ft.top(3));
    let view = FaultyView::new(ft.topology(), &faults);
    let deg = deterministic_degradation(&bad, &view);
    assert!(
        deg.lemma1.is_err(),
        "surviving-route census must flag the misroute"
    );
    // And the clean router under the same fault passes the census.
    let clean2 = YuanDeterministic::new(&ft).unwrap();
    let deg_clean = deterministic_degradation(&clean2, &view);
    assert!(deg_clean.lemma1.is_ok());
    assert!(
        deg_clean.routable_pairs() < deg_clean.total_pairs,
        "dead top strands pairs"
    );
}

#[test]
fn fault_overlay_is_non_destructive() {
    // Injecting and clearing faults never mutates the topology: the same
    // router over the same fabric produces bit-identical routes afterwards.
    use ftclos::topo::{FaultSet, FaultyView};

    let ft = Ftree::new(2, 4, 5).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let before: Vec<_> = (0..10u32)
        .flat_map(|s| (0..10u32).map(move |d| (s, d)))
        .map(|(s, d)| router.route(SdPair::new(s, d)))
        .collect();
    let census_before = format!("{:?}", ft.topology());

    let mut faults = FaultSet::new();
    faults.fail_switch(ft.top(0));
    faults.fail_link(ft.topology(), ft.leaf_up_channel(1, 0));
    {
        let view = FaultyView::new(ft.topology(), &faults);
        assert!(view.num_dead_channels() > 0);
    }
    faults.clear();
    assert!(faults.is_empty());

    let after: Vec<_> = (0..10u32)
        .flat_map(|s| (0..10u32).map(move |d| (s, d)))
        .map(|(s, d)| router.route(SdPair::new(s, d)))
        .collect();
    assert_eq!(
        before, after,
        "routes must be bit-identical after inject+clear"
    );
    assert_eq!(census_before, format!("{:?}", ft.topology()));
}

#[test]
fn sim_fault_drop_retry_counts_match_flow_verdicts() {
    // End to end: flows whose pinned path crosses the dead uplink are the
    // ones abandoned; everything else is delivered. Conservation holds.
    use ftclos::sim::{Arbiter, FaultSchedule, Policy, SimConfig, Simulator, Workload};
    use ftclos::traffic::patterns;

    let ft = Ftree::new(2, 4, 5).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let perm = patterns::shift(10, 2);
    // Flow 0 -> 2 is pinned to top 0 (leaf offsets (0,0)); kill its uplink.
    let dead = ft.up_channel(0, 0);
    assert!(
        router.route(SdPair::new(0, 2)).channels().contains(&dead),
        "premise: the victim flow rides the killed channel"
    );
    let cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 800,
        ttl_cycles: 60,
        drain: true,
        arbiter: Arbiter::Voq { iterations: 2 },
        ..SimConfig::default()
    };
    let mut faults = FaultSchedule::new();
    faults.kill_channel(200, dead);
    let stats = Simulator::new(ft.topology(), cfg, Policy::from_single_path(&router))
        .try_run_with_faults(&Workload::permutation(&perm, 0.5), 7, &faults)
        .unwrap();
    assert!(
        stats.abandoned_total > 0,
        "the stranded flow must be dropped"
    );
    assert!(
        stats.delivered_total > 0,
        "the other nine flows keep flowing"
    );
    assert!(stats.conservation_ok(), "{stats:?}");
    // Retry is off, so every timeout is terminal.
    assert_eq!(stats.retries_total, 0);
    assert_eq!(stats.timed_out_total, stats.abandoned_total);
}

#[test]
fn sim_counts_unrouteable_pairs_as_refusals() {
    use ftclos::sim::{Policy, SimConfig, Simulator, Workload};
    let ft = Ftree::new(2, 4, 5).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    // Policy knows only ONE pair; workload asks every leaf to send.
    let perm = ftclos::traffic::Permutation::from_pairs(10, [SdPair::new(0, 5)]).unwrap();
    let assignment = route_all(&router, &perm).unwrap();
    let policy = Policy::from_assignment(&assignment);
    let full = ftclos::traffic::patterns::shift(10, 3);
    let cfg = SimConfig {
        warmup_cycles: 10,
        measure_cycles: 100,
        ..SimConfig::default()
    };
    let stats =
        Simulator::new(ft.topology(), cfg, policy).run(&Workload::permutation(&full, 1.0), 3);
    assert!(
        stats.injection_refusals > 0,
        "unknown pairs must be refused"
    );
    assert_eq!(
        stats.injected_total,
        stats.delivered_total + stats.leftover_packets
    );
}
