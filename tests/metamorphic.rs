//! Metamorphic properties: transform the *input* in a way whose effect on
//! the *output* is known exactly, and check the relation — no oracle needed.
//!
//! * **Host relabeling**: renaming hosts by any permutation π (routing
//!   `(s, d)` as the underlying router routes `(π s, π d)`) bijects the SD
//!   pair universe onto itself, so the per-channel source/destination
//!   census — and with it the Lemma 1 nonblocking verdict — is invariant.
//! * **Fault-set monotonicity**: failing *more* hardware can only kill
//!   more single paths, so the count of routable pairs under a fault
//!   superset is never larger.
//! * **Capacity scaling**: max-min fair water-filling is positively
//!   homogeneous — scale every channel capacity by `c` and, as long as no
//!   flow was demand-capped in the baseline, every rate scales by exactly
//!   `c` (progressive filling hits the same bottlenecks at `c·level`).

use ftclos::core::degraded::deterministic_degradation;
use ftclos::core::verify::is_nonblocking_deterministic;
use ftclos::core::{cdg_of_masked_router, cdg_of_router, ValleyRouter};
use ftclos::flowsim::{waterfill, FlowSet};
use ftclos::routing::{DModK, Path, SinglePathRouter, YuanDeterministic};
use ftclos::topo::{ChannelCapacities, ChannelId, FaultSet, FaultyView, Ftree};
use ftclos::traffic::{patterns, SdPair};
use proptest::prelude::*;
use rand::SeedableRng;

/// Routes `(s, d)` exactly as `inner` routes `(π s, π d)` for a fixed host
/// relabeling π. The path *multiset* over the full SD universe is
/// unchanged, only which pair owns which path.
struct Relabeled<'a, R> {
    inner: &'a R,
    relabel: &'a [u32],
}

impl<R: SinglePathRouter> SinglePathRouter for Relabeled<'_, R> {
    fn ports(&self) -> u32 {
        self.inner.ports()
    }
    fn route(&self, pair: SdPair) -> Path {
        self.inner.route(SdPair::new(
            self.relabel[pair.src as usize],
            self.relabel[pair.dst as usize],
        ))
    }
    fn name(&self) -> &'static str {
        "relabeled"
    }
}

/// A random bijection on `0..ports`, derived from a full random
/// permutation pattern (which is exactly a bijection of the port set).
fn random_relabeling(ports: u32, seed: u64) -> Vec<u32> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let perm = patterns::random_full(ports, &mut rng);
    let mut map = vec![0u32; ports as usize];
    for p in perm.pairs() {
        map[p.src as usize] = p.dst;
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blocking or not, d-mod-k's Lemma 1 verdict must not depend on how
    /// hosts are numbered.
    #[test]
    fn relabeling_preserves_dmodk_verdict(
        n in 1usize..4, m in 1usize..6, r in 2usize..6, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let router = DModK::new(&ft);
        let relabel = random_relabeling((n * r) as u32, seed);
        let relabeled = Relabeled { inner: &router, relabel: &relabel };
        prop_assert_eq!(
            is_nonblocking_deterministic(&router),
            is_nonblocking_deterministic(&relabeled),
            "verdict changed under host relabeling {:?}",
            relabel
        );
    }

    /// Theorem 3 fabrics stay nonblocking under every host relabeling.
    #[test]
    fn relabeling_preserves_yuan_nonblocking(
        n in 1usize..4, r in 2usize..6, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let relabel = random_relabeling((n * r) as u32, seed);
        let relabeled = Relabeled { inner: &router, relabel: &relabel };
        prop_assert!(is_nonblocking_deterministic(&relabeled));
    }

    /// Growing the fault set never *recovers* a pair: routable pairs are
    /// antitone in the faults.
    #[test]
    fn fault_superset_never_recovers_pairs(
        n in 1usize..4, m in 1usize..6, r in 2usize..6,
        base_links in 0usize..4, extra_links in 0usize..4,
        extra_tops in 0usize..2, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let router = DModK::new(&ft);
        let topo = ft.topology();
        // `random_links` is seed-deterministic, so building A twice gives
        // the same set without needing Clone on FaultSet.
        let faults_a = FaultSet::random_links(topo, base_links, seed);
        let mut faults_b = FaultSet::random_links(topo, base_links, seed);
        faults_b.merge(&FaultSet::random_links(topo, extra_links, seed ^ 0x5EED));
        faults_b.merge(&FaultSet::random_top_switches(topo, extra_tops, seed ^ 0x70B5));

        let deg_a = deterministic_degradation(&router, &FaultyView::new(topo, &faults_a));
        let deg_b = deterministic_degradation(&router, &FaultyView::new(topo, &faults_b));
        prop_assert_eq!(deg_a.total_pairs, deg_b.total_pairs);
        prop_assert!(
            deg_a.routable_pairs() >= deg_b.routable_pairs(),
            "superset routed MORE pairs: {} < {} (A: {} links, B: +{} links +{} tops)",
            deg_a.routable_pairs(), deg_b.routable_pairs(),
            base_links, extra_links, extra_tops
        );
        // The empty fault set is the top element: everything routes.
        let pristine = deterministic_degradation(
            &router, &FaultyView::new(topo, &FaultSet::new()),
        );
        prop_assert_eq!(pristine.routable_pairs(), pristine.total_pairs);
        prop_assert!(pristine.routable_pairs() >= deg_a.routable_pairs());
    }

    /// Failing more hardware can only *silence* routed paths, so the
    /// channel-dependency graph is edge-antitone in the fault set: every
    /// dependency present under faults A ∪ B is present under A, and every
    /// dependency under A is present pristine. (Corollary: an up*/down*
    /// router that is deadlock-free pristine stays deadlock-free under
    /// every fault set.)
    #[test]
    fn fault_superset_never_adds_cdg_edges(
        n in 1usize..4, m in 1usize..6, r in 2usize..6,
        base_links in 0usize..4, extra_links in 0usize..4,
        extra_tops in 0usize..2, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let router = DModK::new(&ft);
        let topo = ft.topology();
        // Seed-determinism again: building A twice equals cloning it.
        let faults_a = FaultSet::random_links(topo, base_links, seed);
        let mut faults_b = FaultSet::random_links(topo, base_links, seed);
        faults_b.merge(&FaultSet::random_links(topo, extra_links, seed ^ 0x5EED));
        faults_b.merge(&FaultSet::random_top_switches(topo, extra_tops, seed ^ 0x70B5));

        let pristine = cdg_of_router(topo, &router);
        let cdg_a = cdg_of_masked_router(&router, &FaultyView::new(topo, &faults_a));
        let cdg_b = cdg_of_masked_router(&router, &FaultyView::new(topo, &faults_b));
        // Non-vacuous: the pristine fabric always records dependencies
        // (every cross-leaf pair contributes at least leaf-up -> up).
        prop_assert!(pristine.num_deps() > 0, "pristine CDG has no edges");
        prop_assert!(cdg_a.num_deps() <= pristine.num_deps());
        prop_assert!(cdg_b.num_deps() <= cdg_a.num_deps());
        for c in 0..topo.num_channels() {
            let a = ChannelId(c as u32);
            for b in cdg_b.successors(a) {
                prop_assert!(
                    cdg_a.has_dep(a, b),
                    "faults ADDED dependency {a} -> {b} (A: {} links, B: +{} links +{} tops)",
                    base_links, extra_links, extra_tops
                );
            }
            for b in cdg_a.successors(a) {
                prop_assert!(
                    pristine.has_dep(a, b),
                    "masked CDG has edge {a} -> {b} absent pristine"
                );
            }
        }
        // Antitone edges mean deadlock-freedom survives any fault set here.
        prop_assert!(pristine.check().is_free());
        prop_assert!(cdg_b.check().is_free());
    }

    /// Renaming hosts bijects the SD universe onto itself, so a relabeled
    /// router produces the *same path multiset* — hence the identical
    /// channel-dependency graph, verdict, and (being deterministically
    /// extracted from the graph alone) the identical witness cycle.
    #[test]
    fn relabeling_preserves_deadlock_verdict(
        n in 1usize..4, m in 1usize..6, r in 2usize..6, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let router = DModK::new(&ft);
        let relabel = random_relabeling((n * r) as u32, seed);
        let relabeled = Relabeled { inner: &router, relabel: &relabel };
        let base = cdg_of_router(ft.topology(), &router);
        let perm = cdg_of_router(ft.topology(), &relabeled);
        prop_assert_eq!(base.num_deps(), perm.num_deps());
        for c in 0..ft.topology().num_channels() {
            let a = ChannelId(c as u32);
            let lhs: Vec<ChannelId> = base.successors(a).collect();
            let rhs: Vec<ChannelId> = perm.successors(a).collect();
            prop_assert_eq!(lhs, rhs, "successor set of {} changed", a);
        }
        prop_assert_eq!(base.check(), perm.check());
    }

    /// Scale every capacity by `c`: when no baseline flow was demand-capped
    /// (all rates < 1), every max-min rate scales by exactly `c`.
    #[test]
    fn capacity_scaling_is_linear(
        n in 2usize..4, m in 1usize..3, r in 2usize..6,
        c in 0.05f64..0.95, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let router = DModK::new(&ft);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let perm = patterns::random_full((n * r) as u32, &mut rng);
        let flows = FlowSet::from_view(&router, &perm, ft.topology().num_channels()).unwrap();
        let base = waterfill(&flows, &ChannelCapacities::unit(ft.topology()));
        if base.rates().iter().any(|&b| b >= 1.0 - 1e-9) {
            // Some flow is demand-capped (e.g. an uncontended or self
            // pair): linearity does not apply to it. Skip the case; the
            // deterministic test below pins a guaranteed-congested fabric.
            return Ok(());
        }
        let scaled = waterfill(&flows, &ChannelCapacities::uniform(ft.topology(), c));
        for (i, (&b, &s)) in base.rates().iter().zip(scaled.rates()).enumerate() {
            prop_assert!(
                (s - c * b).abs() <= 1e-9 * (1.0 + c * b),
                "flow {i}: baseline {b}, cap scale {c}, got {s} (want {})",
                c * b
            );
        }
    }
}

/// Non-vacuity pin for the scaling property: `ftree(2+1, 4)` under a
/// cross-leaf shift saturates the lone top through every uplink, so *all*
/// baseline rates are 1/2 (< 1, never demand-capped) and the proptest's
/// guard provably has cases where the assertion body runs.
#[test]
fn capacity_scaling_linearity_is_not_vacuous() {
    let ft = Ftree::new(2, 1, 4).unwrap();
    let router = DModK::new(&ft);
    // Shift by a full leaf: every pair crosses leaves, no flow is alone.
    let perm = patterns::shift(8, 2);
    let flows = FlowSet::from_view(&router, &perm, ft.topology().num_channels()).unwrap();
    let base = waterfill(&flows, &ChannelCapacities::unit(ft.topology()));
    assert!(
        base.rates().iter().all(|&b| (b - 0.5).abs() < 1e-9),
        "two flows share each unit uplink: {:?}",
        base.rates()
    );
    let c = 0.4;
    let scaled = waterfill(&flows, &ChannelCapacities::uniform(ft.topology(), c));
    for &s in scaled.rates() {
        assert!((s - 0.2).abs() < 1e-9, "0.4 x 0.5 = 0.2, got {s}");
    }
}

/// Relabeling carries a *blocking* witness too: a fabric below the m ≥ n²
/// threshold stays blocking no matter how hosts are renamed.
#[test]
fn relabeling_cannot_unblock_an_undersized_fabric() {
    let ft = Ftree::new(2, 2, 5).unwrap();
    let router = DModK::new(&ft);
    assert!(!is_nonblocking_deterministic(&router));
    for seed in 0..8 {
        let relabel = random_relabeling(10, seed);
        let relabeled = Relabeled {
            inner: &router,
            relabel: &relabel,
        };
        assert!(
            !is_nonblocking_deterministic(&relabeled),
            "relabeling {relabel:?} must not hide the blocking pair"
        );
    }
}

/// Non-vacuity pin for the deadlock-verdict invariance: the proptest only
/// ever sees acyclic d-mod-k CDGs, so exercise the *cyclic* branch here —
/// the valley router's witness cycle must survive every relabeling
/// byte-identically (the path multiset, and with it the CDG, is unchanged).
#[test]
fn relabeling_preserves_a_cyclic_witness() {
    let ft = Ftree::new(1, 1, 4).unwrap();
    let valley = ValleyRouter::new(&ft);
    let base = cdg_of_router(ft.topology(), &valley).check();
    assert!(!base.is_free(), "valley on r=4 must be cyclic");
    let witness = base.verdict.witness().unwrap().to_vec();
    assert!(!witness.is_empty());
    for seed in 0..8 {
        let relabel = random_relabeling(4, seed);
        let relabeled = Relabeled {
            inner: &valley,
            relabel: &relabel,
        };
        let got = cdg_of_router(ft.topology(), &relabeled).check();
        assert_eq!(base, got, "verdict changed under relabeling {relabel:?}");
        assert_eq!(got.verdict.witness().unwrap(), &witness[..]);
    }
}

// ---------------------------------------------------------------------------
// Fault-campaign metamorphic properties.
// ---------------------------------------------------------------------------

use ftclos::core::campaign::{
    cable_universe, run_randomized, shrink, top_switch_universe, AdaptiveRoutability,
    ArenaRoutability, CampaignConfig, CampaignProperty, FaultElement, FaultVector,
};
use rand::Rng;

/// A seed-deterministic fault vector drawn from the fabric's cable and
/// top-switch universes (duplicates collapse in `FaultVector::new`).
fn random_fault_vector(ft: &Ftree, links: usize, tops: usize, seed: u64) -> FaultVector {
    let topo = ft.topology();
    let cables = cable_universe(topo);
    let switches = top_switch_universe(topo);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut elems = Vec::with_capacity(links + tops);
    for _ in 0..links {
        elems.push(FaultElement::Link(cables[rng.gen_range(0..cables.len())]));
    }
    for _ in 0..tops {
        elems.push(FaultElement::Switch(
            switches[rng.gen_range(0..switches.len())],
        ));
    }
    FaultVector::new(elems)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The delta-debugging shrinker's contract, checked against the
    /// property itself: whenever a random fault vector kills adaptive
    /// routability, the shrunk vector (a) is a subset, (b) still kills,
    /// and (c) is 1-minimal — removing any single fault restores the
    /// property.
    #[test]
    fn shrunk_killers_are_one_minimal(
        n in 1usize..4, m in 1usize..6, r in 2usize..6,
        links in 1usize..5, tops in 0usize..3, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let property = AdaptiveRoutability::new(&ft);
        let killer = random_fault_vector(&ft, links, tops, seed);
        if property.judge(&killer).holds {
            return Ok(()); // not a killer; nothing to shrink
        }
        let shrunk = shrink(&property, &killer);
        let minimal = &shrunk.minimal;
        prop_assert!(!minimal.is_empty());
        for e in minimal.elements() {
            prop_assert!(
                killer.elements().contains(e),
                "shrinker invented fault {e:?} absent from {killer}"
            );
        }
        prop_assert!(
            !property.judge(minimal).holds,
            "shrunk set {minimal} no longer kills (from {killer})"
        );
        for i in 0..minimal.len() {
            let weakened = minimal.without(i);
            prop_assert!(
                property.judge(&weakened).holds,
                "{minimal} is not 1-minimal: dropping element {i} still kills"
            );
        }
    }

    /// Killer-superset antitonicity: faults only remove capability, so a
    /// minimal killer plus arbitrary extra faults must still violate the
    /// property.
    #[test]
    fn killer_supersets_still_kill(
        n in 1usize..4, m in 1usize..6, r in 2usize..6,
        links in 1usize..5, tops in 0usize..3,
        extra_links in 0usize..4, extra_tops in 0usize..2, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let property = AdaptiveRoutability::new(&ft);
        let killer = random_fault_vector(&ft, links, tops, seed);
        if property.judge(&killer).holds {
            return Ok(());
        }
        let minimal = shrink(&property, &killer).minimal;
        let extra = random_fault_vector(&ft, extra_links, extra_tops, seed ^ 0x5EED);
        let superset = minimal.with(extra.elements());
        prop_assert!(
            !property.judge(&superset).holds,
            "adding faults {extra} to a minimal killer restored routability"
        );
    }

    /// Host relabeling bijects the SD universe, leaving the *multiset* of
    /// routed paths — and with it every channel's pair incidence — intact.
    /// A full randomized campaign against single-path routability (same
    /// seed, so the same fault draws) must therefore produce the identical
    /// killer list, identical shrunk cores, and the identical criticality
    /// ranking for the relabeled router.
    #[test]
    fn relabeling_preserves_campaign_criticality(
        n in 1usize..4, m in 1usize..6, r in 2usize..6, seed in 0u64..500,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let topo = ft.topology();
        let router = DModK::new(&ft);
        let relabel = random_relabeling((n * r) as u32, seed);
        let relabeled = Relabeled { inner: &router, relabel: &relabel };
        let links = cable_universe(topo);
        let switches = top_switch_universe(topo);
        let cfg = CampaignConfig {
            seed,
            waves: 2,
            wave_size: 4,
            links_per_set: 2,
            switches_per_set: 1,
            shrink: true,
        };
        let base_prop = ArenaRoutability::new(topo, &router).unwrap();
        let perm_prop = ArenaRoutability::new(topo, &relabeled).unwrap();
        let base = run_randomized(&base_prop, &links, &switches, &cfg, None).unwrap();
        let perm = run_randomized(&perm_prop, &links, &switches, &cfg, None).unwrap();
        prop_assert_eq!(&base.killers, &perm.killers);
        prop_assert_eq!(base.criticality(), perm.criticality());
        prop_assert_eq!(base.sets_evaluated, perm.sets_evaluated);
    }
}
