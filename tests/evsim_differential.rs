//! Differential properties pinning the event-driven engine
//! (`ftclos::evsim::EventSimulator`) to the cycle-level oracle
//! (`ftclos::sim::Simulator`).
//!
//! The contract is *exact replay*, not statistical agreement: for any
//! topology shape, policy, workload, seed, fault schedule, and churn
//! configuration, the two engines must produce an identical `SimStats` —
//! every counter, every latency percentile, the full per-channel busy
//! vector — and identical churn reports and identical errors. Anything
//! less means the event engine changed semantics, not just schedule.

use ftclos::evsim::EventSimulator;
use ftclos::routing::{
    DModK, ObliviousMultipath, SinglePathRouter, SpreadPolicy, XgftRouter, YuanRecursive,
};
use ftclos::sim::{
    Arbiter, ChurnConfig, ChurnSchedule, FaultSchedule, Policy, ReplanMode, SimArena, SimConfig,
    SimStats, Simulator, Workload,
};
use ftclos::topo::{kary_ntree, Ftree, RecursiveNonblocking, Topology};
use ftclos::traffic::patterns;
use proptest::prelude::*;

/// An arena that materializes every page up front — the dense layout the
/// engines had before paged state existed.
fn dense_arena() -> SimArena {
    let mut a = SimArena::new();
    a.set_prefill_on_prepare(true);
    a
}

/// Run both engines twice each — once with lazy paged state, once with
/// every page prefilled dense — and require all four outcomes identical:
/// stats bit for bit, and errors (stall cycle, strand graph, wait cycle)
/// field for field. This pins the tentpole claim that paging changes
/// *where state lives*, never what the simulation does.
fn assert_sparse_dense_identical(
    topo: &Topology,
    cfg: SimConfig,
    policy: &Policy,
    w: &Workload,
    seed: u64,
    faults: &FaultSchedule,
) {
    let lazy_oracle =
        Simulator::new(topo, cfg, policy.clone()).try_run_with_faults(w, seed, faults);
    let dense_oracle = Simulator::with_arena(topo, cfg, policy.clone(), dense_arena())
        .try_run_with_faults(w, seed, faults);
    let lazy_event =
        EventSimulator::new(topo, cfg, policy.clone()).try_run_with_faults(w, seed, faults);
    let dense_event = EventSimulator::with_arena(topo, cfg, policy.clone(), dense_arena())
        .try_run_with_faults(w, seed, faults);
    assert_eq!(
        lazy_oracle, dense_oracle,
        "cycle engine: sparse vs dense-prefill diverged"
    );
    assert_eq!(
        lazy_event, dense_event,
        "event engine: sparse vs dense-prefill diverged"
    );
    assert_eq!(lazy_oracle, lazy_event, "engines diverged");
}

/// Run both engines on identical inputs; the stats must be equal field for
/// field (including `channel_busy`) and conserve packets.
fn assert_exact_agreement(
    topo: &Topology,
    cfg: SimConfig,
    policy: &Policy,
    w: &Workload,
    seed: u64,
    faults: &FaultSchedule,
) -> SimStats {
    let oracle = Simulator::new(topo, cfg, policy.clone()).try_run_with_faults(w, seed, faults);
    let event = EventSimulator::new(topo, cfg, policy.clone()).try_run_with_faults(w, seed, faults);
    let (oracle, event) = match (oracle, event) {
        (Ok(o), Ok(e)) => (o, e),
        (o, e) => {
            // Errors (e.g. a watchdog stall) must also be identical.
            assert_eq!(o, e, "engines disagree on the run outcome");
            return SimStats::default();
        }
    };
    assert_eq!(oracle, event, "engines diverged");
    assert!(oracle.conservation_ok(), "oracle lost packets: {oracle:?}");
    event
}

/// Decode a small integer into an arbiter (the vendored proptest shim has
/// no `prop_oneof`, so choices are drawn as indices).
fn arbiter_from(pick: u8) -> Arbiter {
    match pick % 3 {
        0 => Arbiter::HolFifo,
        k => Arbiter::Voq { iterations: k },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random ftree shapes, rates, seeds, and arbiters: congested or not,
    /// the engines agree exactly.
    #[test]
    fn ftree_shapes_agree_exactly(
        (n, m, r) in (1usize..3, 1usize..5, 2usize..5),
        rate in 0.1f64..1.0,
        seed in 0u64..1u64 << 48,
        arbiter_pick in 0u8..6,
        drain in proptest::bool::ANY,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let policy = Policy::from_single_path(&DModK::new(&ft));
        let ports = ft.num_leaves() as u32;
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 400,
            arbiter: arbiter_from(arbiter_pick),
            drain,
            ..SimConfig::default()
        };
        assert_exact_agreement(
            ft.topology(),
            cfg,
            &policy,
            &Workload::uniform_random(ports, rate),
            seed,
            &FaultSchedule::new(),
        );
    }

    /// Random fault masks with TTL and retries: the timeout sweep order,
    /// retry RNG draws, and fault transitions replay identically.
    #[test]
    fn fault_masks_agree_exactly(
        num_kills in 0usize..5,
        kills in ((50u64..500, 0usize..16), (50u64..500, 0usize..16),
                  (50u64..500, 0usize..16), (50u64..500, 0usize..16)),
        seed in 0u64..1u64 << 48,
        rate in 0.2f64..0.9,
    ) {
        let ft = Ftree::new(2, 4, 4).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let policy = Policy::from_multipath(&mp, true);
        let mut faults = FaultSchedule::new();
        let kills = [kills.0, kills.1, kills.2, kills.3];
        for &(cycle, c) in kills.iter().take(num_kills) {
            // Kill an uplink of some edge switch; revive it later.
            faults.kill_link(cycle, ft.topology(), ft.up_channel(c % 4, c / 4));
            faults.revive_link(cycle + 150, ft.topology(), ft.up_channel(c % 4, c / 4));
        }
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 500,
            ttl_cycles: 40,
            retry: true,
            retry_limit: 5,
            drain: true,
            ..SimConfig::default()
        };
        let perm = patterns::shift(8, 3);
        let stats = assert_exact_agreement(
            ft.topology(),
            cfg,
            &policy,
            &Workload::permutation(&perm, rate),
            seed,
            &faults,
        );
        prop_assert!(stats.conservation_ok());
    }

    /// Churn with every replan mode: per-epoch reports (availability,
    /// reconvergence, transition counts) agree exactly too.
    #[test]
    fn churn_epochs_agree_exactly(
        down in 100u64..400,
        outage in 50u64..300,
        seed in 0u64..1u64 << 48,
        mode_pick in 0usize..3,
    ) {
        let ft = Ftree::new(2, 4, 4).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let mut schedule = ChurnSchedule::new();
        schedule.kill_link(down, ft.topology(), ft.up_channel(0, 1));
        schedule.revive_link(down + outage, ft.topology(), ft.up_channel(0, 1));
        let mode = [
            ReplanMode::Pinned,
            ReplanMode::PerCycle,
            ReplanMode::Hysteresis { k: 100 },
        ][mode_pick];
        let churn = ChurnConfig { mode, epsilon: 0.1, recovery_window: 50 };
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 800,
            ttl_cycles: 50,
            drain: true,
            ..SimConfig::default()
        };
        let perm = patterns::shift(8, 3);
        let w = Workload::permutation(&perm, 0.5);
        let (oracle, oracle_report) =
            Simulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, true))
                .try_run_churn(&w, seed, &schedule, &churn)
                .unwrap();
        let (event, event_report) =
            EventSimulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, true))
                .try_run_churn(&w, seed, &schedule, &churn)
                .unwrap();
        prop_assert_eq!(oracle, event, "stats diverged under {:?}", mode);
        prop_assert_eq!(oracle_report, event_report, "reports diverged under {:?}", mode);
    }

    /// k-ary n-tree shapes (multi-level XGFT topologies): the worklist
    /// arbitration generalizes beyond two-level ftrees.
    #[test]
    fn kary_ntree_agrees_exactly(
        (k, levels) in (2usize..4, 2usize..4),
        shift in 1usize..5,
        seed in 0u64..1u64 << 48,
        arbiter_pick in 0u8..6,
    ) {
        let t = kary_ntree(k, levels).unwrap();
        let router = XgftRouter::dmod(&t);
        let policy = Policy::from_single_path(&router);
        let ports = t.num_leaves() as u32;
        let perm = patterns::shift(ports, shift as u32 % ports.max(1));
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 300,
            arbiter: arbiter_from(arbiter_pick),
            drain: true,
            ..SimConfig::default()
        };
        assert_exact_agreement(
            t.topology(),
            cfg,
            &policy,
            &Workload::permutation(&perm, 0.8),
            seed,
            &FaultSchedule::new(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sparse paged state vs dense-prefilled state, across random ftree
    /// shapes, rates, seeds, and arbiters: all four engine/state
    /// combinations produce bit-identical stats.
    #[test]
    fn sparse_vs_dense_shapes_agree_exactly(
        (n, m, r) in (1usize..3, 1usize..5, 2usize..5),
        rate in 0.1f64..1.0,
        seed in 0u64..1u64 << 48,
        arbiter_pick in 0u8..6,
        drain in proptest::bool::ANY,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let policy = Policy::from_single_path(&DModK::new(&ft));
        let ports = ft.num_leaves() as u32;
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 400,
            arbiter: arbiter_from(arbiter_pick),
            drain,
            ..SimConfig::default()
        };
        assert_sparse_dense_identical(
            ft.topology(),
            cfg,
            &policy,
            &Workload::uniform_random(ports, rate),
            seed,
            &FaultSchedule::new(),
        );
    }

    /// Sparse vs dense under random fault masks with TTL and retries: the
    /// touched-page timeout sweep must expire packets in exactly the dense
    /// chained-scan order (untouched queues are empty, so restricting the
    /// scan to materialized pages drops nothing).
    #[test]
    fn sparse_vs_dense_fault_masks_agree_exactly(
        num_kills in 0usize..5,
        kills in ((50u64..500, 0usize..16), (50u64..500, 0usize..16),
                  (50u64..500, 0usize..16), (50u64..500, 0usize..16)),
        seed in 0u64..1u64 << 48,
        rate in 0.2f64..0.9,
    ) {
        let ft = Ftree::new(2, 4, 4).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let policy = Policy::from_multipath(&mp, true);
        let mut faults = FaultSchedule::new();
        let kills = [kills.0, kills.1, kills.2, kills.3];
        for &(cycle, c) in kills.iter().take(num_kills) {
            faults.kill_link(cycle, ft.topology(), ft.up_channel(c % 4, c / 4));
            faults.revive_link(cycle + 150, ft.topology(), ft.up_channel(c % 4, c / 4));
        }
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 500,
            ttl_cycles: 40,
            retry: true,
            retry_limit: 5,
            drain: true,
            ..SimConfig::default()
        };
        let perm = patterns::shift(8, 3);
        assert_sparse_dense_identical(
            ft.topology(),
            cfg,
            &policy,
            &Workload::permutation(&perm, rate),
            seed,
            &faults,
        );
    }

    /// Sparse vs dense under churn: the per-epoch reports (availability,
    /// reconvergence, transition counts) are identical too.
    #[test]
    fn sparse_vs_dense_churn_reports_agree_exactly(
        down in 100u64..400,
        outage in 50u64..300,
        seed in 0u64..1u64 << 48,
        mode_pick in 0usize..3,
    ) {
        let ft = Ftree::new(2, 4, 4).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let mut schedule = ChurnSchedule::new();
        schedule.kill_link(down, ft.topology(), ft.up_channel(0, 1));
        schedule.revive_link(down + outage, ft.topology(), ft.up_channel(0, 1));
        let mode = [
            ReplanMode::Pinned,
            ReplanMode::PerCycle,
            ReplanMode::Hysteresis { k: 100 },
        ][mode_pick];
        let churn = ChurnConfig { mode, epsilon: 0.1, recovery_window: 50 };
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 800,
            ttl_cycles: 50,
            drain: true,
            ..SimConfig::default()
        };
        let perm = patterns::shift(8, 3);
        let w = Workload::permutation(&perm, 0.5);
        let lazy = EventSimulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, true))
            .try_run_churn(&w, seed, &schedule, &churn)
            .unwrap();
        let dense = EventSimulator::with_arena(
            ft.topology(), cfg, Policy::from_multipath(&mp, true), dense_arena())
            .try_run_churn(&w, seed, &schedule, &churn)
            .unwrap();
        prop_assert_eq!(lazy, dense, "churn run diverged between sparse and dense state");
    }
}

/// A wedged fabric must stall identically under sparse and dense state:
/// same cycle, same strand graph, same wait cycle. The stall report walks
/// touched pages only, so this pins that sparse diagnosis sees everything
/// the dense scan saw.
#[test]
fn sparse_vs_dense_stall_strand_graphs_agree() {
    let ft = Ftree::new(1, 1, 4).unwrap();
    let r = 4u32;
    let routes: Vec<(u32, u32, Vec<ftclos::topo::ChannelId>)> = (0..r)
        .map(|v| {
            let w = (v + 3) % r;
            let mut channels = vec![ft.leaf_up_channel(v as usize, 0)];
            for k in 0..3 {
                channels.push(ft.up_channel((v as usize + k) % 4, 0));
                channels.push(ft.down_channel(0, (v as usize + k + 1) % 4));
            }
            channels.push(ft.leaf_down_channel(w as usize, 0));
            (v, w, channels)
        })
        .collect();
    let policy = Policy::from_pinned(
        ft.topology(),
        routes.iter().map(|(s, d, p)| (*s, *d, p.as_slice())),
    )
    .unwrap();
    let pairs: Vec<(u32, u32)> = routes.iter().map(|(s, d, _)| (*s, *d)).collect();
    let w = Workload::fixed_pairs(4, &pairs, 1.0);
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: 200,
        queue_capacity: 2,
        drain: true,
        stall_watchdog: 64,
        ..SimConfig::default()
    };
    assert_sparse_dense_identical(
        ft.topology(),
        cfg,
        &policy,
        &w,
        0xDEAD,
        &FaultSchedule::new(),
    );
}

/// Thread-count knob sweep: the vendored rayon shim is sequential, and
/// simulation itself is single-threaded by design, so `RAYON_NUM_THREADS`
/// must have zero observable effect on build, route, or replay. Pinning
/// this keeps a future parallel build path honest about determinism.
#[test]
fn rayon_thread_counts_do_not_perturb_replay() {
    let mut results: Vec<SimStats> = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let ft = Ftree::new(2, 3, 6).unwrap();
        let policy = Policy::from_single_path(&DModK::new(&ft));
        let perm = patterns::shift(ft.num_leaves() as u32, 5);
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 600,
            drain: true,
            ..SimConfig::default()
        };
        let stats = EventSimulator::new(ft.topology(), cfg, policy)
            .try_run(&Workload::permutation(&perm, 0.8), 21)
            .unwrap();
        results.push(stats);
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(results[0], results[1], "1 vs 2 threads diverged");
    assert_eq!(results[0], results[2], "1 vs 8 threads diverged");
}

/// The memory regression gate: on a fabric where traffic touches a handful
/// of channels, the arena must materialize O(touched) pages, not
/// O(channels). A return to dense allocation fails here long before it
/// OOMs coreperf.
#[test]
fn untouched_fabric_allocates_o_touched_pages() {
    // 16384 hosts, 65536 directed channels -> 128 pages per channel array
    // dense; two flows should touch a handful. Pin just the two flows'
    // d-mod-k routes: precomputing all 268M pairs would swamp the test.
    let ft = Ftree::new(16, 16, 1024).unwrap();
    let num_channels = ft.topology().num_channels();
    let pairs = [(0u32, 9000u32), (5u32, 12000u32)];
    let router = DModK::new(&ft);
    let routes: Vec<(u32, u32, Vec<ftclos::topo::ChannelId>)> = pairs
        .iter()
        .map(|&(s, d)| {
            let path = router.route(ftclos::traffic::SdPair::new(s, d));
            (s, d, path.channels().to_vec())
        })
        .collect();
    let policy = Policy::from_pinned(
        ft.topology(),
        routes.iter().map(|(s, d, p)| (*s, *d, p.as_slice())),
    )
    .unwrap();
    let ports = ft.num_leaves() as u32;
    let w = Workload::fixed_pairs(ports, &pairs, 0.5);
    let cfg = SimConfig {
        warmup_cycles: 50,
        measure_cycles: 200,
        drain: true,
        ..SimConfig::default()
    };
    let mut sim = EventSimulator::new(ft.topology(), cfg, policy);
    let stats = sim.try_run(&w, 77).unwrap();
    assert!(
        stats.delivered_total > 0,
        "flows must actually move packets"
    );
    let arena = sim.into_arena();
    let touched = arena.touched_channels();
    assert!(touched > 0, "moving packets must touch state");
    assert!(
        touched * 8 < num_channels,
        "paged state must stay O(touched): {touched} of {num_channels} channels materialized"
    );
}

/// The recursive three-level nonblocking construction — the shape the
/// event engine exists for — agrees exactly at a testable size.
#[test]
fn recursive_three_level_agrees_exactly() {
    let net = RecursiveNonblocking::new(2).unwrap();
    let router = YuanRecursive::new(&net);
    let policy = Policy::from_single_path(&router);
    let ports = net.topology().num_leaves() as u32;
    let perm = patterns::shift(ports, 5);
    let cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 400,
        drain: true,
        ..SimConfig::default()
    };
    let stats = assert_exact_agreement(
        net.topology(),
        cfg,
        &policy,
        &Workload::permutation(&perm, 0.7),
        11,
        &FaultSchedule::new(),
    );
    assert!(stats.delivered_total > 0);
    assert_eq!(stats.leftover_packets, 0, "nonblocking fabric must drain");
}

/// Line rate on a provably nonblocking fabric: the event engine preserves
/// the paper's headline result (Theorem 3 routing sustains rate 1.0).
#[test]
fn event_engine_preserves_nonblocking_line_rate() {
    let ft = Ftree::new(2, 4, 5).unwrap();
    let router = ftclos::routing::YuanDeterministic::new(&ft).unwrap();
    let policy = Policy::from_single_path(&router);
    let perm = patterns::shift(10, 3);
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_200,
        ..SimConfig::default()
    };
    let stats = EventSimulator::new(ft.topology(), cfg, policy)
        .try_run(&Workload::permutation(&perm, 1.0), 3)
        .unwrap();
    assert!(
        stats.accepted_throughput() > 0.99,
        "nonblocking fabric must sustain line rate: {}",
        stats.accepted_throughput()
    );
}
