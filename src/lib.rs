//! # ftclos — nonblocking folded-Clos networks in computer communication environments
//!
//! A reproduction of *Xin Yuan, "On Nonblocking Folded-Clos Networks in
//! Computer Communication Environments", IPDPS 2011*, as a production-grade
//! Rust library. This meta-crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`topo`] | `ftclos-topo` | `ftree(n+m,r)`, `Clos(n,m,r)`, XGFT / k-ary n-tree / m-port n-tree, crossbars, the recursive 3-level nonblocking construction |
//! | [`traffic`] | `ftclos-traffic` | SD pairs, validated permutations, structured/random/adversarial patterns, exhaustive enumerators |
//! | [`routing`] | `ftclos-routing` | Theorem 3 deterministic routing, `d mod k`, oblivious multipath, NONBLOCKINGADAPTIVE (Fig. 4), greedy local adaptive, centralized edge-coloring, forwarding tables |
//! | [`core`] | `ftclos-core` | Lemma 1 audits, blocking search, Lemma 2 solvers, bundled nonblocking fabrics, Table I designs |
//! | [`sim`] | `ftclos-sim` | cycle-level VOQ packet simulator with pluggable path policies |
//! | [`evsim`] | `ftclos-evsim` | event-driven simulator core for 100k+ host fabrics: activity tracking, event wheel, exact replay of the cycle engine |
//! | [`flowsim`] | `ftclos-flowsim` | deterministic max-min fair fluid flow-rate simulator (water-filling) for delivered throughput at datacenter scale |
//! | [`analysis`] | `ftclos-analysis` | closed-form bounds, recurrences, power-law fits, cost models |
//! | [`obs`] | `ftclos-obs` | zero-dep observability: span timers, counters/gauges/histograms, epoch snapshots, trace JSON + folded stacks |
//!
//! ## Quick start
//!
//! ```
//! use ftclos::core::construct::NonblockingFtree;
//! use ftclos::traffic::patterns;
//! use rand::SeedableRng;
//!
//! // The cheapest nonblocking two-level fabric for n = 3: ftree(3+9, 12).
//! let fabric = NonblockingFtree::same_radix(3).unwrap();
//! assert_eq!(fabric.ports(), 36);
//!
//! // Any permutation routes with zero contention (Theorem 3).
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let perm = patterns::random_full(fabric.ports() as u32, &mut rng);
//! let routes = fabric.route(&perm).unwrap();
//! assert_eq!(routes.max_channel_load(), 1);
//! ```

pub use ftclos_analysis as analysis;
pub use ftclos_core as core;
pub use ftclos_evsim as evsim;
pub use ftclos_flowsim as flowsim;
pub use ftclos_obs as obs;
pub use ftclos_routing as routing;
pub use ftclos_sim as sim;
pub use ftclos_topo as topo;
pub use ftclos_traffic as traffic;
