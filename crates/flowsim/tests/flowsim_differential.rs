//! Differential property tests: the fluid water-filling simulator against
//! the exact combinatorial checkers, over random fabric shapes and random
//! permutations.
//!
//! The load-bearing invariants (see `ftclos_flowsim::differential`):
//!
//! * single-path routing, per pattern: all flows at rate 1.0 **iff** the
//!   exact checker finds the routed pattern contention-free;
//! * single-path routing, per fabric: the fluid model delivers the
//!   complete two-pair family **iff** the Lemma 1 verdict is nonblocking
//!   (two-pair patterns are a complete blocking test — Yuan, Lemma 1);
//! * oblivious multipath, per pattern: all flows at rate 1.0 **iff** the
//!   max *expected* channel load is ≤ 1 — the average-case statement,
//!   deliberately weaker than Lemma 1's adversarial-timing guarantee.

use ftclos_flowsim::{check_fabric, check_multipath_pattern, check_pattern};
use ftclos_routing::{DModK, ObliviousMultipath, SModK, SpreadPolicy, YuanDeterministic};
use ftclos_topo::Ftree;
use ftclos_traffic::{patterns, Permutation};
use proptest::prelude::*;
use rand::SeedableRng;

fn random_perm(ports: u32, seed: u64, density_pct: u64) -> Permutation {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    if density_pct >= 100 {
        patterns::random_full(ports, &mut rng)
    } else {
        patterns::random_partial(ports, density_pct as f64 / 100.0, &mut rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// d mod k on arbitrary shapes: fluid unit-rate iff exact
    /// contention-free, for full and partial random permutations.
    #[test]
    fn dmodk_pattern_differential(
        (n, m, r) in (1usize..4, 1usize..6, 2usize..7),
        seed in 0u64..10_000,
        density in 20u64..=100,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = random_perm(ports, seed, density);
        let router = DModK::new(&ft);
        let a = check_pattern(&router, &perm, ft.topology().num_channels()).unwrap();
        prop_assert!(
            a.agree(),
            "fluid={} exact={} on ftree({n}+{m},{r}) seed={seed}",
            a.fluid_unit_rate,
            a.exact_contention_free
        );
    }

    /// s mod k sees the same equivalence (different pinning, same lemma).
    #[test]
    fn smodk_pattern_differential(
        (n, m, r) in (1usize..4, 1usize..6, 2usize..7),
        seed in 0u64..10_000,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = random_perm(ports, seed, 100);
        let router = SModK::new(&ft);
        let a = check_pattern(&router, &perm, ft.topology().num_channels()).unwrap();
        prop_assert!(a.agree());
    }

    /// Yuan's Theorem 3 routing on m ≥ n² fabrics: both models must call
    /// every pattern contention-free.
    #[test]
    fn yuan_always_delivers_on_nonblocking_shapes(
        (n, extra, r) in (1usize..4, 0usize..3, 2usize..6),
        seed in 0u64..10_000,
    ) {
        let m = n * n + extra;
        let ft = Ftree::new(n, m, r).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = random_perm(ports, seed, 100);
        let router = YuanDeterministic::new(&ft).unwrap();
        let a = check_pattern(&router, &perm, ft.topology().num_channels()).unwrap();
        prop_assert!(a.agree());
        prop_assert!(a.fluid_unit_rate, "Theorem 3 fabric must deliver all");
    }

    /// Fabric-level: the fluid decision over the complete two-pair family
    /// equals the exact Lemma 1 verdict — both directions, random shapes.
    /// Small ports only: the sweep is O(p^4) patterns.
    #[test]
    fn fabric_differential_is_exact(
        (n, m, r) in (1usize..3, 1usize..6, 2usize..5),
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let nc = ft.topology().num_channels();
        let dk = check_fabric(&DModK::new(&ft), nc);
        prop_assert!(
            dk.agree(),
            "dmodk fluid={} exact={} on ftree({n}+{m},{r})",
            dk.fluid_nonblocking,
            dk.exact.nonblocking
        );
        // When blocked, the fluid witness must be a genuinely contending
        // two-pair pattern per the exact checker.
        if let Some(w) = dk.fluid_witness {
            let perm = Permutation::from_pairs(ft.num_leaves() as u32, w).unwrap();
            let a = check_pattern(&DModK::new(&ft), &perm, nc).unwrap();
            prop_assert!(!a.exact_contention_free);
        }
        if m >= n * n {
            let yuan = YuanDeterministic::new(&ft).unwrap();
            let fy = check_fabric(&yuan, nc);
            prop_assert!(fy.agree());
            prop_assert!(fy.fluid_nonblocking, "m >= n² Yuan is nonblocking");
        }
    }

    /// Multipath: fluid unit-rate iff max expected load ≤ 1. On m ≥ n
    /// fabrics uniform spreading puts n/m ≤ 1 per uplink, so every full
    /// permutation must be delivered.
    #[test]
    fn multipath_pattern_differential(
        (n, m, r) in (1usize..4, 1usize..7, 2usize..7),
        seed in 0u64..10_000,
        density in 20u64..=100,
    ) {
        let ft = Ftree::new(n, m, r).unwrap();
        let ports = ft.num_leaves() as u32;
        let perm = random_perm(ports, seed, density);
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        let a = check_multipath_pattern(&mp, &perm, ft.topology().num_channels()).unwrap();
        prop_assert!(
            a.agree(),
            "fluid={} expected-load-ok={} on ftree({n}+{m},{r}) seed={seed}",
            a.fluid_unit_rate,
            a.exact_contention_free
        );
        if m >= n {
            prop_assert!(a.fluid_unit_rate, "n/m ≤ 1 per uplink must deliver");
        }
    }
}

/// The multipath equivalence is average-case only: on a blocking m = n
/// fabric, fluid multipath delivers patterns that the *deterministic*
/// Lemma 1 test calls blocked. This pins the documented divergence so
/// nobody "fixes" the differential into comparing the wrong checkers.
#[test]
fn multipath_fluid_diverges_from_lemma1() {
    use ftclos_core::nonblocking_verdict;
    let ft = Ftree::new(2, 2, 5).unwrap();
    // Deterministic single-path routing on m = n < n² blocks...
    let verdict = nonblocking_verdict(&DModK::new(&ft));
    assert!(!verdict.nonblocking);
    // ...but fluid multipath delivers every full shift at unit rate.
    let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
    for k in 0..10 {
        let a = check_multipath_pattern(&mp, &patterns::shift(10, k), ft.topology().num_channels())
            .unwrap();
        assert!(a.fluid_unit_rate && a.agree(), "shift:{k}");
    }
}
