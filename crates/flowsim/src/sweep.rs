//! Batch solving: run a routing's fluid model over a suite of named
//! patterns, in parallel, producing one [`FluidReport`] per pattern.

use crate::flows::{FlowError, FlowSet};
use crate::report::FluidReport;
use crate::waterfill::{waterfill_with, Noop, Recorder};
use ftclos_routing::LinkLoadView;
use ftclos_topo::ChannelCapacities;
use ftclos_traffic::{patterns, Permutation};
use rayon::prelude::*;

/// Expand, solve, and summarize one named pattern through `view`.
pub fn solve_pattern<V: LinkLoadView + ?Sized>(
    view: &V,
    pattern_name: &str,
    perm: &Permutation,
    caps: &ChannelCapacities,
) -> Result<FluidReport, FlowError> {
    solve_pattern_with(view, pattern_name, perm, caps, &Noop)
}

/// [`solve_pattern`] with instrumentation: flow expansion records under
/// span `flowsim.expand`, the solve under `flowsim.waterfill` (see
/// [`waterfill_with`] for its counters).
///
/// # Errors
/// As for [`solve_pattern`].
pub fn solve_pattern_with<V: LinkLoadView + ?Sized, R: Recorder>(
    view: &V,
    pattern_name: &str,
    perm: &Permutation,
    caps: &ChannelCapacities,
    rec: &R,
) -> Result<FluidReport, FlowError> {
    let set = {
        let _span = rec.span("flowsim.expand");
        FlowSet::from_view(view, perm, caps.len())?
    };
    let alloc = waterfill_with(&set, caps, rec);
    Ok(FluidReport::new(
        view.name(),
        pattern_name,
        view.ports(),
        &set,
        &alloc,
    ))
}

/// [`sweep_patterns`] with instrumentation, under one `flowsim.sweep`
/// span. Patterns solve *sequentially* here: span timers nest lexically
/// on one thread, so the traced sweep trades the parallel batch for an
/// accurate per-phase profile (counters would survive parallelism; the
/// span tree would not).
pub fn sweep_patterns_with<V: LinkLoadView + ?Sized, R: Recorder>(
    view: &V,
    suite: &[(String, Permutation)],
    caps: &ChannelCapacities,
    rec: &R,
) -> Vec<Result<FluidReport, FlowError>> {
    let _span = rec.span("flowsim.sweep");
    suite
        .iter()
        .map(|(name, perm)| solve_pattern_with(view, name, perm, caps, rec))
        .collect()
}

/// Solve a whole suite of `(name, permutation)` patterns through `view`,
/// one report per pattern in input order. Patterns solve in parallel via
/// rayon; each result carries its own error so one unroutable pattern
/// doesn't sink the batch.
pub fn sweep_patterns<V: LinkLoadView + Sync + ?Sized>(
    view: &V,
    suite: &[(String, Permutation)],
    caps: &ChannelCapacities,
) -> Vec<Result<FluidReport, FlowError>> {
    suite
        .par_iter()
        .map(|(name, perm)| solve_pattern(view, name, perm, caps))
        .collect()
}

/// The standard adversarial pattern suite for `ports` hosts: identity,
/// shifts, tornado, plus the structured patterns that exist at this size
/// (neighbor needs even `ports`; bit reversal/complement need a power of
/// two; transpose needs a perfect square).
pub fn standard_suite(ports: u32) -> Vec<(String, Permutation)> {
    let mut suite = vec![("identity".to_string(), patterns::identity(ports))];
    let half = (ports / 2).max(1);
    for k in [1, half] {
        if k < ports && !suite.iter().any(|(n, _)| n == &format!("shift:{k}")) {
            suite.push((format!("shift:{k}"), patterns::shift(ports, k)));
        }
    }
    suite.push(("tornado".to_string(), patterns::tornado(ports)));
    if let Ok(p) = patterns::neighbor(ports) {
        suite.push(("neighbor".to_string(), p));
    }
    if let Ok(p) = patterns::bit_reversal(ports) {
        suite.push(("bit-reversal".to_string(), p));
    }
    if let Ok(p) = patterns::bit_complement(ports) {
        suite.push(("bit-complement".to_string(), p));
    }
    let side = (ports as f64).sqrt().round() as u32;
    if side > 1 && side * side == ports {
        suite.push(("transpose".to_string(), patterns::transpose(side, side)));
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{DModK, YuanDeterministic};
    use ftclos_topo::Ftree;

    #[test]
    fn suite_adapts_to_port_count() {
        let s10 = standard_suite(10);
        let names: Vec<&str> = s10.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"identity"));
        assert!(names.contains(&"shift:1"));
        assert!(names.contains(&"shift:5"));
        assert!(names.contains(&"tornado"));
        assert!(names.contains(&"neighbor"), "10 is even");
        assert!(!names.contains(&"bit-reversal"), "10 is not a power of two");
        let s16 = standard_suite(16);
        let names16: Vec<&str> = s16.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names16.contains(&"bit-reversal"));
        assert!(names16.contains(&"bit-complement"));
        assert!(names16.contains(&"transpose"), "16 = 4x4");
        // Every pattern in the suite covers the full universe.
        for (name, p) in &s16 {
            assert_eq!(p.ports(), 16, "{name}");
        }
    }

    #[test]
    fn nonblocking_fabric_sweeps_clean() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let caps = ChannelCapacities::unit(ft.topology());
        let suite = standard_suite(10);
        let reports = sweep_patterns(&yuan, &suite, &caps);
        assert_eq!(reports.len(), suite.len());
        for r in reports {
            let r = r.expect("routable");
            assert!(r.all_unit_rate, "{}: m = n^2 Yuan delivers all", r.pattern);
            assert_eq!(r.worst_rate, 1.0);
        }
    }

    #[test]
    fn undersized_fabric_shows_degradation_somewhere() {
        use ftclos_traffic::{Permutation, SdPair};
        let ft = Ftree::new(4, 4, 5).unwrap(); // m = n < n^2: blocking
        let router = DModK::new(&ft);
        let caps = ChannelCapacities::unit(ft.topology());
        // d-mod-k routes the whole standard suite cleanly (shift-family
        // destinations spread evenly mod m), so append a residue-colliding
        // pattern: four sources in leaf 0 all target destinations ≡ 0
        // mod 4 in other leaves, contending for one uplink.
        let mut suite = standard_suite(20);
        let collide = Permutation::from_pairs(
            20,
            [
                SdPair::new(0, 4),
                SdPair::new(1, 8),
                SdPair::new(2, 12),
                SdPair::new(3, 16),
            ],
        )
        .unwrap();
        suite.push(("mod-collision".to_string(), collide));
        let reports: Vec<FluidReport> = sweep_patterns(&router, &suite, &caps)
            .into_iter()
            .map(|r| r.expect("routable"))
            .collect();
        let bad = reports
            .iter()
            .find(|r| r.pattern == "mod-collision")
            .unwrap();
        assert!(!bad.all_unit_rate, "m = n must block the mod collision");
        assert!((bad.worst_rate - 0.25).abs() < 1e-9, "four flows, one link");
        // Identity never contends.
        let id = reports.iter().find(|r| r.pattern == "identity").unwrap();
        assert!(id.all_unit_rate);
    }
}
