//! Differential checks: the fluid model against the exact combinatorial
//! checkers in `ftclos-core`.
//!
//! Three equivalences are the correctness spine of the fluid simulator:
//!
//! 1. **Per pattern, single path**: every flow reaches rate 1.0 under
//!    water-filling **iff** the exact checker finds the routed pattern
//!    contention-free (no two flows share a channel). Unit flows on unit
//!    links make both sides "max channel demand ≤ 1".
//! 2. **Per fabric, single path**: the fluid model delivers every
//!    two-pair pattern at full rate **iff** Lemma 1 holds
//!    ([`ftclos_core::nonblocking_verdict`]). Two-pair patterns are a
//!    *complete* blocking test for deterministic routing (Yuan, Lemma 1):
//!    any blocked permutation contains a blocked two-pair sub-pattern.
//! 3. **Per pattern, multipath**: fluid spreading delivers every flow at
//!    rate 1.0 **iff** the max *expected* channel load is ≤ 1. This is an
//!    average-case statement — deliberately weaker than Lemma 1, which
//!    quantifies over adversarial timing of the random path choices.

use crate::flows::{FlowError, FlowSet};
use crate::waterfill::waterfill_unit;
use ftclos_core::{nonblocking_verdict, pattern_contention_free, NonblockingVerdict};
use ftclos_routing::{route_all, ObliviousMultipath, PathArena, SinglePathRouter};
use ftclos_traffic::{Permutation, SdPair};
use rayon::prelude::*;

/// Tolerance when comparing expected loads against capacity 1.0.
const EPS: f64 = 1e-9;

/// Both models' answers for one routed pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternAgreement {
    /// Fluid: every flow reached unit rate.
    pub fluid_unit_rate: bool,
    /// Exact: the routed pattern shares no channel between two flows.
    pub exact_contention_free: bool,
}

impl PatternAgreement {
    /// True when the two models agree — the differential invariant.
    pub fn agree(&self) -> bool {
        self.fluid_unit_rate == self.exact_contention_free
    }
}

/// Run both models on one pattern through a single-path router over a
/// fabric with `num_channels` channels.
pub fn check_pattern<R: SinglePathRouter + ?Sized>(
    router: &R,
    perm: &Permutation,
    num_channels: usize,
) -> Result<PatternAgreement, FlowError> {
    let assignment = route_all(router, perm)?;
    let exact_contention_free = pattern_contention_free(&assignment);
    let set = FlowSet::from_flows(
        &assignment
            .routes()
            .iter()
            .map(|(pair, path)| ftclos_routing::FlowLinks::single_path(*pair, path.channels()))
            .collect::<Vec<_>>(),
        num_channels,
    )?;
    let fluid_unit_rate = waterfill_unit(&set).all_unit_rate();
    Ok(PatternAgreement {
        fluid_unit_rate,
        exact_contention_free,
    })
}

/// Fabric-level differential: fluid over the complete two-pair family vs
/// the exact Lemma 1 decision.
#[derive(Clone, Debug)]
pub struct FabricAgreement {
    /// Fluid: every two-pair pattern delivered at full rate.
    pub fluid_nonblocking: bool,
    /// The exact checker's packaged verdict.
    pub exact: NonblockingVerdict,
    /// A two-pair pattern the fluid model failed to deliver, if any.
    pub fluid_witness: Option<[SdPair; 2]>,
}

impl FabricAgreement {
    /// True when fluid and exact agree on the nonblocking decision.
    pub fn agree(&self) -> bool {
        self.fluid_nonblocking == self.exact.nonblocking
    }
}

/// Decide "nonblocking" with the fluid model alone by sweeping **every**
/// two-pair pattern (distinct sources, distinct destinations), then
/// compare against the exact Lemma 1 verdict.
///
/// Cost is `O(p^4)` patterns — this is a verification tool for small
/// fabrics, not a production checker; the exact verdict inside is `O(p^2)`.
/// Pattern enumeration fans out over rayon by first source. All paths are
/// routed **once** into a [`PathArena`]; the sweep's flow expansion then
/// reads cached path slices instead of re-routing each pair `O(p^2)` times.
pub fn check_fabric<R: SinglePathRouter + Sync + ?Sized>(
    router: &R,
    num_channels: usize,
) -> FabricAgreement {
    let p = router.ports();
    // Arena build can only fail for routers that error on their own
    // universe; such routers cannot serve any two-pair pattern either.
    let arena = match PathArena::build(router) {
        Ok(a) => a,
        Err(_) => {
            return FabricAgreement {
                fluid_nonblocking: false,
                exact: nonblocking_verdict(router),
                fluid_witness: None,
            }
        }
    };
    let witnesses: Vec<[SdPair; 2]> = (0..p)
        .into_par_iter()
        .filter_map(|s1| {
            for s2 in (s1 + 1)..p {
                for d1 in 0..p {
                    for d2 in 0..p {
                        if d1 == d2 {
                            continue;
                        }
                        let pairs = [SdPair::new(s1, d1), SdPair::new(s2, d2)];
                        let Ok(perm) = Permutation::from_pairs(p, pairs) else {
                            continue;
                        };
                        match check_pattern(&arena, &perm, num_channels) {
                            Ok(a) if !a.fluid_unit_rate => return Some(pairs),
                            Ok(_) => {}
                            // A routing failure (e.g. faulted path) counts
                            // as not delivered: the fabric cannot serve
                            // this pattern at full rate.
                            Err(_) => return Some(pairs),
                        }
                    }
                }
            }
            None
        })
        .collect();
    let fluid_witness = witnesses.into_iter().next();
    FabricAgreement {
        fluid_nonblocking: fluid_witness.is_none(),
        exact: nonblocking_verdict(router),
        fluid_witness,
    }
}

/// Both models' answers for one pattern under oblivious multipath
/// spreading: fluid unit rate vs expected channel load ≤ capacity.
pub fn check_multipath_pattern(
    mp: &ObliviousMultipath<'_>,
    perm: &Permutation,
    num_channels: usize,
) -> Result<PatternAgreement, FlowError> {
    let spread = mp.spread_pattern(perm)?;
    let exact_contention_free = spread.max_expected_load() <= 1.0 + EPS;
    let set = FlowSet::from_view(mp, perm, num_channels)?;
    let fluid_unit_rate = waterfill_unit(&set).all_unit_rate();
    Ok(PatternAgreement {
        fluid_unit_rate,
        exact_contention_free,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{DModK, SpreadPolicy, YuanDeterministic};
    use ftclos_topo::Ftree;
    use ftclos_traffic::patterns;

    #[test]
    fn pattern_agreement_on_blocking_and_nonblocking_fabrics() {
        // m = n^2: Yuan's routing never contends.
        let big = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&big).unwrap();
        let nc = big.topology().num_channels();
        for k in 0..10 {
            let a = check_pattern(&yuan, &patterns::shift(10, k), nc).unwrap();
            assert!(a.agree() && a.fluid_unit_rate, "shift:{k}");
        }
        // m = n: d-mod-k keeps agreeing on shifts (which it happens to
        // route cleanly — destinations spread evenly mod m)...
        let small = Ftree::new(2, 2, 5).unwrap();
        let dmodk = DModK::new(&small);
        let nc = small.topology().num_channels();
        for k in 0..10 {
            let a = check_pattern(&dmodk, &patterns::shift(10, k), nc).unwrap();
            assert!(a.agree(), "shift:{k} models disagree");
        }
        // ...and on a residue-colliding pattern both models see blocking:
        // two sources in leaf 0 send to destinations 4 and 6 (both ≡ 0
        // mod 2), forcing the same uplink.
        let collide = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let a = check_pattern(&dmodk, &collide, nc).unwrap();
        assert!(a.agree());
        assert!(!a.fluid_unit_rate, "m = n must block the mod collision");
    }

    #[test]
    fn fabric_agreement_matches_lemma1_both_ways() {
        let big = Ftree::new(2, 4, 3).unwrap();
        let yuan = YuanDeterministic::new(&big).unwrap();
        let fa = check_fabric(&yuan, big.topology().num_channels());
        assert!(fa.agree());
        assert!(fa.fluid_nonblocking);
        assert!(fa.fluid_witness.is_none());

        let small = Ftree::new(2, 2, 3).unwrap();
        let dmodk = DModK::new(&small);
        let fa = check_fabric(&dmodk, small.topology().num_channels());
        assert!(fa.agree());
        assert!(!fa.fluid_nonblocking);
        let w = fa.fluid_witness.expect("fluid witness exists");
        // The fluid witness really is a contending two-pair pattern.
        let perm = Permutation::from_pairs(6, w).unwrap();
        let a = check_pattern(&dmodk, &perm, small.topology().num_channels()).unwrap();
        assert!(!a.exact_contention_free);
    }

    #[test]
    fn multipath_agreement_is_expected_load_not_lemma1() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let nc = ft.topology().num_channels();
        // Multipath spreading on m = n keeps expected load at 1 for full
        // shifts, so the fluid model delivers them — even though the
        // deterministic single-path routing blocks (tested above). That
        // divergence is the point: fluid multipath is the average case.
        for k in 1..10 {
            let a = check_multipath_pattern(&mp, &patterns::shift(10, k), nc).unwrap();
            assert!(a.agree(), "shift:{k}");
            assert!(a.fluid_unit_rate, "shift:{k} spread over m = n uplinks");
        }
    }
}
