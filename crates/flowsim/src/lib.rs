//! # ftclos-flowsim — fluid flow-rate simulation of folded-Clos fabrics
//!
//! The packet engine in `ftclos-sim` answers "what happens cycle by
//! cycle"; this crate answers "what rate does each flow *settle at*" —
//! the max-min fair fixed point of a routed traffic pattern, solved in
//! closed form by progressive water-filling. No packets, no cycles, no
//! randomness: the answer for ten thousand hosts arrives in milliseconds
//! and is bit-identical across runs and thread counts.
//!
//! Pipeline:
//!
//! 1. A [`LinkLoadView`](ftclos_routing::LinkLoadView) (any deterministic
//!    router, oblivious multipath, a NONBLOCKINGADAPTIVE plan, or their
//!    fault-masked variants) expands a permutation into per-flow
//!    `(channel, weight)` link sets.
//! 2. [`FlowSet`] compacts those into dual CSR form — flow → links for
//!    rate bookkeeping, channel → flows for the freeze step.
//! 3. [`waterfill`] runs progressive filling against per-channel
//!    [`ChannelCapacities`](ftclos_topo::ChannelCapacities) to the
//!    max-min fair fixed point ([`FluidAllocation`]).
//! 4. [`FluidReport`] summarizes rates, congestion, and a link-utilization
//!    histogram in the same shape the packet engine reports; batch sweeps
//!    run via [`sweep_patterns`].
//!
//! The [`differential`] module ties the model back to the paper's exact
//! combinatorics: on unit-capacity fabrics with single-path routing,
//! "every flow at rate 1.0" coincides with the Lemma 1 contention check
//! per pattern, and with the full nonblocking verdict over the complete
//! two-pair family per fabric.

#![warn(missing_docs)]

pub mod differential;
mod flows;
mod report;
mod sweep;
mod waterfill;

pub use differential::{
    check_fabric, check_multipath_pattern, check_pattern, FabricAgreement, PatternAgreement,
};
pub use flows::{FlowError, FlowSet};
pub use report::FluidReport;
pub use sweep::{
    solve_pattern, solve_pattern_with, standard_suite, sweep_patterns, sweep_patterns_with,
};
pub use waterfill::{
    try_waterfill, try_waterfill_with, waterfill, waterfill_unit, waterfill_with, FluidAllocation,
};
