//! Max-min fair water-filling over a [`FlowSet`].
//!
//! Progressive filling (Bertsekas & Gallager): every unfrozen flow's rate
//! rises at the same speed; when a channel saturates, every flow crossing
//! it freezes at the current water level; repeat until all flows are frozen
//! or have hit their unit demand. The fixed point is *the* max-min fair
//! allocation — no flow's rate can grow without shrinking a flow that is
//! already no faster.
//!
//! The implementation is event-driven rather than incremental: a channel
//! `c` carrying frozen load `consumed[c]` and unfrozen weight
//! `active_weight[c]` saturates at absolute water level
//! `(cap[c] - consumed[c]) / active_weight[c]`, so each round needs one
//! scan over channels (the bottleneck search — parallelized with rayon)
//! plus work proportional to the links of the flows that freeze. Rounds
//! are bounded by the number of distinct bottleneck levels, which is tiny
//! in practice (1 for a nonblocking routing), so fabrics with tens of
//! thousands of hosts solve in milliseconds.
//!
//! Determinism: pure f64 arithmetic over a fixed iteration order; the
//! parallel min-reduction is over `(level, channel id)` pairs with the
//! lower id winning ties, so the result is independent of thread count.

use crate::flows::{FlowError, FlowSet};
pub use ftclos_obs::{Noop, Recorder};
use ftclos_topo::ChannelCapacities;
use rayon::prelude::*;

/// Relative slack used when comparing water levels: channels within
/// `EPS` of the bottleneck level saturate together.
const EPS: f64 = 1e-9;

/// Weight below which a channel is treated as carrying no unfrozen flow
/// (guards the division in the saturation level).
const EPS_WEIGHT: f64 = 1e-12;

/// Every flow demands at most one unit of injection bandwidth (a leaf
/// sources at most one flow in a permutation, at link rate).
const DEMAND: f64 = 1.0;

/// The max-min fair fixed point for one routed pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct FluidAllocation {
    /// Rate of each flow, aligned with the flow set, in `[0, 1]`.
    rates: Vec<f64>,
    /// Allocated load per channel (`sum of rate x weight`), channel-id
    /// indexed.
    link_load: Vec<f64>,
    /// Water-filling rounds until the fixed point.
    rounds: usize,
}

impl FluidAllocation {
    /// Per-flow rates.
    #[inline]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Allocated per-channel load.
    #[inline]
    pub fn link_loads(&self) -> &[f64] {
        &self.link_load
    }

    /// Water-filling rounds to convergence.
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Sum of all flow rates — aggregate delivered throughput in units of
    /// link bandwidth.
    pub fn aggregate_throughput(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Mean flow rate (1.0 for an empty allocation, matching the
    /// convention that an empty pattern is trivially served).
    pub fn mean_rate(&self) -> f64 {
        if self.rates.is_empty() {
            return 1.0;
        }
        self.aggregate_throughput() / self.rates.len() as f64
    }

    /// The slowest flow's rate (1.0 for an empty allocation).
    pub fn worst_rate(&self) -> f64 {
        self.rates.iter().copied().fold(1.0, f64::min)
    }

    /// True when every flow reached full unit rate — the fluid model's
    /// definition of "this pattern is delivered crossbar-style".
    pub fn all_unit_rate(&self) -> bool {
        self.worst_rate() >= 1.0 - EPS
    }
}

/// Run water-filling to the max-min fair fixed point under `caps`.
///
/// # Panics
/// Panics if `caps` covers fewer channels than the flow set references
/// (build both from the same topology). Fault-campaign code paths, where
/// the capacity map may be derived from attacker-chosen fault sets, should
/// use [`try_waterfill`] instead.
pub fn waterfill(flows: &FlowSet, caps: &ChannelCapacities) -> FluidAllocation {
    waterfill_with(flows, caps, &Noop)
}

/// [`waterfill`] with instrumentation: the solve records under span
/// `flowsim.waterfill` with counters `flowsim.rounds` (bottleneck rounds),
/// `flowsim.fill_events` (flows frozen at a bottleneck level),
/// `flowsim.saturated_channels` (channels that hit their cap across all
/// rounds), and `flowsim.demand_events` (runs ending in the unconstrained
/// demand event). With [`Noop`] this is exactly `waterfill`.
///
/// # Panics
/// Same as [`waterfill`].
pub fn waterfill_with<R: Recorder>(
    flows: &FlowSet,
    caps: &ChannelCapacities,
    rec: &R,
) -> FluidAllocation {
    match try_waterfill_with(flows, caps, rec) {
        Ok(alloc) => alloc,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`waterfill`]: rejects a capacity map that covers fewer
/// channels than the flow set references with
/// [`FlowError::CapacityMismatch`] instead of panicking.
///
/// # Errors
/// [`FlowError::CapacityMismatch`] when `caps.len() <
/// flows.num_channels()`.
pub fn try_waterfill(
    flows: &FlowSet,
    caps: &ChannelCapacities,
) -> Result<FluidAllocation, FlowError> {
    try_waterfill_with(flows, caps, &Noop)
}

/// [`try_waterfill`] with instrumentation (see [`waterfill_with`]).
///
/// # Errors
/// Same as [`try_waterfill`].
pub fn try_waterfill_with<R: Recorder>(
    flows: &FlowSet,
    caps: &ChannelCapacities,
    rec: &R,
) -> Result<FluidAllocation, FlowError> {
    let _span = rec.span("flowsim.waterfill");
    if caps.len() < flows.num_channels() {
        return Err(FlowError::CapacityMismatch {
            caps: caps.len(),
            needed: flows.num_channels(),
        });
    }
    let nf = flows.num_flows();
    let nc = flows.num_channels();
    let mut rates = vec![f64::NAN; nf];
    let mut consumed = vec![0.0f64; nc];
    let mut active_weight = vec![0.0f64; nc];
    let mut active = vec![false; nf];
    let mut num_active = 0usize;

    for i in 0..nf {
        if flows.links(i).next().is_none() {
            // Self-traffic or an otherwise linkless flow: served at demand
            // without touching the network.
            rates[i] = DEMAND;
        } else {
            active[i] = true;
            num_active += 1;
            for (c, w) in flows.links(i) {
                active_weight[c] += w;
            }
        }
    }

    let mut rounds = 0usize;
    while num_active > 0 {
        rounds += 1;
        // Bottleneck search: the channel that saturates at the lowest
        // absolute water level. Parallel min-reduction, deterministic by
        // (level, channel id).
        let bottleneck = (0..nc)
            .into_par_iter()
            .filter_map(|c| {
                let aw = active_weight[c];
                if aw <= EPS_WEIGHT {
                    return None;
                }
                let headroom = (caps.get(ftclos_topo::ChannelId(c as u32)) - consumed[c]).max(0.0);
                Some((headroom / aw, c))
            })
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        let level = bottleneck.map_or(DEMAND, |(lvl, _)| lvl.min(DEMAND));
        if level >= DEMAND - EPS {
            // Demand event: every remaining flow reaches unit rate
            // unconstrained.
            rec.add("flowsim.demand_events", 1);
            rec.add("flowsim.fill_events", num_active as u64);
            for (i, rate) in rates.iter_mut().enumerate() {
                if active[i] {
                    *rate = DEMAND;
                }
            }
            break;
        }

        // Freeze every active flow crossing a channel that saturates at
        // (or within EPS of) the bottleneck level.
        let threshold = level * (1.0 + EPS) + EPS_WEIGHT;
        let saturated: Vec<usize> = (0..nc)
            .into_par_iter()
            .filter(|&c| {
                let aw = active_weight[c];
                if aw <= EPS_WEIGHT {
                    return false;
                }
                let headroom = (caps.get(ftclos_topo::ChannelId(c as u32)) - consumed[c]).max(0.0);
                headroom / aw <= threshold
            })
            .collect();
        rec.add("flowsim.saturated_channels", saturated.len() as u64);

        let mut frozen_any = false;
        let active_before = num_active;
        for &c in &saturated {
            for &fi in flows.flows_on(c) {
                let fi = fi as usize;
                if !active[fi] {
                    continue;
                }
                active[fi] = false;
                num_active -= 1;
                frozen_any = true;
                rates[fi] = level;
                for (ch, w) in flows.links(fi) {
                    consumed[ch] += level * w;
                    active_weight[ch] = (active_weight[ch] - w).max(0.0);
                }
            }
        }
        rec.add("flowsim.fill_events", (active_before - num_active) as u64);
        // Numerical safety net: a saturated channel whose flows were all
        // frozen in this very round cannot stall the loop, but if rounding
        // ever produced a saturated set with no active flow, stop rather
        // than spin.
        if !frozen_any {
            for (i, rate) in rates.iter_mut().enumerate() {
                if active[i] {
                    *rate = level;
                }
            }
            break;
        }
    }

    // Materialize allocated link loads from the final rates.
    let mut link_load = vec![0.0f64; nc];
    for (i, &r) in rates.iter().enumerate() {
        if r.is_nan() {
            continue;
        }
        for (c, w) in flows.links(i) {
            link_load[c] += r * w;
        }
    }
    rec.add("flowsim.rounds", rounds as u64);
    Ok(FluidAllocation {
        rates,
        link_load,
        rounds,
    })
}

/// Water-filling against the paper's homogeneous unit-capacity fabric.
pub fn waterfill_unit(flows: &FlowSet) -> FluidAllocation {
    // A throwaway uniform map sized to the flow set: avoids requiring the
    // caller to thread a topology through when capacities are all 1.0.
    let caps = unit_caps(flows.num_channels());
    waterfill(flows, &caps)
}

/// A unit capacity map covering `num_channels` dense channel ids.
fn unit_caps(num_channels: usize) -> ChannelCapacities {
    ChannelCapacities::dense_uniform(num_channels, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::FlowSet;
    use ftclos_routing::{
        DModK, LinkLoadView, ObliviousMultipath, SpreadPolicy, YuanDeterministic,
    };
    use ftclos_topo::Ftree;
    use ftclos_traffic::{patterns, Permutation, SdPair};

    fn solve<V: LinkLoadView + ?Sized>(
        view: &V,
        ft: &Ftree,
        perm: &Permutation,
    ) -> FluidAllocation {
        let set = FlowSet::from_view(view, perm, ft.topology().num_channels()).unwrap();
        waterfill_unit(&set)
    }

    #[test]
    fn nonblocking_routing_delivers_unit_rates() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        for k in 1..10 {
            let alloc = solve(&yuan, &ft, &patterns::shift(10, k));
            assert!(alloc.all_unit_rate(), "shift:{k} must be fully delivered");
            assert_eq!(alloc.worst_rate(), 1.0);
            assert_eq!(alloc.rounds(), 1, "single demand event");
        }
    }

    #[test]
    fn two_flows_on_one_link_get_half_each() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        // Both pairs pick top 0 (dst 4 and 6, mod 2 = 0) from switch 0.
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let alloc = solve(&router, &ft, &perm);
        assert_eq!(alloc.rates().len(), 2);
        for &r in alloc.rates() {
            assert!((r - 0.5).abs() < 1e-9, "fair share on the shared uplink");
        }
        assert!((alloc.aggregate_throughput() - 1.0).abs() < 1e-9);
        assert!(!alloc.all_unit_rate());
        // The shared uplink is exactly full.
        let max_load = alloc.link_loads().iter().copied().fold(0.0, f64::max);
        assert!((max_load - 1.0).abs() < 1e-9);
    }

    #[test]
    fn maxmin_is_not_just_uniform_fair_share() {
        // Three flows: A and B share link L1; B also shares L2 with C... use
        // a hand-built flow set to pin the classic max-min example:
        //   L0: A, B   L1: B, C   => A = 1/2? No: max-min gives A=1/2, B=1/2,
        //   C=1/2 only if both links bottleneck equally. Make C alone on a
        //   wide path: A=1/2, B=1/2, C then rises to min(demand, remaining
        //   L1 capacity) = 1/2 on L1. Instead give C a private link and B
        //   two links: A,B on L0; B,C on L1 with cap 2 via two unit links is
        //   not expressible -> use demand event: C alone on L2.
        //   Expected: A = B = 1/2 (L0 bottleneck), C frozen later at
        //   L1 residual = 1 - 1/2 = 1/2? C crosses L1 too: after B freezes
        //   at 1/2, C's level on L1 can rise to 1 - 1/2 = 1/2... so C = 1/2.
        //   And a fourth flow D on its own link reaches demand 1.0.
        use ftclos_routing::FlowLinks;
        use ftclos_topo::ChannelId;
        let flows = [
            FlowLinks::single_path(SdPair::new(0, 1), &[ChannelId(0)]), // A
            FlowLinks::single_path(SdPair::new(2, 3), &[ChannelId(0), ChannelId(1)]), // B
            FlowLinks::single_path(SdPair::new(4, 5), &[ChannelId(1)]), // C
            FlowLinks::single_path(SdPair::new(6, 7), &[ChannelId(2)]), // D
        ];
        let set = FlowSet::from_flows(&flows, 3).unwrap();
        let alloc = waterfill_unit(&set);
        let r = alloc.rates();
        assert!((r[0] - 0.5).abs() < 1e-9, "A shares L0");
        assert!((r[1] - 0.5).abs() < 1e-9, "B bottlenecked by L0");
        assert!((r[2] - 0.5).abs() < 1e-9, "C takes L1's residual");
        assert!((r[3] - 1.0).abs() < 1e-9, "D unconstrained at demand");
        assert!(alloc.rounds() >= 2, "two distinct freeze events");
        assert!((alloc.worst_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multipath_spread_relieves_single_path_contention() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        // Single-path dmodk halves both flows; uniform 2-way spread carries
        // each uplink at 1/2 + 1/2 = 1 and delivers full rate.
        let dmodk_alloc = solve(&DModK::new(&ft), &ft, &perm);
        assert!((dmodk_alloc.worst_rate() - 0.5).abs() < 1e-9);
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let mp_alloc = solve(&mp, &ft, &perm);
        assert!(mp_alloc.all_unit_rate(), "fluid spreading decontends m=n");
    }

    #[test]
    fn self_traffic_served_for_free() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let alloc = solve(&yuan, &ft, &patterns::identity(10));
        assert!(alloc.all_unit_rate());
        assert_eq!(alloc.aggregate_throughput(), 10.0);
        assert!(alloc.link_loads().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn dead_capacity_zeroes_crossing_flows() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let perm = patterns::shift(10, 2);
        let set = FlowSet::from_view(&router, &perm, ft.topology().num_channels()).unwrap();
        let mut caps = ChannelCapacities::unit(ft.topology());
        caps.set(ft.leaf_up_channel(0, 0), 0.0);
        let alloc = waterfill(&set, &caps);
        // The flow sourced at leaf (0,0) is pinned to the dead cable.
        let dead_flow = (0..set.num_flows())
            .find(|&i| set.pair(i).src == 0)
            .unwrap();
        assert_eq!(alloc.rates()[dead_flow], 0.0);
        assert_eq!(alloc.worst_rate(), 0.0);
    }

    #[test]
    fn recorded_waterfill_matches_plain_and_counts_fills() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let perm = patterns::shift(10, 2);
        let set = FlowSet::from_view(&router, &perm, ft.topology().num_channels()).unwrap();
        let caps = ChannelCapacities::unit(ft.topology());
        let plain = waterfill(&set, &caps);
        let reg = ftclos_obs::Registry::new();
        let recorded = waterfill_with(&set, &caps, &reg);
        assert_eq!(plain, recorded);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("flowsim.rounds"), Some(plain.rounds() as u64));
        // Every network-crossing flow freezes exactly once (at a bottleneck
        // or in the final demand event).
        let networked = (0..set.num_flows())
            .filter(|&i| set.links(i).next().is_some())
            .count();
        assert_eq!(snap.counter("flowsim.fill_events"), Some(networked as u64));
        assert!(snap.spans.iter().any(|s| s.path == "flowsim.waterfill"));
    }

    #[test]
    fn short_capacity_map_is_a_typed_error() {
        use crate::flows::FlowError;
        use ftclos_routing::FlowLinks;
        use ftclos_topo::ChannelId;
        let flows = [FlowLinks::single_path(
            SdPair::new(0, 1),
            &[ChannelId(0), ChannelId(3)],
        )];
        let set = FlowSet::from_flows(&flows, 4).unwrap();
        let caps = ChannelCapacities::dense_uniform(2, 1.0);
        assert_eq!(
            try_waterfill(&set, &caps),
            Err(FlowError::CapacityMismatch { caps: 2, needed: 4 })
        );
        // A covering map succeeds through the fallible entry point too.
        let caps = ChannelCapacities::dense_uniform(4, 1.0);
        assert!(try_waterfill(&set, &caps).unwrap().all_unit_rate());
    }

    #[test]
    fn empty_pattern_trivially_delivered() {
        let set = FlowSet::from_flows(&[], 4).unwrap();
        let alloc = waterfill_unit(&set);
        assert_eq!(alloc.mean_rate(), 1.0);
        assert_eq!(alloc.worst_rate(), 1.0);
        assert!(alloc.all_unit_rate());
        assert_eq!(alloc.aggregate_throughput(), 0.0);
    }
}
