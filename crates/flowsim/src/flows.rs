//! [`FlowSet`] — the link-level expansion of a routed traffic pattern,
//! stored dense for datacenter-scale solving.
//!
//! A [`LinkLoadView`] yields one [`FlowLinks`] per SD pair; this module
//! compacts those into CSR (compressed sparse row) form in both directions:
//! flow → `(channel, weight)` entries for rate bookkeeping, and channel →
//! flow incidence for the water-filling freeze step. Channel ids are dense
//! in every `ftclos-topo` topology, so per-channel state lives in flat
//! vectors — no hashing on the solver's hot path.

use ftclos_routing::{FlowLinks, LinkLoadView, RoutingError};
use ftclos_topo::ChannelId;
use ftclos_traffic::{Permutation, SdPair};
use std::fmt;

/// Errors building a flow set.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowError {
    /// The underlying router failed to expand the pattern.
    Routing(RoutingError),
    /// A flow references a channel id outside the fabric.
    ChannelOutOfRange {
        /// The offending channel.
        channel: ChannelId,
        /// Number of channels in the fabric.
        num_channels: usize,
    },
    /// A flow carries a non-finite or non-positive link weight.
    BadWeight {
        /// The flow's SD pair.
        pair: SdPair,
        /// The offending weight.
        weight: f64,
    },
    /// A capacity map covers fewer channels than the flow set references
    /// (the two were built from different topologies).
    CapacityMismatch {
        /// Channels covered by the capacity map.
        caps: usize,
        /// Channels the flow set references.
        needed: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Routing(e) => write!(f, "routing failed: {e}"),
            FlowError::ChannelOutOfRange {
                channel,
                num_channels,
            } => write!(
                f,
                "flow references channel {channel:?} but the fabric has {num_channels}"
            ),
            FlowError::BadWeight { pair, weight } => {
                write!(f, "flow {pair} carries invalid link weight {weight}")
            }
            FlowError::CapacityMismatch { caps, needed } => write!(
                f,
                "capacity map covers {caps} channels, flow set needs {needed}"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<RoutingError> for FlowError {
    fn from(e: RoutingError) -> Self {
        FlowError::Routing(e)
    }
}

/// The link-level flow sets of one routed pattern, in CSR form.
#[derive(Clone, Debug)]
pub struct FlowSet {
    /// SD pair of each flow.
    pairs: Vec<SdPair>,
    /// Flow `i`'s entries are `entry_channel/entry_weight[flow_start[i]..flow_start[i+1]]`.
    flow_start: Vec<u32>,
    entry_channel: Vec<u32>,
    entry_weight: Vec<f64>,
    /// Channel `c`'s crossing flows are `channel_flows[channel_start[c]..channel_start[c+1]]`.
    channel_start: Vec<u32>,
    channel_flows: Vec<u32>,
    num_channels: usize,
}

impl FlowSet {
    /// Build from per-flow link sets over a fabric with `num_channels`
    /// channels, validating channel ids and weights.
    pub fn from_flows(flows: &[FlowLinks], num_channels: usize) -> Result<Self, FlowError> {
        let mut pairs = Vec::with_capacity(flows.len());
        let mut flow_start = Vec::with_capacity(flows.len() + 1);
        let total: usize = flows.iter().map(|f| f.links.len()).sum();
        let mut entry_channel = Vec::with_capacity(total);
        let mut entry_weight = Vec::with_capacity(total);
        flow_start.push(0u32);
        for f in flows {
            pairs.push(f.pair);
            for &(c, w) in &f.links {
                if c.index() >= num_channels {
                    return Err(FlowError::ChannelOutOfRange {
                        channel: c,
                        num_channels,
                    });
                }
                if !w.is_finite() || w <= 0.0 {
                    return Err(FlowError::BadWeight {
                        pair: f.pair,
                        weight: w,
                    });
                }
                entry_channel.push(c.index() as u32);
                entry_weight.push(w);
            }
            flow_start.push(entry_channel.len() as u32);
        }

        // Invert: channel -> crossing flows (counting sort by channel).
        let mut counts = vec![0u32; num_channels + 1];
        for &c in &entry_channel {
            counts[c as usize + 1] += 1;
        }
        for i in 0..num_channels {
            counts[i + 1] += counts[i];
        }
        let channel_start = counts.clone();
        let mut cursor = counts;
        let mut channel_flows = vec![0u32; entry_channel.len()];
        for (flow, window) in flow_start.windows(2).enumerate() {
            for e in window[0]..window[1] {
                let c = entry_channel[e as usize] as usize;
                channel_flows[cursor[c] as usize] = flow as u32;
                cursor[c] += 1;
            }
        }

        Ok(Self {
            pairs,
            flow_start,
            entry_channel,
            entry_weight,
            channel_start,
            channel_flows,
            num_channels,
        })
    }

    /// Expand `perm` through `view` into a flow set over a fabric with
    /// `num_channels` channels.
    pub fn from_view<V: LinkLoadView + ?Sized>(
        view: &V,
        perm: &Permutation,
        num_channels: usize,
    ) -> Result<Self, FlowError> {
        let flows = view.flow_links(perm)?;
        Self::from_flows(&flows, num_channels)
    }

    /// Number of flows (one per SD pair of the pattern).
    #[inline]
    pub fn num_flows(&self) -> usize {
        self.pairs.len()
    }

    /// Number of channels in the underlying fabric.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// The SD pair of flow `i`.
    #[inline]
    pub fn pair(&self, i: usize) -> SdPair {
        self.pairs[i]
    }

    /// Flow `i`'s `(channel index, weight)` entries.
    #[inline]
    pub fn links(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.flow_start[i] as usize;
        let hi = self.flow_start[i + 1] as usize;
        self.entry_channel[lo..hi]
            .iter()
            .zip(&self.entry_weight[lo..hi])
            .map(|(&c, &w)| (c as usize, w))
    }

    /// Flows crossing channel `c`.
    #[inline]
    pub fn flows_on(&self, c: usize) -> &[u32] {
        let lo = self.channel_start[c] as usize;
        let hi = self.channel_start[c + 1] as usize;
        &self.channel_flows[lo..hi]
    }

    /// Total link entries (the solver's working-set size).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.entry_channel.len()
    }

    /// Per-channel *demand* load: total weight crossing each channel if
    /// every flow sent at full rate — the congestion the pattern asks for
    /// before any fair-sharing happens. Indexed by channel id.
    pub fn demand_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.num_channels];
        for (&c, &w) in self.entry_channel.iter().zip(&self.entry_weight) {
            loads[c as usize] += w;
        }
        loads
    }

    /// Maximum demand load over all channels — the max-congestion objective
    /// of unsplittable-flow routing (0.0 when no flow uses any link).
    pub fn max_congestion(&self) -> f64 {
        self.demand_loads().into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::DModK;
    use ftclos_topo::Ftree;
    use ftclos_traffic::patterns;

    #[test]
    fn csr_roundtrip_matches_flows() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let perm = patterns::shift(10, 3);
        let raw = LinkLoadView::flow_links(&router, &perm).unwrap();
        let set = FlowSet::from_flows(&raw, ft.topology().num_channels()).unwrap();
        assert_eq!(set.num_flows(), raw.len());
        for (i, f) in raw.iter().enumerate() {
            assert_eq!(set.pair(i), f.pair);
            let links: Vec<(usize, f64)> = set.links(i).collect();
            assert_eq!(links.len(), f.links.len());
            for ((c, w), &(rc, rw)) in links.iter().zip(&f.links) {
                assert_eq!(*c, rc.index());
                assert_eq!(*w, rw);
            }
        }
        // The inverse incidence is consistent: every (flow, channel) entry
        // appears in the channel's flow list.
        for i in 0..set.num_flows() {
            for (c, _) in set.links(i) {
                assert!(set.flows_on(c).contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn demand_loads_match_route_assignment() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let perm = patterns::shift(10, 3);
        let set = FlowSet::from_view(&router, &perm, ft.topology().num_channels()).unwrap();
        let assignment = ftclos_routing::route_all(&router, &perm).unwrap();
        assert_eq!(
            set.max_congestion(),
            assignment.max_channel_load() as f64,
            "fluid demand equals integer channel load for unit single-path flows"
        );
    }

    #[test]
    fn rejects_bad_channels_and_weights() {
        let pair = SdPair::new(0, 1);
        let bad_channel = FlowLinks {
            pair,
            links: vec![(ChannelId(99), 1.0)],
        };
        assert!(matches!(
            FlowSet::from_flows(&[bad_channel], 10),
            Err(FlowError::ChannelOutOfRange { .. })
        ));
        let bad_weight = FlowLinks {
            pair,
            links: vec![(ChannelId(0), -1.0)],
        };
        assert!(matches!(
            FlowSet::from_flows(&[bad_weight], 10),
            Err(FlowError::BadWeight { .. })
        ));
        let nan_weight = FlowLinks {
            pair,
            links: vec![(ChannelId(0), f64::NAN)],
        };
        assert!(matches!(
            FlowSet::from_flows(&[nan_weight], 10),
            Err(FlowError::BadWeight { .. })
        ));
    }

    #[test]
    fn empty_pattern_is_fine() {
        let set = FlowSet::from_flows(&[], 4).unwrap();
        assert_eq!(set.num_flows(), 0);
        assert_eq!(set.max_congestion(), 0.0);
    }
}
