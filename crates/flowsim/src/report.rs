//! [`FluidReport`] — the machine- and human-readable summary of one
//! water-filling solve, shared by `ftclos flowsim` and the E19 bench so
//! both emit identical shapes.

use crate::flows::FlowSet;
use crate::waterfill::FluidAllocation;
use ftclos_sim::UtilizationHistogram;
use serde::Serialize;
use std::fmt;

/// Summary of one pattern solved to its max-min fair fixed point.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FluidReport {
    /// Routing function name (e.g. `d-mod-k`).
    pub router: String,
    /// Traffic pattern name (e.g. `shift:3`).
    pub pattern: String,
    /// Leaf universe size of the fabric.
    pub hosts: u32,
    /// Flows in the pattern (self-pairs included).
    pub num_flows: usize,
    /// `(flow, channel)` link entries — the solver's working-set size.
    pub num_link_entries: usize,
    /// Sum of delivered flow rates, in units of link bandwidth.
    pub aggregate_throughput: f64,
    /// Mean delivered flow rate in `[0, 1]`.
    pub mean_rate: f64,
    /// Slowest flow's delivered rate in `[0, 1]`.
    pub worst_rate: f64,
    /// True when every flow reached full unit rate.
    pub all_unit_rate: bool,
    /// Max per-channel *demand* (load if every flow sent at full rate) —
    /// the congestion objective of the routing itself.
    pub max_demand_congestion: f64,
    /// Max per-channel *allocated* load after fair sharing (never exceeds
    /// the channel capacity).
    pub max_link_load: f64,
    /// Water-filling rounds to convergence.
    pub rounds: usize,
    /// Decile histogram of allocated utilization over channels that carry
    /// traffic (same shape the packet engine reports).
    pub utilization: UtilizationHistogram,
}

impl FluidReport {
    /// Assemble a report from a solved allocation.
    pub fn new(
        router: impl Into<String>,
        pattern: impl Into<String>,
        hosts: u32,
        flows: &FlowSet,
        alloc: &FluidAllocation,
    ) -> Self {
        let max_link_load = alloc.link_loads().iter().copied().fold(0.0, f64::max);
        let utilization = UtilizationHistogram::from_utilizations(
            alloc.link_loads().iter().copied().filter(|&l| l > 0.0),
        );
        Self {
            router: router.into(),
            pattern: pattern.into(),
            hosts,
            num_flows: flows.num_flows(),
            num_link_entries: flows.num_entries(),
            aggregate_throughput: alloc.aggregate_throughput(),
            mean_rate: alloc.mean_rate(),
            worst_rate: alloc.worst_rate(),
            all_unit_rate: alloc.all_unit_rate(),
            max_demand_congestion: flows.max_congestion(),
            max_link_load,
            rounds: alloc.rounds(),
            utilization,
        }
    }

    /// Render as a JSON object (hand-rolled: the vendored `serde` is a
    /// marker shim with no serializer behind it).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"router\":{},\"pattern\":{},\"hosts\":{},",
                "\"num_flows\":{},\"num_link_entries\":{},",
                "\"aggregate_throughput\":{},\"mean_rate\":{},",
                "\"worst_rate\":{},\"all_unit_rate\":{},",
                "\"max_demand_congestion\":{},\"max_link_load\":{},",
                "\"rounds\":{},\"utilization\":{}}}"
            ),
            json_string(&self.router),
            json_string(&self.pattern),
            self.hosts,
            self.num_flows,
            self.num_link_entries,
            json_f64(self.aggregate_throughput),
            json_f64(self.mean_rate),
            json_f64(self.worst_rate),
            self.all_unit_rate,
            json_f64(self.max_demand_congestion),
            json_f64(self.max_link_load),
            self.rounds,
            json_histogram(&self.utilization),
        )
    }
}

impl fmt::Display for FluidReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} x {} on {} hosts: {} flows, {} link entries",
            self.router, self.pattern, self.hosts, self.num_flows, self.num_link_entries
        )?;
        writeln!(
            f,
            "  delivered {:.4} aggregate ({:.4} mean, {:.4} worst){}",
            self.aggregate_throughput,
            self.mean_rate,
            self.worst_rate,
            if self.all_unit_rate {
                " — fully delivered"
            } else {
                ""
            }
        )?;
        writeln!(
            f,
            "  congestion: demand max {:.4}, allocated max {:.4}, {} round(s)",
            self.max_demand_congestion, self.max_link_load, self.rounds
        )?;
        write!(
            f,
            "  link utilization deciles: {}",
            self.utilization.to_compact_string()
        )
    }
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number (non-finite values become `null`).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display never emits NaN/inf here and
        // never uses exponent notation, both of which JSON rejects.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Render a utilization histogram as a JSON array of bucket counts.
pub(crate) fn json_histogram(h: &UtilizationHistogram) -> String {
    let inner = h
        .buckets
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("[{inner}]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waterfill::waterfill_unit;
    use ftclos_routing::DModK;
    use ftclos_topo::Ftree;
    use ftclos_traffic::patterns;

    fn sample_report() -> FluidReport {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let perm = patterns::shift(10, 3);
        let set = FlowSet::from_view(&router, &perm, ft.topology().num_channels()).unwrap();
        let alloc = waterfill_unit(&set);
        FluidReport::new("d-mod-k", "shift:3", 10, &set, &alloc)
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"router\":\"d-mod-k\"",
            "\"pattern\":\"shift:3\"",
            "\"hosts\":10",
            "\"num_flows\":10",
            "\"aggregate_throughput\":",
            "\"worst_rate\":",
            "\"all_unit_rate\":",
            "\"max_demand_congestion\":",
            "\"rounds\":",
            "\"utilization\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets — cheap well-formedness proxy without a
        // JSON parser in the tree.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn json_escaping_and_floats() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn display_mentions_the_headline_numbers() {
        let r = sample_report();
        let text = r.to_string();
        assert!(text.contains("d-mod-k"));
        assert!(text.contains("shift:3"));
        assert!(text.contains("deciles"));
    }
}
