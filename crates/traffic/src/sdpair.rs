//! Source-destination pairs (paper Section III).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A source-destination pair `(s, d)` over dense leaf port indices.
///
/// The paper writes `SRC(s, d)` and `DST(s, d)` for the bottom switches
/// hosting the endpoints; those are topology-dependent and provided by the
/// routing layer (e.g. `Ftree::host_switch`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SdPair {
    /// Source leaf port index.
    pub src: u32,
    /// Destination leaf port index.
    pub dst: u32,
}

impl SdPair {
    /// Construct a pair.
    #[inline]
    pub fn new(src: u32, dst: u32) -> Self {
        Self { src, dst }
    }

    /// True if source and destination are the same port (self-traffic;
    /// excluded from permutations by most generators but legal per
    /// Definition 1).
    #[inline]
    pub fn is_self(&self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Debug for SdPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

impl fmt::Display for SdPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<(u32, u32)> for SdPair {
    fn from((src, dst): (u32, u32)) -> Self {
        SdPair::new(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let p = SdPair::new(3, 9);
        assert_eq!(p.src, 3);
        assert_eq!(p.dst, 9);
        assert!(!p.is_self());
        assert!(SdPair::new(4, 4).is_self());
        assert_eq!(format!("{p}"), "(3 -> 9)");
        assert_eq!(SdPair::from((1u32, 2u32)), SdPair::new(1, 2));
    }
}
