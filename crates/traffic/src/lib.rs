//! # ftclos-traffic — communication patterns for interconnect evaluation
//!
//! Implements the paper's traffic model (Section III): *SD pairs* and
//! *permutation communications* (Definition 1), plus the pattern generators
//! used by the experiments:
//!
//! * [`Permutation`] — a validated set of [`SdPair`]s in which every leaf is
//!   the source of at most one pair and the destination of at most one pair
//!   (Property 1 is enforced by construction).
//! * [`patterns`] — classic structured permutations (identity, shift,
//!   transpose, bit-reversal, bit-complement, tornado, neighbor) and
//!   seeded random (partial) permutations.
//! * [`enumerate`] — exhaustive enumeration of all full permutations for
//!   tiny port counts and of all two-pair patterns. By the paper's Lemma 1,
//!   a single-path deterministic routing blocks some permutation **iff** it
//!   blocks a two-pair pattern, so [`enumerate::TwoPairs`] is a *complete*
//!   blocking test for deterministic routing.
//! * [`adversarial`] — congestion-maximizing permutations against `d mod k`
//!   style deterministic routings.
//!
//! Leaves are identified by dense port indices `0..ports`; every topology in
//! `ftclos-topo` assigns leaves the first node ids, so a port index equals
//! the leaf's node-id index.

pub mod adversarial;
pub mod enumerate;
pub mod error;
pub mod patterns;
pub mod permutation;
pub mod sdpair;

pub use error::TrafficError;
pub use permutation::Permutation;
pub use sdpair::SdPair;
