//! Exhaustive pattern enumeration for small universes.
//!
//! Two enumerators matter for the paper's verification experiments:
//!
//! * [`AllPermutations`] — every full permutation of `ports` leaves
//!   (`ports!` of them; practical up to ~8 ports). Used to verify
//!   Theorem 3 / Theorem 4 exhaustively on tiny fabrics.
//! * [`TwoPairs`] — every 2-SD-pair permutation. Lemma 1's proof shows a
//!   deterministic routing blocks some permutation **iff** two pairs with
//!   distinct sources and destinations share a link, so enumerating all
//!   `O(ports⁴)` two-pair patterns is a *complete* blocking test for
//!   single-path deterministic routing at any size we can afford.

use crate::permutation::Permutation;
use crate::sdpair::SdPair;

/// Iterator over all full permutations of `0..ports` in lexicographic order.
pub struct AllPermutations {
    current: Option<Vec<u32>>,
}

impl AllPermutations {
    /// Create the enumerator. `ports = 0` yields exactly one (empty)
    /// permutation.
    pub fn new(ports: u32) -> Self {
        Self {
            current: Some((0..ports).collect()),
        }
    }

    /// `ports!` as u128 (saturating), for progress reporting.
    pub fn count_for(ports: u32) -> u128 {
        (1..=ports as u128).product()
    }
}

/// Advance `perm` to the next lexicographic permutation; false at the end.
fn next_permutation(perm: &mut [u32]) -> bool {
    if perm.len() < 2 {
        return false;
    }
    // Find longest non-increasing suffix.
    let mut i = perm.len() - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    // Swap pivot with rightmost element greater than it, reverse suffix.
    let mut j = perm.len() - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

impl Iterator for AllPermutations {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        let cur = self.current.as_mut()?;
        let out = Permutation::from_map(cur).expect("enumeration preserves bijection");
        if !next_permutation(cur) {
            self.current = None;
        }
        Some(out)
    }
}

/// Iterator over every two-pair permutation `{(s1,d1), (s2,d2)}` with
/// `s1 < s2` (order within the set is irrelevant) and `d1 != d2`.
///
/// With `skip_self = true` (the default used by blocking searches), pairs
/// with `src == dst` are omitted: self-traffic never leaves the source
/// switch, so it cannot contend.
pub struct TwoPairs {
    ports: u32,
    skip_self: bool,
    s1: u32,
    d1: u32,
    s2: u32,
    d2: u32,
}

impl TwoPairs {
    /// Create the enumerator over `ports` leaves.
    pub fn new(ports: u32, skip_self: bool) -> Self {
        Self {
            ports,
            skip_self,
            s1: 0,
            d1: 0,
            s2: 0,
            d2: 0,
        }
    }

    fn valid(&self) -> bool {
        self.s1 < self.s2
            && self.d1 != self.d2
            && !(self.skip_self && (self.s1 == self.d1 || self.s2 == self.d2))
    }

    fn advance(&mut self) -> bool {
        self.d2 += 1;
        if self.d2 >= self.ports {
            self.d2 = 0;
            self.s2 += 1;
            if self.s2 >= self.ports {
                self.s2 = 0;
                self.d1 += 1;
                if self.d1 >= self.ports {
                    self.d1 = 0;
                    self.s1 += 1;
                    if self.s1 >= self.ports {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl Iterator for TwoPairs {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        if self.ports == 0 || self.s1 >= self.ports {
            return None;
        }
        loop {
            if self.valid() {
                let out = Permutation::from_pairs(
                    self.ports,
                    [SdPair::new(self.s1, self.d1), SdPair::new(self.s2, self.d2)],
                )
                .expect("TwoPairs generates valid permutations");
                if !self.advance() {
                    self.s1 = self.ports; // exhausted
                }
                return Some(out);
            }
            if !self.advance() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_small_factorials() {
        assert_eq!(AllPermutations::new(0).count(), 1);
        assert_eq!(AllPermutations::new(1).count(), 1);
        assert_eq!(AllPermutations::new(3).count(), 6);
        assert_eq!(AllPermutations::new(5).count(), 120);
        assert_eq!(AllPermutations::count_for(5), 120);
    }

    #[test]
    fn lexicographic_and_distinct() {
        let perms: Vec<_> = AllPermutations::new(3).collect();
        assert_eq!(perms[0].dst_of(0), Some(0));
        assert_eq!(perms[5].dst_of(0), Some(2));
        let set: std::collections::HashSet<_> = perms
            .iter()
            .map(|p| p.pairs().iter().map(|x| x.dst).collect::<Vec<_>>())
            .collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn two_pairs_count_with_self() {
        // s1<s2: C(p,2) ordered source pairs; d1 != d2: p(p-1) ordered dest
        // choices.
        let p = 4u32;
        let expected = (p * (p - 1) / 2) * (p * (p - 1));
        assert_eq!(TwoPairs::new(p, false).count(), expected as usize);
    }

    #[test]
    fn two_pairs_all_valid_permutations() {
        for perm in TwoPairs::new(5, true) {
            assert_eq!(perm.len(), 2);
            let [a, b] = perm.pairs() else { panic!() };
            assert_ne!(a.src, b.src);
            assert_ne!(a.dst, b.dst);
            assert!(!a.is_self() && !b.is_self());
        }
    }

    #[test]
    fn two_pairs_skip_self_is_smaller() {
        let with = TwoPairs::new(5, false).count();
        let without = TwoPairs::new(5, true).count();
        assert!(without < with);
    }

    #[test]
    fn two_pairs_empty_universe() {
        assert_eq!(TwoPairs::new(0, true).count(), 0);
        assert_eq!(TwoPairs::new(1, true).count(), 0);
        // Two ports, skip self: only (0->1),(1->0).
        assert_eq!(TwoPairs::new(2, true).count(), 1);
    }
}
