//! Validated permutation communications (paper Definition 1).

use crate::error::TrafficError;
use crate::sdpair::SdPair;
use serde::{Deserialize, Serialize};

/// A permutation communication over `ports` leaves: every leaf is the source
/// of at most one SD pair and the destination of at most one SD pair.
///
/// Permutations may be *partial* ("a permutation does not require all leaf
/// nodes to be used"). Property 1 — two pairs in a permutation have distinct
/// sources and distinct destinations — holds by construction.
///
/// ```
/// use ftclos_traffic::{Permutation, SdPair};
///
/// let p = Permutation::from_pairs(6, [SdPair::new(0, 3), SdPair::new(2, 1)]).unwrap();
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.dst_of(0), Some(3));
/// // Definition 1 is enforced: duplicate destinations are rejected.
/// assert!(Permutation::from_pairs(6, [SdPair::new(0, 3), SdPair::new(1, 3)]).is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    ports: u32,
    pairs: Vec<SdPair>,
}

impl Permutation {
    /// Build a permutation from SD pairs, validating Definition 1.
    pub fn from_pairs(
        ports: u32,
        pairs: impl IntoIterator<Item = SdPair>,
    ) -> Result<Self, TrafficError> {
        let pairs: Vec<SdPair> = pairs.into_iter().collect();
        let mut src_seen = vec![false; ports as usize];
        let mut dst_seen = vec![false; ports as usize];
        for p in &pairs {
            for port in [p.src, p.dst] {
                if port >= ports {
                    return Err(TrafficError::PortOutOfRange { port, ports });
                }
            }
            let s = p.src as usize;
            if std::mem::replace(&mut src_seen[s], true) {
                return Err(TrafficError::DuplicateSource { port: p.src });
            }
            let d = p.dst as usize;
            if std::mem::replace(&mut dst_seen[d], true) {
                return Err(TrafficError::DuplicateDestination { port: p.dst });
            }
        }
        Ok(Self { ports, pairs })
    }

    /// Build a full permutation from a mapping `dst[s] = d`; `map.len()` is
    /// the port count and the map must be a bijection.
    pub fn from_map(map: &[u32]) -> Result<Self, TrafficError> {
        let ports = map.len() as u32;
        Self::from_pairs(
            ports,
            map.iter()
                .enumerate()
                .map(|(s, &d)| SdPair::new(s as u32, d)),
        )
    }

    /// Build from an optional mapping (partial permutation):
    /// `map[s] = Some(d)` adds pair `(s, d)`.
    pub fn from_partial_map(map: &[Option<u32>]) -> Result<Self, TrafficError> {
        let ports = map.len() as u32;
        Self::from_pairs(
            ports,
            map.iter()
                .enumerate()
                .filter_map(|(s, d)| d.map(|d| SdPair::new(s as u32, d))),
        )
    }

    /// The empty permutation over `ports` leaves.
    pub fn empty(ports: u32) -> Self {
        Self {
            ports,
            pairs: Vec::new(),
        }
    }

    /// Number of leaves in the universe.
    #[inline]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// The SD pairs.
    #[inline]
    pub fn pairs(&self) -> &[SdPair] {
        &self.pairs
    }

    /// Number of SD pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no SD pairs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True if every port is both a source and a destination.
    pub fn is_full(&self) -> bool {
        self.pairs.len() == self.ports as usize
    }

    /// Destination of `src`, if any.
    pub fn dst_of(&self, src: u32) -> Option<u32> {
        self.pairs.iter().find(|p| p.src == src).map(|p| p.dst)
    }

    /// The inverse permutation (sources and destinations swapped).
    pub fn inverse(&self) -> Self {
        Self {
            ports: self.ports,
            pairs: self
                .pairs
                .iter()
                .map(|p| SdPair::new(p.dst, p.src))
                .collect(),
        }
    }

    /// Restrict to pairs whose source satisfies `keep`.
    pub fn filter_sources(&self, mut keep: impl FnMut(u32) -> bool) -> Self {
        Self {
            ports: self.ports,
            pairs: self.pairs.iter().copied().filter(|p| keep(p.src)).collect(),
        }
    }

    /// Remove pairs where `src == dst` (self-traffic never uses switch
    /// uplinks in a fat tree and is usually excluded from routing studies).
    pub fn without_self_pairs(&self) -> Self {
        Self {
            ports: self.ports,
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|p| !p.is_self())
                .collect(),
        }
    }

    /// Group pairs by `group(src)`, preserving order — used to split a
    /// permutation into per-source-switch sets `P^i` (Fig. 4 line (1)).
    pub fn group_by_source<K: Ord + Clone>(
        &self,
        mut group: impl FnMut(u32) -> K,
    ) -> std::collections::BTreeMap<K, Vec<SdPair>> {
        let mut map = std::collections::BTreeMap::new();
        for &p in &self.pairs {
            map.entry(group(p.src)).or_insert_with(Vec::new).push(p);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_partial() {
        let p = Permutation::from_pairs(6, [SdPair::new(0, 3), SdPair::new(2, 1)]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_full());
        assert_eq!(p.dst_of(0), Some(3));
        assert_eq!(p.dst_of(1), None);
    }

    #[test]
    fn rejects_duplicate_source() {
        let err = Permutation::from_pairs(6, [SdPair::new(0, 3), SdPair::new(0, 1)]).unwrap_err();
        assert_eq!(err, TrafficError::DuplicateSource { port: 0 });
    }

    #[test]
    fn rejects_duplicate_destination() {
        let err = Permutation::from_pairs(6, [SdPair::new(0, 3), SdPair::new(1, 3)]).unwrap_err();
        assert_eq!(err, TrafficError::DuplicateDestination { port: 3 });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Permutation::from_pairs(4, [SdPair::new(0, 9)]).unwrap_err();
        assert_eq!(err, TrafficError::PortOutOfRange { port: 9, ports: 4 });
    }

    #[test]
    fn from_map_bijection() {
        let p = Permutation::from_map(&[2, 0, 1]).unwrap();
        assert!(p.is_full());
        assert_eq!(p.dst_of(0), Some(2));
        assert!(Permutation::from_map(&[0, 0, 1]).is_err());
    }

    #[test]
    fn from_partial_map() {
        let p = Permutation::from_partial_map(&[Some(1), None, Some(0)]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.dst_of(1), None);
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_map(&[2, 0, 1, 3]).unwrap();
        let inv = p.inverse();
        assert_eq!(inv.dst_of(2), Some(0));
        assert_eq!(inv.inverse(), p);
    }

    #[test]
    fn self_pair_allowed_then_strippable() {
        let p = Permutation::from_map(&[0, 2, 1]).unwrap();
        assert_eq!(p.len(), 3);
        let stripped = p.without_self_pairs();
        assert_eq!(stripped.len(), 2);
        assert_eq!(stripped.dst_of(0), None);
    }

    #[test]
    fn group_by_source_switch() {
        // 6 ports, 2 per switch.
        let p = Permutation::from_map(&[3, 4, 5, 0, 1, 2]).unwrap();
        let groups = p.group_by_source(|s| s / 2);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&0].len(), 2);
        assert_eq!(groups[&2][0], SdPair::new(4, 1));
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::empty(8);
        assert!(p.is_empty());
        assert_eq!(p.ports(), 8);
    }
}
