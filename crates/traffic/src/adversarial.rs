//! Adversarial permutation constructions against common deterministic
//! routings on `ftree(n+m, r)`.
//!
//! Theorem 2 says any single-path deterministic routing with `m < n²` has a
//! blocking permutation; these generators produce O(1)-size witnesses for
//! the *specific* modular routings deployed in practice (`d mod m` top
//! selection, the InfiniBand default family), so experiments don't need a
//! search to demonstrate blocking.

use crate::permutation::Permutation;
use crate::sdpair::SdPair;

/// Leaf universe helpers for `ftree(n+m, r)` with leaves numbered `v·n + k`.
#[derive(Clone, Copy, Debug)]
pub struct FtreeShape {
    /// Leaves per bottom switch.
    pub n: u32,
    /// Top-level switches.
    pub m: u32,
    /// Bottom-level switches.
    pub r: u32,
}

impl FtreeShape {
    /// Total leaf count `r·n`.
    pub fn ports(&self) -> u32 {
        self.r * self.n
    }

    /// Bottom switch of a leaf.
    pub fn switch_of(&self, leaf: u32) -> u32 {
        leaf / self.n
    }
}

/// Two-pair permutation that congests one **uplink** under `top = d mod m`
/// routing: two sources in bottom switch 0 send to distinct destinations in
/// different switches with equal residue mod `m`.
///
/// Returns `None` when the shape cannot host the witness (`n < 2` or too few
/// leaves outside switch 0 to find two same-residue destinations in distinct
/// switches).
pub fn uplink_attack_mod(shape: FtreeShape) -> Option<Permutation> {
    let FtreeShape { n, m, r } = shape;
    if n < 2 || r < 3 {
        return None;
    }
    let ports = shape.ports();
    // d1: first leaf of switch 1. d2: next leaf with the same residue mod m
    // in a switch other than 0 and 1.
    let d1 = n;
    let mut d2 = d1 + m;
    while d2 < ports && shape.switch_of(d2) <= 1 {
        d2 += m;
    }
    if d2 >= ports {
        return None;
    }
    debug_assert_eq!(d1 % m, d2 % m);
    debug_assert_ne!(shape.switch_of(d1), shape.switch_of(d2));
    Some(
        Permutation::from_pairs(ports, [SdPair::new(0, d1), SdPair::new(1, d2)])
            .expect("distinct sources and destinations"),
    )
}

/// Two-pair permutation that congests one **downlink** under `top = s mod m`
/// routing: two sources with equal residue mod `m` in different switches
/// send to distinct destinations in one switch.
pub fn downlink_attack_mod(shape: FtreeShape) -> Option<Permutation> {
    // The mirror image of the uplink attack.
    uplink_attack_mod(shape).map(|p| p.inverse())
}

/// Full-pressure pattern for one source switch: all `n` leaves of switch `v`
/// send to leaf 0 of `n` distinct other switches. This is the worst case for
/// uplink capacity out of `v` and the pattern class used in the Lemma 2 /
/// adaptive-routing experiments.
pub fn saturate_switch(shape: FtreeShape, v: u32) -> Option<Permutation> {
    let FtreeShape { n, r, .. } = shape;
    if r <= n {
        return None; // not enough distinct destination switches
    }
    let mut pairs = Vec::with_capacity(n as usize);
    let mut w = 0;
    for k in 0..n {
        if w == v {
            w += 1;
        }
        pairs.push(SdPair::new(v * n + k, w * n));
        w += 1;
    }
    Some(Permutation::from_pairs(shape.ports(), pairs).expect("distinct switches"))
}

/// The "all-to-one-switch" inverse of [`saturate_switch`]: leaves of `n`
/// distinct switches all send into switch `v` (worst case for downlinks).
pub fn converge_on_switch(shape: FtreeShape, v: u32) -> Option<Permutation> {
    saturate_switch(shape, v).map(|p| p.inverse())
}

/// Cross-switch full permutation `leaf (v, k) → leaf ((v+1) mod r, k)`:
/// every SD pair crosses switches, so all `r·n` pairs need top-level routes.
/// This is the maximal-load permutation used in throughput experiments.
pub fn rotate_switches(shape: FtreeShape) -> Permutation {
    let FtreeShape { n, r, .. } = shape;
    let ports = shape.ports();
    let map: Vec<u32> = (0..ports)
        .map(|s| {
            let (v, k) = (s / n, s % n);
            ((v + 1) % r) * n + k
        })
        .collect();
    Permutation::from_map(&map).expect("rotation is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: FtreeShape = FtreeShape { n: 2, m: 2, r: 5 };

    #[test]
    fn uplink_attack_properties() {
        let p = uplink_attack_mod(SHAPE).unwrap();
        let [a, b] = p.pairs() else { panic!() };
        // Same source switch, same dest residue, different dest switches.
        assert_eq!(SHAPE.switch_of(a.src), SHAPE.switch_of(b.src));
        assert_eq!(a.dst % SHAPE.m, b.dst % SHAPE.m);
        assert_ne!(SHAPE.switch_of(a.dst), SHAPE.switch_of(b.dst));
    }

    #[test]
    fn uplink_attack_infeasible_shapes() {
        assert!(uplink_attack_mod(FtreeShape { n: 1, m: 2, r: 9 }).is_none());
        assert!(uplink_attack_mod(FtreeShape { n: 2, m: 2, r: 2 }).is_none());
        // m so large every residue class has one leaf -> no witness.
        assert!(uplink_attack_mod(FtreeShape { n: 2, m: 100, r: 3 }).is_none());
    }

    #[test]
    fn downlink_attack_mirrors() {
        let p = downlink_attack_mod(SHAPE).unwrap();
        let [a, b] = p.pairs() else { panic!() };
        assert_eq!(SHAPE.switch_of(a.dst), SHAPE.switch_of(b.dst));
        assert_eq!(a.src % SHAPE.m, b.src % SHAPE.m);
    }

    #[test]
    fn saturate_switch_targets_distinct_switches() {
        let p = saturate_switch(SHAPE, 2).unwrap();
        assert_eq!(p.len(), 2);
        let mut dst_switches: Vec<u32> = p.pairs().iter().map(|x| SHAPE.switch_of(x.dst)).collect();
        dst_switches.sort_unstable();
        dst_switches.dedup();
        assert_eq!(dst_switches.len(), 2);
        assert!(dst_switches.iter().all(|&w| w != 2));
        assert!(saturate_switch(FtreeShape { n: 3, m: 1, r: 3 }, 0).is_none());
    }

    #[test]
    fn converge_is_inverse() {
        let p = converge_on_switch(SHAPE, 2).unwrap();
        assert!(p.pairs().iter().all(|x| SHAPE.switch_of(x.dst) == 2));
    }

    #[test]
    fn rotation_crosses_switches() {
        let p = rotate_switches(SHAPE);
        assert!(p.is_full());
        for pair in p.pairs() {
            assert_ne!(SHAPE.switch_of(pair.src), SHAPE.switch_of(pair.dst));
            assert_eq!(pair.src % SHAPE.n, pair.dst % SHAPE.n);
        }
    }
}
