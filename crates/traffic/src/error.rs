//! Error type for traffic-pattern construction.

use std::fmt;

/// Errors produced when building or validating communication patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrafficError {
    /// A leaf port index was `>= ports`.
    PortOutOfRange {
        /// The offending index.
        port: u32,
        /// The number of ports in the pattern's universe.
        ports: u32,
    },
    /// A leaf appears as the source of two SD pairs (violates Definition 1).
    DuplicateSource {
        /// The offending source port.
        port: u32,
    },
    /// A leaf appears as the destination of two SD pairs (violates
    /// Definition 1).
    DuplicateDestination {
        /// The offending destination port.
        port: u32,
    },
    /// A generator's structural requirement was not met (e.g. bit-reversal
    /// needs a power-of-two port count).
    Unsupported {
        /// Which generator failed.
        generator: &'static str,
        /// Why.
        reason: String,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range (ports = {ports})")
            }
            TrafficError::DuplicateSource { port } => {
                write!(f, "port {port} is the source of more than one SD pair")
            }
            TrafficError::DuplicateDestination { port } => {
                write!(f, "port {port} is the destination of more than one SD pair")
            }
            TrafficError::Unsupported { generator, reason } => {
                write!(f, "{generator}: {reason}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            TrafficError::PortOutOfRange { port: 9, ports: 4 }.to_string(),
            "port 9 out of range (ports = 4)"
        );
        assert!(TrafficError::DuplicateSource { port: 2 }
            .to_string()
            .contains("source"));
        assert!(TrafficError::DuplicateDestination { port: 2 }
            .to_string()
            .contains("destination"));
    }
}
