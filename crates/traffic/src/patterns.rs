//! Structured and random permutation generators.
//!
//! The structured patterns are the standard interconnection-network suite
//! (shift, transpose, bit-reversal, bit-complement, tornado, neighbor);
//! random permutations use a seeded Fisher-Yates shuffle so every experiment
//! is reproducible.

use crate::error::TrafficError;
use crate::permutation::Permutation;
use crate::sdpair::SdPair;
use rand::seq::SliceRandom;
use rand::Rng;

/// Identity: every leaf sends to itself. Trivially contention-free.
pub fn identity(ports: u32) -> Permutation {
    Permutation::from_map(&(0..ports).collect::<Vec<_>>()).expect("identity is a bijection")
}

/// Cyclic shift by `k`: `d = (s + k) mod ports`.
pub fn shift(ports: u32, k: u32) -> Permutation {
    let map: Vec<u32> = (0..ports).map(|s| (s + k) % ports).collect();
    Permutation::from_map(&map).expect("shift is a bijection")
}

/// Neighbor exchange: even/odd port pairs swap (`0<->1, 2<->3, …`).
/// Requires an even port count.
pub fn neighbor(ports: u32) -> Result<Permutation, TrafficError> {
    if !ports.is_multiple_of(2) {
        return Err(TrafficError::Unsupported {
            generator: "neighbor",
            reason: format!("needs an even port count, got {ports}"),
        });
    }
    let map: Vec<u32> = (0..ports).map(|s| s ^ 1).collect();
    Ok(Permutation::from_map(&map).expect("neighbor is a bijection"))
}

/// Matrix transpose over a `rows x cols` layout: `s = a·cols + b` sends to
/// `d = b·rows + a`. Requires `ports == rows * cols`.
pub fn transpose(rows: u32, cols: u32) -> Permutation {
    let ports = rows * cols;
    let map: Vec<u32> = (0..ports)
        .map(|s| {
            let (a, b) = (s / cols, s % cols);
            b * rows + a
        })
        .collect();
    Permutation::from_map(&map).expect("transpose is a bijection")
}

/// Bit reversal: `d` is `s` with its `log2(ports)` bits reversed.
/// Requires a power-of-two port count.
pub fn bit_reversal(ports: u32) -> Result<Permutation, TrafficError> {
    if !ports.is_power_of_two() {
        return Err(TrafficError::Unsupported {
            generator: "bit_reversal",
            reason: format!("needs a power-of-two port count, got {ports}"),
        });
    }
    let bits = ports.trailing_zeros();
    let map: Vec<u32> = (0..ports)
        .map(|s| {
            if bits == 0 {
                s
            } else {
                s.reverse_bits() >> (32 - bits)
            }
        })
        .collect();
    Ok(Permutation::from_map(&map).expect("bit reversal is a bijection"))
}

/// Bit complement: `d = !s` over `log2(ports)` bits. Requires a power-of-two
/// port count.
pub fn bit_complement(ports: u32) -> Result<Permutation, TrafficError> {
    if !ports.is_power_of_two() {
        return Err(TrafficError::Unsupported {
            generator: "bit_complement",
            reason: format!("needs a power-of-two port count, got {ports}"),
        });
    }
    let map: Vec<u32> = (0..ports).map(|s| s ^ (ports - 1)).collect();
    Ok(Permutation::from_map(&map).expect("bit complement is a bijection"))
}

/// Tornado: `d = (s + ceil(ports/2) - 1) mod ports` — the classic
/// adversarial pattern for rings, included for workload diversity.
pub fn tornado(ports: u32) -> Permutation {
    let half = ports.div_ceil(2).saturating_sub(1);
    shift(ports, half)
}

/// Uniform random full permutation (Fisher-Yates with the supplied RNG).
pub fn random_full<R: Rng>(ports: u32, rng: &mut R) -> Permutation {
    let mut map: Vec<u32> = (0..ports).collect();
    map.shuffle(rng);
    Permutation::from_map(&map).expect("shuffle is a bijection")
}

/// Random *partial* permutation: each source participates with probability
/// `density`, and participating sources get distinct random destinations.
pub fn random_partial<R: Rng>(ports: u32, density: f64, rng: &mut R) -> Permutation {
    let sources: Vec<u32> = (0..ports)
        .filter(|_| rng.gen_bool(density.clamp(0.0, 1.0)))
        .collect();
    let mut dests: Vec<u32> = (0..ports).collect();
    dests.shuffle(rng);
    Permutation::from_pairs(
        ports,
        sources
            .iter()
            .zip(dests.iter())
            .map(|(&s, &d)| SdPair::new(s, d)),
    )
    .expect("distinct sources zip distinct destinations")
}

/// Random full permutation with no fixed points (no `src == dst`), built by
/// re-drawing until derangement; for `ports >= 2` this takes ~e draws in
/// expectation.
pub fn random_derangement<R: Rng>(ports: u32, rng: &mut R) -> Permutation {
    assert!(ports >= 2, "derangement needs at least two ports");
    loop {
        let p = random_full(ports, rng);
        if p.pairs().iter().all(|pair| !pair.is_self()) {
            return p;
        }
    }
}

/// The named structured patterns, for sweep harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructuredPattern {
    /// [`identity`]
    Identity,
    /// [`shift`] with `k = 1`
    Shift1,
    /// [`shift`] with `k = ports/2`
    HalfShift,
    /// [`tornado`]
    Tornado,
    /// [`neighbor`]
    Neighbor,
    /// [`bit_reversal`]
    BitReversal,
    /// [`bit_complement`]
    BitComplement,
    /// [`transpose`] over the squarest factorization
    Transpose,
}

impl StructuredPattern {
    /// All variants.
    pub const ALL: [StructuredPattern; 8] = [
        StructuredPattern::Identity,
        StructuredPattern::Shift1,
        StructuredPattern::HalfShift,
        StructuredPattern::Tornado,
        StructuredPattern::Neighbor,
        StructuredPattern::BitReversal,
        StructuredPattern::BitComplement,
        StructuredPattern::Transpose,
    ];

    /// Generate the pattern for `ports` leaves; returns `None` when the
    /// structural requirement (parity, power of two) is unmet.
    pub fn generate(self, ports: u32) -> Option<Permutation> {
        match self {
            StructuredPattern::Identity => Some(identity(ports)),
            StructuredPattern::Shift1 => Some(shift(ports, 1)),
            StructuredPattern::HalfShift => Some(shift(ports, ports / 2)),
            StructuredPattern::Tornado => Some(tornado(ports)),
            StructuredPattern::Neighbor => neighbor(ports).ok(),
            StructuredPattern::BitReversal => bit_reversal(ports).ok(),
            StructuredPattern::BitComplement => bit_complement(ports).ok(),
            StructuredPattern::Transpose => {
                let rows = (1..=ports)
                    .rev()
                    .find(|r| ports.is_multiple_of(*r) && *r * *r <= ports)?;
                Some(transpose(rows, ports / rows))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn identity_and_shift() {
        let p = identity(5);
        assert!(p.pairs().iter().all(|x| x.is_self()));
        let s = shift(5, 2);
        assert_eq!(s.dst_of(4), Some(1));
        assert!(s.is_full());
    }

    #[test]
    fn neighbor_pairs_swap() {
        let p = neighbor(6).unwrap();
        assert_eq!(p.dst_of(0), Some(1));
        assert_eq!(p.dst_of(1), Some(0));
        assert!(neighbor(5).is_err());
    }

    #[test]
    fn transpose_is_involution_on_square() {
        let p = transpose(4, 4);
        for s in 0..16 {
            let d = p.dst_of(s).unwrap();
            assert_eq!(p.dst_of(d), Some(s));
        }
    }

    #[test]
    fn bit_reversal_small() {
        let p = bit_reversal(8).unwrap();
        assert_eq!(p.dst_of(0b001), Some(0b100));
        assert_eq!(p.dst_of(0b110), Some(0b011));
        assert!(bit_reversal(6).is_err());
        // Degenerate single-port case.
        let one = bit_reversal(1).unwrap();
        assert_eq!(one.dst_of(0), Some(0));
    }

    #[test]
    fn bit_complement_small() {
        let p = bit_complement(8).unwrap();
        assert_eq!(p.dst_of(0), Some(7));
        assert_eq!(p.dst_of(5), Some(2));
        assert!(bit_complement(12).is_err());
    }

    #[test]
    fn tornado_is_near_half_shift() {
        let p = tornado(8);
        assert_eq!(p.dst_of(0), Some(3));
        let p = tornado(7);
        assert_eq!(p.dst_of(0), Some(3));
    }

    #[test]
    fn random_full_is_full_and_seeded() {
        let a = random_full(32, &mut rng());
        let b = random_full(32, &mut rng());
        assert!(a.is_full());
        assert_eq!(a, b, "same seed, same permutation");
    }

    #[test]
    fn random_partial_respects_density() {
        let p = random_partial(1000, 0.3, &mut rng());
        assert!(p.len() > 200 && p.len() < 400, "len = {}", p.len());
        let empty = random_partial(100, 0.0, &mut rng());
        assert!(empty.is_empty());
        let full = random_partial(100, 1.0, &mut rng());
        assert!(full.is_full());
    }

    #[test]
    fn derangement_has_no_fixed_points() {
        let p = random_derangement(16, &mut rng());
        assert!(p.pairs().iter().all(|x| !x.is_self()));
        assert!(p.is_full());
    }

    #[test]
    fn structured_generation_matrix() {
        // Power-of-two even count: everything generates.
        for pat in StructuredPattern::ALL {
            assert!(pat.generate(16).is_some(), "{pat:?} at 16 ports");
        }
        // Odd count: parity/pow2-restricted patterns are None.
        assert!(StructuredPattern::Neighbor.generate(9).is_none());
        assert!(StructuredPattern::BitReversal.generate(9).is_none());
        assert!(StructuredPattern::BitComplement.generate(9).is_none());
        assert!(StructuredPattern::Transpose.generate(9).is_some());
    }
}
