//! # ftclos-analysis — closed-form bounds, cost models, and scaling fits
//!
//! The paper's quantitative statements as checkable functions:
//!
//! * [`formulas`] — Lemma 2 bounds, the `m >= n²` deterministic nonblocking
//!   condition, Theorem 1's port cap, the `T(n) <= T(n - n^{1/(2(c+1))}) + 1`
//!   recurrence of Theorem 5 (solved numerically), and the adaptive
//!   `f(n) = O(n^{2 - 1/(2(c+1))})` top-switch budget.
//! * [`cost`] — switch/cable/port accounting for the construction families,
//!   and the `O(N^{3/2})`-ports-from-`O(N)`-switches scaling claims.
//! * [`fit`] — log-log least-squares exponent estimation, used to confirm
//!   measured adaptive top-switch consumption scales below `n²`
//!   (experiment E9).
//! * [`tables`] — plain-text table rendering for the experiment harnesses.

pub mod cost;
pub mod fit;
pub mod formulas;
pub mod tables;

pub use fit::PowerFit;
pub use tables::TextTable;
