//! Cost accounting and scaling claims (paper Discussion section).

use serde::{Deserialize, Serialize};

/// Cost summary of one construction at one size.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The `n` construction parameter.
    pub n: usize,
    /// Fabric port count.
    pub ports: usize,
    /// Switch count.
    pub switches: usize,
    /// Cable count (bidirectional links).
    pub cables: usize,
    /// Switch radix used.
    pub radix: usize,
}

impl CostModel {
    /// The two-level nonblocking `ftree(n+n², n+n²)` built from same-size
    /// switches: `N = n+n²` port switches, `2n²+n` of them, `n³+n²` ports.
    pub fn two_level_nonblocking(n: usize) -> CostModel {
        let n2 = n * n;
        let r = n + n2;
        CostModel {
            n,
            ports: r * n,
            switches: r + n2,
            cables: r * n + r * n2,
            radix: n + n2,
        }
    }

    /// The three-level recursive nonblocking network: `n⁴+n³` ports from
    /// `2n⁴+2n³+n²` switches of radix `n+n²`.
    pub fn three_level_nonblocking(n: usize) -> CostModel {
        let n2 = n * n;
        let r = n2 * n + n2;
        let inner_r = n2 + n;
        CostModel {
            n,
            ports: r * n,
            switches: r + n2 * (inner_r + n2),
            cables: r * n + r * n2 + n2 * inner_r * n2,
            radix: n + n2,
        }
    }

    /// The rearrangeable m-port 2-tree `FT(N, 2)` with `N = n+n²` (the
    /// Table I comparator at equal radix): `N²/2` ports, `3N/2` switches.
    /// `None` when `N` is odd.
    pub fn ft2_same_radix(n: usize) -> Option<CostModel> {
        let radix = n + n * n; // always even: n(n+1)
        let half = radix / 2;
        Some(CostModel {
            n,
            ports: 2 * half * half,
            switches: 3 * half,
            cables: 2 * half * half + 2 * half * half, // node cables + uplink cables
            radix,
        })
    }

    /// Switches per port.
    pub fn switches_per_port(&self) -> f64 {
        self.switches as f64 / self.ports as f64
    }
}

/// The Discussion-section scaling claim for two levels: with `N = n²+n`,
/// roughly `2N` `N`-port switches yield roughly `N^{3/2}` nonblocking
/// ports. Returns `(switches / N, ports / N^{3/2})` — both should approach
/// constants (2 and 1) as `n` grows.
pub fn two_level_scaling_ratios(n: usize) -> (f64, f64) {
    let m = CostModel::two_level_nonblocking(n);
    let big_n = (n + n * n) as f64;
    (m.switches as f64 / big_n, m.ports as f64 / big_n.powf(1.5))
}

/// The three-level claim: `O(N²)` `O(N)`-port switches yield `O(N²)` ports.
/// Returns `(switches / N², ports / N²)`.
pub fn three_level_scaling_ratios(n: usize) -> (f64, f64) {
    let m = CostModel::three_level_nonblocking(n);
    let big_n = (n + n * n) as f64;
    (
        m.switches as f64 / (big_n * big_n),
        m.ports as f64 / (big_n * big_n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_matches_paper_counts() {
        // n=4 -> 20-port switches, 36 switches, 80 ports (Table I).
        let m = CostModel::two_level_nonblocking(4);
        assert_eq!(m.radix, 20);
        assert_eq!(m.switches, 36);
        assert_eq!(m.ports, 80);
        // Cables: 80 leaf + 20*16 uplinks.
        assert_eq!(m.cables, 80 + 320);
    }

    #[test]
    fn three_level_counts() {
        let m = CostModel::three_level_nonblocking(2);
        assert_eq!(m.ports, 24);
        assert_eq!(m.switches, 52);
        assert_eq!(m.radix, 6);
    }

    #[test]
    fn ft2_counts() {
        let m = CostModel::ft2_same_radix(4).unwrap();
        assert_eq!(m.radix, 20);
        assert_eq!(m.ports, 200);
        assert_eq!(m.switches, 30);
    }

    #[test]
    fn scaling_ratios_converge() {
        let (s1, p1) = two_level_scaling_ratios(4);
        let (s2, p2) = two_level_scaling_ratios(20);
        // switches/N -> 2 from below; ports/N^{3/2} -> 1 from below.
        assert!(s1 < 2.0 && s2 < 2.0 && s2 > s1 - 0.05);
        assert!((0.5..=1.0).contains(&p1));
        assert!(p2 > p1, "ports ratio approaches 1");
        let (s3, p3) = three_level_scaling_ratios(10);
        assert!((1.0..3.0).contains(&s3));
        assert!((0.5..1.5).contains(&p3));
    }

    #[test]
    fn nonblocking_pays_more_per_port() {
        for n in 2..8usize {
            let nb = CostModel::two_level_nonblocking(n);
            let ft = CostModel::ft2_same_radix(n).unwrap();
            assert!(nb.switches_per_port() > ft.switches_per_port(), "n = {n}");
        }
    }
}
