//! Log-log least-squares power-law fitting.
//!
//! Used to estimate the empirical exponent of adaptive top-switch
//! consumption vs `n` (experiment E9): fit `y = a·x^b` by linear regression
//! on `(ln x, ln y)`.

use serde::{Deserialize, Serialize};

/// Result of a power-law fit `y ≈ a · x^b`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerFit {
    /// Multiplier `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// Coefficient of determination on the log-log points.
    pub r_squared: f64,
}

impl PowerFit {
    /// Fit over `(x, y)` samples; all values must be positive and at least
    /// two distinct `x` are required.
    pub fn fit(points: &[(f64, f64)]) -> Option<PowerFit> {
        if points.len() < 2 {
            return None;
        }
        if points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
            return None;
        }
        let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
        let nf = logs.len() as f64;
        let sx: f64 = logs.iter().map(|p| p.0).sum();
        let sy: f64 = logs.iter().map(|p| p.1).sum();
        let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
        let denom = nf * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None; // all x equal
        }
        let b = (nf * sxy - sx * sy) / denom;
        let intercept = (sy - b * sx) / nf;
        let mean_y = sy / nf;
        let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = logs
            .iter()
            .map(|p| (p.1 - (intercept + b * p.0)).powi(2))
            .sum();
        let r_squared = if ss_tot < 1e-12 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(PowerFit {
            a: intercept.exp(),
            b,
            r_squared,
        })
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.a * x.powf(self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..10)
            .map(|i| (i as f64, 3.0 * (i as f64).powf(1.7)))
            .collect();
        let fit = PowerFit::fit(&pts).unwrap();
        assert!((fit.b - 1.7).abs() < 1e-9);
        assert!((fit.a - 3.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
        assert!((fit.predict(4.0) - 3.0 * 4f64.powf(1.7)).abs() < 1e-9);
    }

    #[test]
    fn noisy_power_law() {
        let pts: Vec<(f64, f64)> = (2..20)
            .map(|i| {
                let x = i as f64;
                let noise = 1.0 + 0.05 * ((i % 3) as f64 - 1.0);
                (x, 2.0 * x.powf(2.0) * noise)
            })
            .collect();
        let fit = PowerFit::fit(&pts).unwrap();
        assert!((fit.b - 2.0).abs() < 0.1, "b = {}", fit.b);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(PowerFit::fit(&[]).is_none());
        assert!(PowerFit::fit(&[(1.0, 2.0)]).is_none());
        assert!(PowerFit::fit(&[(1.0, 2.0), (-1.0, 2.0)]).is_none());
        assert!(PowerFit::fit(&[(2.0, 3.0), (2.0, 4.0)]).is_none());
        assert!(PowerFit::fit(&[(1.0, 0.0), (2.0, 1.0)]).is_none());
    }

    #[test]
    fn constant_y_has_zero_exponent() {
        let pts: Vec<(f64, f64)> = (1..6).map(|i| (i as f64, 5.0)).collect();
        let fit = PowerFit::fit(&pts).unwrap();
        assert!(fit.b.abs() < 1e-9);
        assert_eq!(fit.r_squared, 1.0);
    }
}
