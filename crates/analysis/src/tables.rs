//! Plain-text table rendering for experiment harnesses.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment, a header separator, and trailing
    /// newline.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["n", "ports", "switches"]);
        t.row(["4", "80", "36"]);
        t.row(["5", "150", "55"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("ports"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with("36"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(["x"]);
        assert!(t.is_empty());
        assert!(t.render().contains('x'));
    }
}
