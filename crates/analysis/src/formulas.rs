//! The paper's bounds and conditions in closed form.

/// Lemma 2: maximum SD pairs routable through one top-level switch of
/// `ftree(n+m, r)`.
pub fn lemma2_max_pairs_per_top(n: usize, r: usize) -> usize {
    if r > 2 * n {
        r * (r - 1)
    } else {
        2 * n * r
    }
}

/// Total cross-switch SD pairs that must traverse top-level switches:
/// `r(r-1)n²` (paper Section IV.A).
pub fn cross_switch_pairs(n: usize, r: usize) -> usize {
    r * (r - 1) * n * n
}

/// Theorem 2: minimum `m` for `ftree(n+m, r)` to be nonblocking under any
/// single-path deterministic routing, in the `r >= 2n+1` regime.
pub fn min_m_deterministic(n: usize) -> usize {
    n * n
}

/// Theorem 1: in the `r <= 2n+1` regime a nonblocking fabric supports at
/// most `2(n+m)` ports.
pub fn theorem1_port_cap(n: usize, m: usize) -> usize {
    2 * (n + m)
}

/// The lower bound on `m` implied by Lemma 2 counting in the small-top
/// regime: `m >= (r-1)·n / 2` (from `r(r-1)n² / (2nr)`), rounded up.
pub fn min_m_small_regime(n: usize, r: usize) -> usize {
    ((r - 1) * n).div_ceil(2)
}

/// Smallest `c >= 1` with `r <= n^c` (the adaptive algorithm's digit
/// constant). `None` when `n < 2` and `r > 1`.
pub fn digit_constant(n: usize, r: usize) -> Option<usize> {
    if n == 0 || r == 0 || (n == 1 && r > 1) {
        return None;
    }
    let mut c = 1usize;
    let mut pow = n as u128;
    while pow < r as u128 {
        pow *= n as u128;
        c += 1;
    }
    Some(c)
}

/// The paper's coarse adaptive bound: at most `ceil(n / (c+2))`
/// configurations, i.e. `ceil(n/(c+2)) · (c+1) · n` top switches — already
/// `< n²` for every `c >= 1` (when `n > c+2`... the asymptotic claim).
pub fn adaptive_coarse_tops(n: usize, c: usize) -> usize {
    n.div_ceil(c + 2) * (c + 1) * n
}

/// Theorem 5's asymptotic exponent: the adaptive scheme needs
/// `O(n^{2 - 1/(2(c+1))})` top switches.
pub fn adaptive_exponent(c: usize) -> f64 {
    2.0 - 1.0 / (2.0 * (c as f64 + 1.0))
}

/// Numerically solve the Theorem 5 recurrence
/// `T(n) = T(n - ceil(n^{1/(2(c+1))})) + 1`, `T(0) = 0`: the number of
/// configurations when each round retires at least `n^{1/(2(c+1))}` of the
/// at-most-`n` remaining SD pairs per switch.
pub fn recurrence_configs(n: usize, c: usize) -> usize {
    let exp = 1.0 / (2.0 * (c as f64 + 1.0));
    let mut remaining = n as f64;
    let mut steps = 0usize;
    while remaining >= 1.0 {
        let retire = remaining.powf(exp).ceil().max(1.0);
        remaining -= retire;
        steps += 1;
    }
    steps
}

/// Clos (1953) strict-sense nonblocking condition (centralized control):
/// `m >= 2n - 1`.
pub fn clos_strict_m(n: usize) -> usize {
    2 * n - 1
}

/// Beneš (1962) rearrangeable condition (centralized control): `m >= n`.
pub fn benes_rearrangeable_m(n: usize) -> usize {
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_identities() {
        // Total pairs / per-top capacity == n² tops in the large regime.
        for (n, r) in [(2usize, 5usize), (3, 7), (4, 9), (5, 11)] {
            assert!(r > 2 * n);
            let total = cross_switch_pairs(n, r);
            let per_top = lemma2_max_pairs_per_top(n, r);
            assert_eq!(total.div_ceil(per_top), min_m_deterministic(n));
        }
    }

    #[test]
    fn small_regime_port_cap() {
        // With m = min_m_small_regime, ports r·n <= 2(n+m).
        for (n, r) in [(3usize, 4usize), (4, 6), (5, 11)] {
            assert!(r <= 2 * n + 1);
            let m = min_m_small_regime(n, r);
            assert!(r * n <= theorem1_port_cap(n, m), "n={n} r={r} m={m}");
        }
    }

    #[test]
    fn digit_constants() {
        assert_eq!(digit_constant(2, 4), Some(2));
        assert_eq!(digit_constant(2, 5), Some(3));
        assert_eq!(digit_constant(10, 10), Some(1));
        assert_eq!(digit_constant(1, 5), None);
        assert_eq!(digit_constant(1, 1), Some(1));
        assert_eq!(digit_constant(0, 3), None);
    }

    #[test]
    fn adaptive_beats_deterministic_asymptotically() {
        for c in 1..5usize {
            assert!(adaptive_exponent(c) < 2.0);
            assert!(adaptive_exponent(c) > 1.5);
        }
        // Coarse bound below n² for moderate n.
        for n in [8usize, 16, 32, 64] {
            for c in 1..4usize {
                assert!(
                    adaptive_coarse_tops(n, c) < n * n + (c + 1) * n,
                    "n={n} c={c}"
                );
            }
        }
    }

    #[test]
    fn recurrence_growth_is_sublinear_in_n() {
        // T(n) should scale like n^{1 - 1/(2(c+1))}: growing n by 16x grows
        // T(n) by well under 16x.
        let c = 2;
        let t1 = recurrence_configs(64, c);
        let t2 = recurrence_configs(1024, c);
        assert!(t1 > 0 && t2 > t1);
        assert!((t2 as f64) < 16.0 * t1 as f64);
        // And the asymptotic prediction holds within a loose factor.
        let predicted_ratio = (1024.0f64 / 64.0).powf(1.0 - 1.0 / (2.0 * (c as f64 + 1.0)));
        let measured_ratio = t2 as f64 / t1 as f64;
        assert!(
            (measured_ratio / predicted_ratio - 1.0).abs() < 0.5,
            "measured {measured_ratio}, predicted {predicted_ratio}"
        );
    }

    #[test]
    fn centralized_conditions() {
        assert_eq!(clos_strict_m(3), 5);
        assert_eq!(benes_rearrangeable_m(3), 3);
    }
}
