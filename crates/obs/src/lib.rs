//! # ftclos-obs — the observability spine of the ftclos workspace
//!
//! A lightweight, zero-dependency instrumentation layer: hierarchical span
//! timers, atomic counters / gauges / log-bucketed histograms, and an
//! epoch-snapshot registry that serializes to the same hand-rolled JSON
//! style the flowsim reports use. Every hot path in the workspace —
//! `core::engine`, `flowsim::waterfill`, `sim::engine`, `routing::arena` —
//! threads a [`Recorder`] through its work; the default [`Noop`] recorder
//! monomorphizes to nothing, so un-traced runs pay zero cost (the E20/E21
//! benchmarks in `coreperf` pin the no-op delta under 2%).
//!
//! ## The three layers
//!
//! * [`Recorder`] — the trait hot paths are generic over. [`Noop`]
//!   implements it with empty inlined bodies; [`Registry`] implements it
//!   for real.
//! * [`Registry`] — the concrete sink: named atomic [`Counter`]s,
//!   [`Gauge`]s and [`Histogram`]s (registered once, bumped lock-free), a
//!   mutex-guarded span tree for coarse phase timers, and an epoch log
//!   capturing cumulative counter/gauge values at caller-chosen boundaries
//!   (the simulator marks one epoch per churn transition).
//! * [`Snapshot`] — a frozen, deterministic view of a registry:
//!   [`Snapshot::to_json`] emits the trace JSON `ftclos --trace` writes
//!   (stable field order — everything is sorted by name), and
//!   [`Snapshot::to_folded`] emits flamegraph-ready folded stacks
//!   (`root;child self_ns`).
//!
//! ## Reading traces back
//!
//! [`json`] is a minimal parser for the JSON this workspace emits (there is
//! no serde_json in-tree); `ftclos stats` and the snapshot tests use it to
//! summarize and normalize traces.
//!
//! ```
//! use ftclos_obs::{Recorder, Registry};
//!
//! let reg = Registry::new();
//! {
//!     let _outer = reg.span("solve");
//!     let _inner = reg.span("bottleneck_scan");
//!     reg.add("rounds", 1);
//!     reg.observe("frozen_flows", 12);
//! }
//! reg.mark_epoch("steady");
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("rounds"), Some(1));
//! assert!(snap.to_json("demo", "").contains("\"solve;bottleneck_scan\""));
//! ```

pub mod json;
pub mod recorder;
pub mod registry;

pub use recorder::{Noop, Recorder, SpanGuard};
pub use registry::{
    Counter, EpochSnapshot, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, SpanSnapshot,
};
