//! [`Registry`] — the concrete instrumentation sink, and [`Snapshot`], its
//! frozen deterministic view.
//!
//! Counters, gauges, and histograms are registered once per name (a short
//! mutex-guarded `BTreeMap` lookup) and then bumped lock-free through
//! atomics, so a hot loop can resolve its handles up front and pay one
//! `fetch_add` per event. The span tree and the epoch log are coarse
//! (per-phase, per-transition) and live behind plain mutexes.
//!
//! Everything a snapshot emits is sorted by name (metrics) or creation
//! order (spans, epochs), both of which are deterministic for seeded runs —
//! the property the golden-file snapshot tests pin.

use crate::recorder::{Recorder, SpanGuard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Log-2 bucket count: bucket 0 holds zeros, bucket `i >= 1` holds values
/// `v` with `floor(log2(v)) == i - 1`, i.e. `[2^(i-1), 2^i)`. 64 value
/// buckets cover the whole `u64` range.
const NUM_BUCKETS: usize = 65;

/// A named monotonic counter (cloneable handle onto shared atomic state).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge: an absolute value, last write wins.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A named log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: [(); NUM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Bucket index of a sample: 0 for 0, else `1 + floor(log2(v))`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        let h = &*self.0;
        h.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                h.min.load(Ordering::Relaxed)
            },
            max: h.max.load(Ordering::Relaxed),
            buckets: (0..NUM_BUCKETS)
                .filter_map(|i| {
                    let c = h.buckets[i].load(Ordering::Relaxed);
                    if c == 0 {
                        None
                    } else {
                        // Lower bound of the bucket's value range.
                        let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                        Some((lo, c))
                    }
                })
                .collect(),
        }
    }
}

/// Frozen histogram state: nonempty buckets as `(lower_bound, count)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `(bucket lower bound, samples)` for nonempty buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// One node of the span tree.
#[derive(Clone, Debug)]
struct SpanNode {
    name: &'static str,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
}

/// The span tree plus the open-span stack.
#[derive(Debug, Default)]
struct SpanTree {
    nodes: Vec<SpanNode>,
    /// Roots in creation order.
    roots: Vec<usize>,
    /// Currently open spans (indices into `nodes`), innermost last.
    stack: Vec<usize>,
}

impl SpanTree {
    /// Find-or-create `name` as a child of the innermost open span.
    fn open(&mut self, name: &'static str) -> usize {
        let siblings = match self.stack.last() {
            Some(&p) => &self.nodes[p].children,
            None => &self.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name);
        let id = match found {
            Some(id) => id,
            None => {
                let parent = self.stack.last().copied();
                let id = self.nodes.len();
                self.nodes.push(SpanNode {
                    name,
                    children: Vec::new(),
                    count: 0,
                    total_ns: 0,
                });
                match parent {
                    None => self.roots.push(id),
                    Some(p) => self.nodes[p].children.push(id),
                }
                id
            }
        };
        self.stack.push(id);
        id
    }

    /// Record `dur` on `node` and pop it from the open stack. Tolerates
    /// out-of-order drops by popping through to the node (misuse leaves the
    /// skipped spans unclosed rather than corrupting the tree).
    fn close(&mut self, node: usize, dur: Duration) {
        let n = &mut self.nodes[node];
        n.count += 1;
        n.total_ns += dur.as_nanos().min(u128::from(u64::MAX)) as u64;
        while let Some(top) = self.stack.pop() {
            if top == node {
                break;
            }
        }
    }
}

#[derive(Debug, Default)]
struct Metrics {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    hists: BTreeMap<&'static str, Histogram>,
}

/// Cumulative counter and gauge values captured at one epoch boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochSnapshot {
    /// Caller-chosen label (e.g. the transition cycle).
    pub label: String,
    /// Cumulative counter values at the mark, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at the mark, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl EpochSnapshot {
    /// Cumulative value of a counter at this epoch (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of a gauge at this epoch (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// The concrete recorder: atomic metrics, a span tree, and an epoch log.
#[derive(Debug)]
pub struct Registry {
    metrics: Mutex<Metrics>,
    spans: Mutex<SpanTree>,
    epochs: Mutex<Vec<EpochSnapshot>>,
    t0: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, empty registry; wall time is measured from here.
    pub fn new() -> Self {
        Registry {
            metrics: Mutex::new(Metrics::default()),
            spans: Mutex::new(SpanTree::default()),
            epochs: Mutex::new(Vec::new()),
            t0: Instant::now(),
        }
    }

    /// Resolve (registering on first use) the named counter handle. Hot
    /// loops should resolve once and call [`Counter::add`] directly.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.metrics
            .lock()
            .expect("obs registry poisoned")
            .counters
            .entry(name)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Resolve (registering on first use) the named gauge handle.
    pub fn gauge_handle(&self, name: &'static str) -> Gauge {
        self.metrics
            .lock()
            .expect("obs registry poisoned")
            .gauges
            .entry(name)
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Resolve (registering on first use) the named histogram handle.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.metrics
            .lock()
            .expect("obs registry poisoned")
            .hists
            .entry(name)
            .or_insert_with(Histogram::new)
            .clone()
    }

    pub(crate) fn close_span(&self, node: usize, dur: Duration) {
        self.spans
            .lock()
            .expect("obs span tree poisoned")
            .close(node, dur);
    }

    /// Freeze the current state into a deterministic snapshot.
    pub fn snapshot(&self) -> Snapshot {
        // Read the clock before assembling the snapshot: its own string
        // building must not count as unattributed wall time.
        let wall_ns = self.t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let m = self.metrics.lock().expect("obs registry poisoned");
        let counters: Vec<(String, u64)> = m
            .counters
            .iter()
            .map(|(&n, c)| (n.to_string(), c.get()))
            .collect();
        let gauges: Vec<(String, u64)> = m
            .gauges
            .iter()
            .map(|(&n, g)| (n.to_string(), g.get()))
            .collect();
        let histograms: Vec<(String, HistogramSnapshot)> = m
            .hists
            .iter()
            .map(|(&n, h)| (n.to_string(), h.snapshot()))
            .collect();
        drop(m);
        let tree = self.spans.lock().expect("obs span tree poisoned");
        let mut spans = Vec::with_capacity(tree.nodes.len());
        // Depth-first preorder over roots: parents precede children, sibling
        // order is creation order (deterministic for sequential phases).
        let mut todo: Vec<(usize, String)> = tree
            .roots
            .iter()
            .rev()
            .map(|&r| (r, String::new()))
            .collect();
        while let Some((id, prefix)) = todo.pop() {
            let n = &tree.nodes[id];
            let path = if prefix.is_empty() {
                n.name.to_string()
            } else {
                format!("{prefix};{}", n.name)
            };
            let child_ns: u64 = n.children.iter().map(|&c| tree.nodes[c].total_ns).sum();
            spans.push(SpanSnapshot {
                path: path.clone(),
                name: n.name.to_string(),
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.total_ns.saturating_sub(child_ns),
            });
            for &c in n.children.iter().rev() {
                todo.push((c, path.clone()));
            }
        }
        drop(tree);
        Snapshot {
            wall_ns,
            counters,
            gauges,
            histograms,
            spans,
            epochs: self.epochs.lock().expect("obs epoch log poisoned").clone(),
        }
    }
}

impl Recorder for Registry {
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.counter(name).add(delta);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.gauge_handle(name).set(value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.histogram(name).observe(value);
    }

    fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let node = self
            .spans
            .lock()
            .expect("obs span tree poisoned")
            .open(name);
        SpanGuard {
            reg: Some(self),
            start: Some(Instant::now()),
            node,
        }
    }

    fn mark_epoch(&self, label: &str) {
        let m = self.metrics.lock().expect("obs registry poisoned");
        let snap = EpochSnapshot {
            label: label.to_string(),
            counters: m
                .counters
                .iter()
                .map(|(&n, c)| (n.to_string(), c.get()))
                .collect(),
            gauges: m
                .gauges
                .iter()
                .map(|(&n, g)| (n.to_string(), g.get()))
                .collect(),
        };
        drop(m);
        self.epochs
            .lock()
            .expect("obs epoch log poisoned")
            .push(snap);
    }
}

/// One span of a [`Snapshot`]: a node of the trace tree with its full
/// `;`-joined path from the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `root;child;…;name`.
    pub path: String,
    /// Leaf name.
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Inclusive nanoseconds (children included).
    pub total_ns: u64,
    /// Exclusive nanoseconds (children subtracted) — the folded-stack value.
    pub self_ns: u64,
}

/// A frozen, deterministic view of a [`Registry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Nanoseconds since the registry was created.
    pub wall_ns: u64,
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, histogram)` sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span tree in depth-first preorder.
    pub spans: Vec<SpanSnapshot>,
    /// Epoch log in mark order.
    pub epochs: Vec<EpochSnapshot>,
}

/// Escape a string as a JSON string literal (same dialect as the flowsim
/// reports).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64_map(pairs: &[(String, u64)]) -> String {
    let inner: Vec<String> = pairs
        .iter()
        .map(|(n, v)| format!("{}:{v}", json_string(n)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

impl Snapshot {
    /// Value of a counter (None when never registered).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge (None when never registered).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Fraction of a root span's inclusive time covered by its children
    /// (1.0 for a leaf-free root with perfectly nested children). This is
    /// the "spans cover >= X% of wall time" metric E21 reports.
    pub fn child_coverage(&self, root_path: &str) -> Option<f64> {
        let root = self.spans.iter().find(|s| s.path == root_path)?;
        if root.total_ns == 0 {
            return Some(1.0);
        }
        Some((root.total_ns - root.self_ns) as f64 / root.total_ns as f64)
    }

    /// The trace JSON `ftclos --trace` writes: stable field order, sorted
    /// metric names, spans in tree preorder. `command` and `args` land in
    /// the `meta` object.
    pub fn to_json(&self, command: &str, args: &str) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"trace_version\": 1,\n");
        out.push_str(&format!(
            "  \"meta\": {{\"command\":{},\"args\":{}}},\n",
            json_string(command),
            json_string(args)
        ));
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "    {{\"path\":{},\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                    json_string(&s.path),
                    s.count,
                    s.total_ns,
                    s.self_ns
                )
            })
            .collect();
        out.push_str(&format!("  \"spans\": [\n{}\n  ],\n", spans.join(",\n")));
        out.push_str(&format!(
            "  \"counters\": {},\n",
            json_u64_map(&self.counters)
        ));
        out.push_str(&format!("  \"gauges\": {},\n", json_u64_map(&self.gauges)));
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|(lo, c)| format!("[{lo},{c}]"))
                    .collect();
                format!(
                    "    {}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                    json_string(n),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    buckets.join(",")
                )
            })
            .collect();
        if hists.is_empty() {
            out.push_str("  \"histograms\": {},\n");
        } else {
            out.push_str(&format!(
                "  \"histograms\": {{\n{}\n  }},\n",
                hists.join(",\n")
            ));
        }
        let epochs: Vec<String> = self
            .epochs
            .iter()
            .map(|e| {
                format!(
                    "    {{\"label\":{},\"counters\":{},\"gauges\":{}}}",
                    json_string(&e.label),
                    json_u64_map(&e.counters),
                    json_u64_map(&e.gauges)
                )
            })
            .collect();
        if epochs.is_empty() {
            out.push_str("  \"epochs\": []\n");
        } else {
            out.push_str(&format!("  \"epochs\": [\n{}\n  ]\n", epochs.join(",\n")));
        }
        out.push_str("}\n");
        out
    }

    /// Folded-stack lines (`root;child self_ns`), flamegraph-ready: feed to
    /// `inferno-flamegraph` / `flamegraph.pl` directly. Zero-self spans are
    /// skipped (pure containers).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            if s.self_ns > 0 {
                out.push_str(&format!("{} {}\n", s.path, s.self_ns));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        c.add(3);
        reg.add("hits", 2);
        reg.gauge("depth", 7);
        reg.observe("lat", 0);
        reg.observe("lat", 1);
        reg.observe("lat", 1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), Some(5));
        assert_eq!(snap.gauge("depth"), Some(7));
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1001);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0 -> bucket 0 (lo 0); 1 -> bucket 1 (lo 1); 1000 -> lo 512.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (512, 1)]);
    }

    #[test]
    fn log_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let reg = Registry::new();
        for _ in 0..3 {
            let _a = reg.span("outer");
            let _b = reg.span("inner");
            std::hint::black_box(0u64);
        }
        let snap = reg.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer;inner"]);
        assert_eq!(snap.spans[0].count, 3);
        assert_eq!(snap.spans[1].count, 3);
        assert!(snap.spans[0].total_ns >= snap.spans[1].total_ns);
        assert_eq!(
            snap.spans[0].self_ns,
            snap.spans[0].total_ns - snap.spans[1].total_ns
        );
        let cov = snap.child_coverage("outer").unwrap();
        assert!((0.0..=1.0).contains(&cov));
    }

    #[test]
    fn epochs_capture_cumulative_values() {
        let reg = Registry::new();
        reg.add("injected", 10);
        reg.gauge("in_flight", 4);
        reg.mark_epoch("t=100");
        reg.add("injected", 5);
        reg.gauge("in_flight", 2);
        reg.mark_epoch("t=200");
        let snap = reg.snapshot();
        assert_eq!(snap.epochs.len(), 2);
        assert_eq!(snap.epochs[0].counter("injected"), 10);
        assert_eq!(snap.epochs[0].gauge("in_flight"), 4);
        assert_eq!(snap.epochs[1].counter("injected"), 15);
        assert_eq!(snap.epochs[1].gauge("in_flight"), 2);
    }

    #[test]
    fn json_is_stable_and_complete() {
        let reg = Registry::new();
        {
            let _s = reg.span("root");
            let _c = reg.span("child");
        }
        reg.add("b_counter", 2);
        reg.add("a_counter", 1);
        reg.observe("h", 5);
        reg.mark_epoch("end");
        let json = reg.snapshot().to_json("test", "--x 1");
        assert!(json.contains("\"trace_version\": 1"));
        assert!(json.contains("\"command\":\"test\""));
        assert!(json.contains("\"root;child\""));
        // BTreeMap ordering: a_counter before b_counter.
        let a = json.find("a_counter").unwrap();
        let b = json.find("b_counter").unwrap();
        assert!(a < b);
        assert!(json.contains("\"epochs\": ["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn folded_output_shape() {
        let reg = Registry::new();
        {
            let _a = reg.span("a");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _b = reg.span("b");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let folded = reg.snapshot().to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.iter().any(|l| l.starts_with("a ")));
        assert!(lines.iter().any(|l| l.starts_with("a;b ")));
        for l in &lines {
            let (_, ns) = l.rsplit_once(' ').unwrap();
            assert!(ns.parse::<u64>().unwrap() > 0);
        }
    }

    #[test]
    fn snapshot_counter_access_and_missing_names() {
        let reg = Registry::new();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("nope"), None);
        assert!(snap.child_coverage("nope").is_none());
        assert!(snap.epochs.is_empty());
    }
}
