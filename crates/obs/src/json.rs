//! A minimal JSON reader/writer for the dialect this workspace emits.
//!
//! There is intentionally no serde_json in-tree (the vendored `serde` is a
//! marker shim), so tooling that needs to read JSON back — `ftclos stats`
//! summarizing a trace, snapshot tests normalizing volatile timing fields —
//! parses with this module. It handles exactly what our writers produce:
//! objects, arrays, strings with the common escapes, finite numbers, bools,
//! and null. Object key order is preserved on parse and re-emit, so a
//! parse→write round trip of an already-normalized document is stable.

use std::fmt;

/// A parsed JSON value. Object entries keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64 — the workspace never emits ints that
    /// lose precision in f64 except raw nanosecond fields, which tooling
    /// scrubs before comparing anyway).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, entries in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document. Returns a message with byte offset on error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact canonical re-emission (no whitespace, preserved key order).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Recursively zero every numeric field whose key ends in `suffix`
    /// (e.g. `_ns`). Snapshot tests scrub timing fields this way before
    /// comparing a trace against its golden file: the *shape* (keys, span
    /// paths, counts, counters) is pinned; wall-clock values are not.
    pub fn scrub_keys_ending(&mut self, suffix: &str) {
        match self {
            Json::Obj(entries) => {
                for (k, v) in entries.iter_mut() {
                    if k.ends_with(suffix) && matches!(v, Json::Num(_)) {
                        *v = Json::Num(0.0);
                    } else {
                        v.scrub_keys_ending(suffix);
                    }
                }
            }
            Json::Arr(items) => {
                for v in items.iter_mut() {
                    v.scrub_keys_ending(suffix);
                }
            }
            _ => {}
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogate pairs never appear in our writers;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_workspace_dialect() {
        let doc = r#"{
  "trace_version": 1,
  "meta": {"command":"verify","args":"--hosts 4"},
  "spans": [
    {"path":"cmd.verify;engine.build","count":1,"total_ns":12345}
  ],
  "ok": true,
  "missing": null,
  "ratio": -0.5
}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("trace_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("meta")
                .and_then(|m| m.get("command"))
                .and_then(Json::as_str),
            Some("verify")
        );
        let spans = v.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(
            spans[0].get("path").and_then(Json::as_str),
            Some("cmd.verify;engine.build")
        );
        assert_eq!(spans[0].get("total_ns").and_then(Json::as_u64), Some(12345));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), Some(&Json::Null));
        assert_eq!(v.get("ratio").and_then(Json::as_f64), Some(-0.5));
    }

    #[test]
    fn roundtrip_is_stable() {
        let doc = r#"{"b":1,"a":[2,3,{"x":"y \"quoted\"\n"}],"n":null}"#;
        let v = Json::parse(doc).unwrap();
        let emitted = v.write();
        let v2 = Json::parse(&emitted).unwrap();
        assert_eq!(v, v2);
        assert_eq!(emitted, v2.write());
        // Key order preserved, not sorted.
        assert!(emitted.find("\"b\"").unwrap() < emitted.find("\"a\"").unwrap());
    }

    #[test]
    fn scrub_zeroes_timing_keys_recursively() {
        let doc = r#"{"wall_ns":987,"spans":[{"path":"a","total_ns":55,"self_ns":44,"count":3}],"counters":{"x_ns_like":1}}"#;
        let mut v = Json::parse(doc).unwrap();
        v.scrub_keys_ending("_ns");
        assert_eq!(v.get("wall_ns").and_then(Json::as_u64), Some(0));
        let span = &v.get("spans").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(span.get("total_ns").and_then(Json::as_u64), Some(0));
        assert_eq!(span.get("self_ns").and_then(Json::as_u64), Some(0));
        assert_eq!(span.get("count").and_then(Json::as_u64), Some(3));
        // Key merely *containing* _ns is untouched.
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("x_ns_like"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_reemit_without_decimal_point() {
        let v = Json::parse("{\"n\":12345678,\"f\":1.5}").unwrap();
        let out = v.write();
        assert!(out.contains("\"n\":12345678"));
        assert!(out.contains("\"f\":1.5"));
    }
}
