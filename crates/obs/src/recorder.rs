//! The [`Recorder`] trait and its free no-op implementation.
//!
//! Hot paths take `rec: &R` with `R: Recorder` and call the trait methods
//! unconditionally. With [`Noop`] — the default every un-traced entry point
//! passes — all bodies are empty `#[inline(always)]` functions, so the
//! monomorphized code is byte-for-byte the uninstrumented loop: no branch,
//! no atomic, no clock read. With a [`crate::Registry`] the same call sites
//! feed real counters and span timers.

use crate::registry::Registry;
use std::time::Instant;

/// The instrumentation sink hot paths are generic over.
///
/// Names are `&'static str` by design: metric identity is a code-level
/// constant, and the registry can key storage without allocating on the
/// recording path.
pub trait Recorder: Sync {
    /// True when this recorder actually stores anything. Lets a caller skip
    /// *preparing* expensive inputs (e.g. formatting) — the record calls
    /// themselves never need guarding.
    fn is_enabled(&self) -> bool;

    /// Add `delta` to the named monotonic counter.
    fn add(&self, name: &'static str, delta: u64);

    /// Set the named gauge to an absolute value (last write wins).
    fn gauge(&self, name: &'static str, value: u64);

    /// Record one sample into the named log-bucketed histogram.
    fn observe(&self, name: &'static str, value: u64);

    /// Open a timed span; it closes (and records) when the guard drops.
    /// Spans nest lexically: a span opened while another is open becomes
    /// its child in the trace tree. Guards must drop in LIFO order (bind
    /// them to locals), and spans are single-threaded — open them in
    /// orchestration code, not inside parallel loops.
    fn span(&self, name: &'static str) -> SpanGuard<'_>;

    /// Close the current epoch: snapshot cumulative counter and gauge
    /// values under `label`. The simulator calls this once per churn
    /// transition so per-epoch conservation is auditable after the run.
    fn mark_epoch(&self, label: &str);
}

/// The recorder that records nothing, at zero cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct Noop;

impl Recorder for Noop {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn add(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn observe(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn span(&self, _name: &'static str) -> SpanGuard<'_> {
        SpanGuard::noop()
    }

    #[inline(always)]
    fn mark_epoch(&self, _label: &str) {}
}

/// RAII guard for an open span: records the elapsed time into its registry
/// when dropped. The no-op form holds nothing and never reads the clock.
pub struct SpanGuard<'a> {
    /// `None` for the no-op guard.
    pub(crate) reg: Option<&'a Registry>,
    /// Start instant (set only when `reg` is).
    pub(crate) start: Option<Instant>,
    /// Node id in the registry's span tree.
    pub(crate) node: usize,
}

impl SpanGuard<'_> {
    /// The guard that does nothing on drop.
    #[inline(always)]
    pub fn noop() -> Self {
        SpanGuard {
            reg: None,
            start: None,
            node: 0,
        }
    }
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let (Some(reg), Some(start)) = (self.reg, self.start) {
            reg.close_span(self.node, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_inert() {
        let n = Noop;
        assert!(!n.is_enabled());
        n.add("x", 5);
        n.gauge("g", 7);
        n.observe("h", 9);
        n.mark_epoch("e");
        let g = n.span("s");
        assert!(g.reg.is_none() && g.start.is_none());
        drop(g); // must not panic or record
    }

    #[test]
    fn noop_spans_nest_without_state() {
        let n = Noop;
        let _a = n.span("a");
        let _b = n.span("b");
        // Dropping in any order is harmless for the no-op guard.
    }
}
