//! # ftclos-bench — experiment harnesses
//!
//! One binary per experiment (see `DESIGN.md` for the experiment index) plus
//! a `repro` driver that runs everything. Criterion benches measure the
//! systems costs: routing computation time, verification time, and
//! simulator speed.
//!
//! Binaries:
//!
//! | binary | experiments |
//! |---|---|
//! | `table1` | E1 — Table I regeneration |
//! | `figures` | E2, E3 — Fig. 1 / Fig. 2 as DOT artifacts and structure checks |
//! | `thm3` | E4 — Theorem 3 / Fig. 3 verification sweeps |
//! | `lemma2` | E5 — Lemma 2 exact max vs bound |
//! | `thm2` | E6 — Theorem 2 tightness (blocking witnesses when `m < n²`) |
//! | `multipath` | E7 — Section IV.B oblivious multipath |
//! | `adaptive` | E8, E9, E13 — NONBLOCKINGADAPTIVE verification and scaling |
//! | `recursive` | E10 — three-level recursion |
//! | `throughput` | E11 — packet-level throughput vs crossbar |
//! | `blocking` | E12 — blocking probability vs `m` |
//! | `cost` | E14 — cost scaling ratios |
//! | `faults` | E17 — degraded operation under injected failures |
//! | `churn` | E18 — transient-fault churn, re-planning, availability |
//! | `flowsim` | E19 — fluid max-min fair delivered throughput vs `m`, differential vs Lemma 1, 10k-host scale guard |
//! | `coreperf` | E20–E24 — contention engine vs legacy sweeps, recording overhead, 10k-port deadlock/fault campaigns, event-driven simulator at 10k/100k hosts; emits `BENCH_core.json` |
//! | `repro` | all of the above, in order |

use std::io::Write as _;

/// Print an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

/// Print a `key: value` result line in a stable, grep-friendly format.
pub fn result_line(key: &str, value: impl std::fmt::Display) {
    println!("  {key} = {value}");
}

/// Print a PASS/FAIL verdict line; returns `ok` so callers can aggregate.
pub fn verdict(ok: bool, claim: &str) -> bool {
    println!("  [{}] {claim}", if ok { "PASS" } else { "FAIL" });
    let _ = std::io::stdout().flush();
    ok
}

/// Standard seeds used across harnesses so every binary is reproducible.
pub const SEED: u64 = 0x5EED_F01D;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_passthrough() {
        assert!(verdict(true, "claim"));
        assert!(!verdict(false, "claim"));
    }
}
