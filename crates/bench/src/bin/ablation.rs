//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! * **A1** — Fig. 4 line (7): greedy largest-subset partition selection vs
//!   first-fit. How many top switches does the greedy search actually save?
//! * **A2** — queue-adaptive tie-breaking: random vs deterministic
//!   lowest-index. Deterministic ties herd every switch onto the same tops
//!   and collapse throughput.
//! * **A3** — oblivious spreading discipline: per-packet random vs
//!   round-robin. Round-robin de-synchronizes flows slightly better at
//!   saturation.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_routing::{NonblockingAdaptive, ObliviousMultipath, PlanStrategy, SpreadPolicy};
use ftclos_sim::{Policy, SimConfig, Simulator, Workload};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use rand::SeedableRng;

fn main() {
    let mut all_ok = true;

    banner(
        "A1",
        "Fig. 4 line (7): greedy largest-subset vs first-fit partitions",
    );
    let mut table = TextTable::new([
        "n",
        "r",
        "greedy tops (worst)",
        "first-fit tops (worst)",
        "saving",
    ]);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    for (n, r) in [(4usize, 16usize), (6, 36), (8, 64)] {
        let ft = Ftree::new(n, 1, r).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let ports = (n * r) as u32;
        let (mut worst_g, mut worst_f) = (0usize, 0usize);
        for _ in 0..30 {
            let perm = patterns::random_full(ports, &mut rng);
            worst_g = worst_g.max(
                router
                    .plan_with(&perm, PlanStrategy::GreedyLargestSubset)
                    .unwrap()
                    .tops_needed(),
            );
            worst_f = worst_f.max(
                router
                    .plan_with(&perm, PlanStrategy::FirstFit)
                    .unwrap()
                    .tops_needed(),
            );
        }
        table.row([
            n.to_string(),
            r.to_string(),
            worst_g.to_string(),
            worst_f.to_string(),
            format!("{:.0}%", 100.0 * (1.0 - worst_g as f64 / worst_f as f64)),
        ]);
        all_ok &= verdict(
            worst_g <= worst_f,
            &format!("n={n}: greedy never needs more tops than first-fit"),
        );
    }
    print!("{}", table.render());

    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_500,
        ..SimConfig::default()
    };

    banner(
        "A2",
        "queue-adaptive tie-breaking: random vs deterministic lowest-index",
    );
    let ft = Ftree::new(6, 6, 12).unwrap(); // FT(12,2)-shaped fabric
    let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + 2);
    let perm = patterns::random_derangement(72, &mut rng);
    let w = Workload::permutation(&perm, 1.0);
    let thr_random = Simulator::new(ft.topology(), cfg, Policy::queue_adaptive(&mp))
        .run(&w, SEED)
        .accepted_throughput();
    let thr_first = Simulator::new(
        ft.topology(),
        cfg,
        Policy::queue_adaptive_deterministic_ties(&mp),
    )
    .run(&w, SEED)
    .accepted_throughput();
    result_line("random tie-break throughput", format!("{thr_random:.3}"));
    result_line(
        "lowest-index tie-break throughput",
        format!("{thr_first:.3}"),
    );
    all_ok &= verdict(
        thr_random > thr_first + 0.1,
        "random tie-breaking avoids the herding collapse",
    );

    banner(
        "A3",
        "oblivious spreading: per-packet random vs round-robin",
    );
    let thr_rand_spread = Simulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, true))
        .run(&w, SEED)
        .accepted_throughput();
    let thr_rr_spread = Simulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, false))
        .run(&w, SEED)
        .accepted_throughput();
    result_line(
        "random spreading throughput",
        format!("{thr_rand_spread:.3}"),
    );
    result_line(
        "round-robin spreading throughput",
        format!("{thr_rr_spread:.3}"),
    );
    all_ok &= verdict(
        (thr_rand_spread - thr_rr_spread).abs() < 0.15,
        "spreading discipline is a second-order effect (both remain below crossbar)",
    );
    all_ok &= verdict(
        thr_rand_spread < 0.97 && thr_rr_spread < 0.97,
        "no oblivious spread reaches nonblocking behaviour (Section IV.B)",
    );

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
