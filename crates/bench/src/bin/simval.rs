//! V1 — simulator validation against classic input-queued switch results.
//!
//! Before trusting the E11 throughput numbers, validate the packet engine
//! against independently-known behaviour:
//! * FIFO input queues on a crossbar under saturated uniform traffic cap
//!   near Karol/Hluchyj/Morgan's 58.6% (finite buffers with injection
//!   backpressure land slightly above).
//! * VOQ + iSLIP arbitration removes head-of-line blocking and approaches
//!   line rate (McKeown), improving with iterations and buffer depth.
//! * Permutation traffic (one flow per input) shows no HOL effect at all.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_routing::{Path, SinglePathRouter};
use ftclos_sim::{Arbiter, Policy, SimConfig, Simulator, Workload};
use ftclos_topo::{crossbar, Crossbar};
use ftclos_traffic::{patterns, SdPair};

struct XbRouter<'a>(&'a Crossbar);

impl SinglePathRouter for XbRouter<'_> {
    fn ports(&self) -> u32 {
        self.0.ports() as u32
    }
    fn route(&self, pair: SdPair) -> Path {
        if pair.src == pair.dst {
            return Path::empty();
        }
        Path::new(vec![
            self.0.up_channel(pair.src as usize),
            self.0.down_channel(pair.dst as usize),
        ])
    }
    fn name(&self) -> &'static str {
        "crossbar"
    }
}

fn main() {
    let mut all_ok = true;

    banner(
        "V1",
        "input-queued crossbar, saturated uniform traffic (16 ports)",
    );
    let xb = crossbar(16).unwrap();
    let router = XbRouter(&xb);
    let uni = Workload::uniform_random(16, 1.0);
    let mut table = TextTable::new(["arbiter", "buffer", "throughput"]);
    let mut results = std::collections::HashMap::new();
    for cap in [16usize, 64] {
        for (label, arbiter) in [
            ("HOL FIFO", Arbiter::HolFifo),
            ("iSLIP-1", Arbiter::Voq { iterations: 1 }),
            ("iSLIP-3", Arbiter::Voq { iterations: 3 }),
        ] {
            let cfg = SimConfig {
                warmup_cycles: 500,
                measure_cycles: 3_000,
                queue_capacity: cap,
                arbiter,
                ..SimConfig::default()
            };
            let thr = Simulator::new(xb.topology(), cfg, Policy::from_single_path(&router))
                .run(&uni, SEED)
                .accepted_throughput();
            table.row([label.to_string(), cap.to_string(), format!("{thr:.3}")]);
            results.insert((label, cap), thr);
        }
    }
    print!("{}", table.render());

    let hol = results[&("HOL FIFO", 64usize)];
    all_ok &= verdict(
        (0.5..0.78).contains(&hol),
        &format!("HOL FIFO saturates near the classic 58.6% limit (measured {hol:.3})"),
    );
    all_ok &= verdict(
        results[&("HOL FIFO", 16usize)] - hol < 0.02,
        "HOL limit is buffer-independent (it is a structural effect)",
    );
    all_ok &= verdict(
        results[&("iSLIP-1", 64usize)] > hol + 0.1,
        "iSLIP-1 clearly beats HOL FIFO",
    );
    all_ok &= verdict(
        results[&("iSLIP-3", 64usize)] > 0.93,
        "iSLIP-3 approaches line rate",
    );

    banner("V1b", "permutation traffic has no HOL component");
    let perm = patterns::shift(16, 5);
    let w = Workload::permutation(&perm, 1.0);
    for (label, arbiter) in [
        ("HOL FIFO", Arbiter::HolFifo),
        ("iSLIP-1", Arbiter::Voq { iterations: 1 }),
    ] {
        let cfg = SimConfig {
            warmup_cycles: 300,
            measure_cycles: 1_500,
            arbiter,
            ..SimConfig::default()
        };
        let thr = Simulator::new(xb.topology(), cfg, Policy::from_single_path(&router))
            .run(&w, SEED)
            .accepted_throughput();
        result_line(label, format!("{thr:.3}"));
        all_ok &= verdict(thr > 0.97, &format!("{label}: line rate on a permutation"));
    }

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
