//! E12 — blocking probability vs `m`: the curve that the nonblocking
//! condition drives to zero.
//!
//! For `ftree(n+m, r)` with `n = 3, r = 7`, sweep `m` from 1 to `n² = 9`
//! and estimate the fraction of random full permutations that contend under
//! (a) d-mod-k deterministic, (b) greedy local adaptive, and
//! (c) NONBLOCKINGADAPTIVE. Deterministic routing needs `m = n²` to reach
//! zero; the adaptive algorithm reaches zero as soon as its plan fits.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::search::blocking_report;
use ftclos_routing::{DModK, GreedyLocalAdaptive, NonblockingAdaptive};
use ftclos_topo::Ftree;

fn main() {
    let mut all_ok = true;
    let (n, r) = (3usize, 7usize);
    let samples = 300usize;

    banner(
        "E12",
        "blocking fraction over random permutations vs m (n=3, r=7, 300 samples)",
    );
    let mut table = TextTable::new(["m", "d-mod-k", "greedy adaptive", "nonblocking adaptive"]);
    let mut dmodk_at_n2 = 1.0f64;
    let mut greedy_zero_m = None::<usize>;
    let mut adaptive_zero_m = None::<usize>;
    let mut prev_dmodk = 1.1f64;
    let mut dmodk_monotone_ish = true;
    for m in 1..=n * n {
        let ft = Ftree::new(n, m, r).unwrap();
        let dmodk = DModK::new(&ft);
        let greedy = GreedyLocalAdaptive::new(&ft);
        let adaptive = NonblockingAdaptive::new(&ft).unwrap();
        let f_d = blocking_report(&dmodk, samples, SEED).blocking_fraction();
        let f_g = blocking_report(&greedy, samples, SEED).blocking_fraction();
        // NONBLOCKINGADAPTIVE refuses when its plan needs > m tops; count
        // refusals as blocking (the fabric is too small for the algorithm).
        let f_a = blocking_report(&adaptive, samples, SEED).blocking_fraction();
        table.row([
            m.to_string(),
            format!("{f_d:.3}"),
            format!("{f_g:.3}"),
            format!("{f_a:.3}"),
        ]);
        if m == n * n {
            dmodk_at_n2 = f_d;
        }
        if f_g == 0.0 && greedy_zero_m.is_none() {
            greedy_zero_m = Some(m);
        }
        if f_a == 0.0 && adaptive_zero_m.is_none() {
            adaptive_zero_m = Some(m);
        }
        if f_d > prev_dmodk + 0.1 {
            dmodk_monotone_ish = false;
        }
        prev_dmodk = f_d;
    }
    print!("{}", table.render());

    all_ok &= verdict(
        dmodk_at_n2 > 0.0,
        "d-mod-k still blocks at m = n² (count alone is not enough)",
    );
    all_ok &= verdict(
        dmodk_monotone_ish,
        "d-mod-k blocking shrinks (roughly) as m grows",
    );
    result_line(
        "greedy first zero-blocking m",
        greedy_zero_m.map_or("never".into(), |m| m.to_string()),
    );
    result_line(
        "nonblocking-adaptive first zero-blocking m",
        adaptive_zero_m.map_or("never (plan needs more tops)".into(), |m| m.to_string()),
    );

    banner(
        "E12b",
        "blocking fraction vs load density (m = 4 < n², 200 samples/point)",
    );
    let ft_small = Ftree::new(n, 4, r).unwrap();
    let dmodk_small = DModK::new(&ft_small);
    let ft_nb = Ftree::new(n, n * n, r).unwrap();
    let yuan_nb = ftclos_routing::YuanDeterministic::new(&ft_nb).unwrap();
    let densities = [0.1, 0.25, 0.5, 0.75, 1.0];
    let curve_d = ftclos_core::search::blocking_vs_density(&dmodk_small, &densities, 200, SEED);
    let curve_y = ftclos_core::search::blocking_vs_density(&yuan_nb, &densities, 200, SEED);
    let mut dtable = TextTable::new(["density", "d-mod-k (m=4)", "Theorem 3 (m=n²)"]);
    for ((d, fd), (_, fy)) in curve_d.iter().zip(&curve_y) {
        dtable.row([format!("{d:.2}"), format!("{fd:.3}"), format!("{fy:.3}")]);
    }
    print!("{}", dtable.render());
    all_ok &= verdict(
        curve_d.last().unwrap().1 > curve_d.first().unwrap().1,
        "blocking grows with load for the undersized fabric",
    );
    all_ok &= verdict(
        curve_y.iter().all(|&(_, f)| f == 0.0),
        "the nonblocking fabric is flat at zero across all densities",
    );

    // The Theorem 3 reference: zero blocking at m = n² with the right
    // deterministic routing.
    let ft = Ftree::new(n, n * n, r).unwrap();
    let yuan = ftclos_routing::YuanDeterministic::new(&ft).unwrap();
    let f_yuan = blocking_report(&yuan, samples, SEED).blocking_fraction();
    result_line("Theorem 3 routing at m = n²", format!("{f_yuan:.3}"));
    all_ok &= verdict(f_yuan == 0.0, "Theorem 3 routing never blocks at m = n²");

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
