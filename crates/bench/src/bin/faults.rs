//! E17 — degraded operation under hardware failures.
//!
//! The paper's nonblocking machinery assumes a pristine fabric. This
//! experiment measures what each routing scheme retains when top switches
//! and links die:
//!
//! * **E17a** — degradation table on `ftree(3+12, 9)` (`m = 12 > n² = 9`,
//!   so a whole spare partition exists): the Theorem 3 deterministic
//!   routing, whose top assignment is pinned, strands `r(r-1)` pairs per
//!   dead top, while the masked NONBLOCKINGADAPTIVE re-plans around the
//!   failure and stays contention-free.
//! * **E17b** — survivability margin: the largest `k` such that *any* `k`
//!   simultaneous top failures leave the masked adaptive contention-free
//!   (exhaustive over all single-failure subsets).
//! * **E17c** — packet level: a mid-run uplink death with TTL + retry.
//!   Policies that re-pick paths on retransmission (random multipath)
//!   deliver everything; a pinned single-path policy re-picks the same dead
//!   path and must abandon exactly the stranded flows. Drop/retry counters
//!   obey packet conservation throughout.

use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::{
    adaptive_degraded_verdict, deterministic_degradation, max_survivable_top_failures,
    DegradedVerdict,
};
use ftclos_routing::{ObliviousMultipath, SpreadPolicy, YuanDeterministic};
use ftclos_sim::{Arbiter, FaultSchedule, Policy, SimConfig, Simulator, Workload};
use ftclos_topo::{FaultSet, FaultyView, Ftree};
use ftclos_traffic::patterns;

fn main() {
    let mut all_ok = true;

    banner(
        "E17a",
        "degradation table: ftree(3+12, 9), k failed tops, yuan vs masked adaptive",
    );
    let ft = Ftree::new(3, 12, 9).unwrap();
    let yuan = YuanDeterministic::new(&ft).unwrap();
    println!("  k | yuan routable pairs | yuan lost | masked adaptive");
    for k in 0..=2usize {
        let mut faults = FaultSet::new();
        for t in 0..k {
            faults.fail_switch(ft.top(t));
        }
        let view = FaultyView::new(ft.topology(), &faults);
        let deg = deterministic_degradation(&yuan, &view);
        let adaptive = adaptive_degraded_verdict(&ft, &view, 30, SEED).unwrap();
        let verdict_str = match &adaptive {
            DegradedVerdict::ContentionFree { permutations, .. } => {
                format!("contention-free ({permutations} perms)")
            }
            other => format!("{other:?}"),
        };
        println!(
            "  {k} | {:>5}/{:<5}          | {:>5.1}%   | {verdict_str}",
            deg.routable_pairs(),
            deg.total_pairs,
            deg.unroutable_fraction() * 100.0
        );
        if k == 0 {
            all_ok &= verdict(
                deg.fully_operational() && adaptive.survives(),
                "pristine fabric: both schemes fully operational",
            );
        }
        if k == 1 {
            all_ok &= verdict(
                deg.routable_pairs() + ft.r() * (ft.r() - 1) == deg.total_pairs,
                "yuan's pinned assignment strands exactly r(r-1) pairs per dead top",
            );
            all_ok &= verdict(
                adaptive.survives(),
                "masked adaptive re-plans around the dead top: zero contention",
            );
        }
    }

    banner(
        "E17b",
        "survivability margin of the masked adaptive routing",
    );
    let report = max_survivable_top_failures(&ft, 2, 20, 64, SEED).unwrap();
    result_line("max survivable k", report.max_k);
    for level in &report.levels {
        result_line(
            &format!("k={}", level.k),
            format!(
                "{} subset(s){}, {}",
                level.subsets_checked,
                if level.exhaustive {
                    " (exhaustive)"
                } else {
                    " (sampled)"
                },
                if level.verdict.survives() {
                    "all contention-free"
                } else {
                    "failure found"
                }
            ),
        );
    }
    all_ok &= verdict(
        report.max_k >= 1,
        "the spare partition absorbs any single top-switch failure (exhaustive)",
    );

    banner(
        "E17c",
        "packet level: mid-run uplink death, TTL + bounded retry",
    );
    let ft2 = Ftree::new(2, 4, 5).unwrap();
    let perm = patterns::shift(10, 2);
    let cfg = SimConfig {
        warmup_cycles: 200,
        measure_cycles: 1_500,
        ttl_cycles: 60,
        retry: true,
        retry_limit: 10,
        drain: true,
        arbiter: Arbiter::Voq { iterations: 2 },
        ..SimConfig::default()
    };
    // Kill the uplink carrying Theorem 3's pinned route for flow 0 -> 2
    // (leaf offsets (0,0) map to top i*n+j = 0).
    let mut faults = FaultSchedule::new();
    faults.kill_channel(400, ft2.up_channel(0, 0));

    let mp = ObliviousMultipath::new(&ft2, SpreadPolicy::Random);
    let s_mp = Simulator::new(ft2.topology(), cfg, Policy::from_multipath(&mp, true))
        .try_run_with_faults(&Workload::permutation(&perm, 0.6), SEED, &faults)
        .unwrap();
    result_line(
        "multipath (re-picks)",
        format!(
            "injected {} delivered {} timed-out {} retries {} abandoned {}",
            s_mp.injected_total,
            s_mp.delivered_total,
            s_mp.timed_out_total,
            s_mp.retries_total,
            s_mp.abandoned_total
        ),
    );
    all_ok &= verdict(
        s_mp.timed_out_total > 0 && s_mp.retries_total > 0,
        "the dead uplink strands packets; retry retransmits them",
    );
    all_ok &= verdict(
        s_mp.delivered_total >= s_mp.injected_total * 99 / 100,
        "re-picking policies route around the failure (≥99% delivered)",
    );
    all_ok &= verdict(
        s_mp.conservation_ok(),
        "packet conservation holds (multipath)",
    );

    let yuan2 = YuanDeterministic::new(&ft2).unwrap();
    let s_fix = Simulator::new(ft2.topology(), cfg, Policy::from_single_path(&yuan2))
        .try_run_with_faults(&Workload::permutation(&perm, 0.6), SEED, &faults)
        .unwrap();
    result_line(
        "pinned single-path",
        format!(
            "injected {} delivered {} timed-out {} retries {} abandoned {}",
            s_fix.injected_total,
            s_fix.delivered_total,
            s_fix.timed_out_total,
            s_fix.retries_total,
            s_fix.abandoned_total
        ),
    );
    all_ok &= verdict(
        s_fix.abandoned_total > 0,
        "the pinned policy re-picks the same dead path: stranded flows are dropped",
    );
    all_ok &= verdict(
        s_fix.delivered_total > 0,
        "flows off the dead uplink keep flowing",
    );
    all_ok &= verdict(
        s_fix.conservation_ok(),
        "packet conservation holds (pinned)",
    );
    all_ok &= verdict(
        s_mp.abandoned_fraction() < s_fix.abandoned_fraction(),
        "retry + path diversity beats retry alone (lower abandonment)",
    );

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
