//! E16 (context) — the classical centralized-controller hierarchy the paper
//! contrasts against, exercised on a circuit-switched `Clos(n, m, r)`:
//! strict-sense (`m >= 2n-1`) never blocks under churn, `n <= m < 2n-1`
//! blocks occasionally but always recovers by rearrangement (Beneš), and
//! `m < n` fails even with rearrangement. None of this machinery exists in
//! a distributed-control fat-tree — which is exactly why the paper's
//! nonblocking definition needs `m >= n²` instead of `2n-1`.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::circuit::{CircuitClos, ConnectError, MiddlePolicy};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Random connect/disconnect churn; returns (attempts, blocked,
/// rearrangement_failures).
fn churn(n: usize, m: usize, r: usize, steps: usize, seed: u64) -> (usize, usize, usize) {
    let mut c = CircuitClos::new(n, m, r, MiddlePolicy::FirstFit);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut busy_in: Vec<u32> = Vec::new();
    let (mut attempts, mut blocked, mut rearrange_failures) = (0, 0, 0);
    for _ in 0..steps {
        if rng.gen_bool(0.55) {
            let s = rng.gen_range(0..c.ports());
            let d = rng.gen_range(0..c.ports());
            match c.connect(s, d) {
                Ok(_) => {
                    attempts += 1;
                    busy_in.push(s);
                }
                Err(ConnectError::Blocked) => {
                    attempts += 1;
                    blocked += 1;
                    // A centralized controller would rearrange:
                    match c.connect_rearranging(s, d) {
                        Ok(_) => busy_in.push(s),
                        Err(_) => rearrange_failures += 1,
                    }
                }
                Err(_) => {} // busy port: not an attempt
            }
        } else if let Some(idx) = (!busy_in.is_empty()).then(|| rng.gen_range(0..busy_in.len())) {
            let s = busy_in.swap_remove(idx);
            c.disconnect(s);
        }
    }
    c.audit().expect("state consistent");
    (attempts, blocked, rearrange_failures)
}

fn main() {
    let mut all_ok = true;
    let (n, r) = (3usize, 5usize);

    banner(
        "E16",
        "classical Clos(n, m, r) under centralized circuit switching",
    );
    let mut table = TextTable::new([
        "m",
        "regime",
        "attempts",
        "blocked (direct)",
        "rearrange failures",
    ]);
    for m in 1..=2 * n - 1 {
        let regime = if m >= 2 * n - 1 {
            "strict-sense"
        } else if m >= n {
            "rearrangeable"
        } else {
            "sub-rearrangeable"
        };
        let (attempts, blocked, rfail) = churn(n, m, r, 20_000, SEED);
        table.row([
            m.to_string(),
            regime.to_string(),
            attempts.to_string(),
            blocked.to_string(),
            rfail.to_string(),
        ]);
        match regime {
            "strict-sense" => {
                all_ok &= verdict(
                    blocked == 0,
                    &format!("m = {m} = 2n-1: never blocks (Clos 1953)"),
                );
            }
            "rearrangeable" => {
                all_ok &= verdict(
                    rfail == 0,
                    &format!("m = {m} >= n: every block recovered by rearrangement (Beneš 1962)"),
                );
                if m == n {
                    all_ok &= verdict(
                        blocked > 0,
                        &format!("m = {m}: direct first-fit does block sometimes (wide-sense gap)"),
                    );
                }
            }
            _ => {
                all_ok &= verdict(
                    rfail > 0,
                    &format!("m = {m} < n: even rearrangement cannot always help"),
                );
            }
        }
    }
    print!("{}", table.render());

    banner(
        "E16c",
        "wide-sense verdicts by exhaustive state-space search",
    );
    // For tiny shapes the reachable state space under a deterministic
    // policy is finite: decide wide-sense nonblocking-ness exactly.
    use ftclos_core::wide_sense::{verify_witness, wide_sense_search, WideSense};
    let mut ws_table = TextTable::new(["shape", "policy", "verdict"]);
    for (wn, wm, wr) in [(2usize, 1usize, 2usize), (2, 2, 2), (2, 2, 3), (2, 3, 2)] {
        let verdict_str = match wide_sense_search(wn, wm, wr, MiddlePolicy::FirstFit, 2_000_000) {
            WideSense::Nonblocking(states) => format!("wide-sense NONBLOCKING ({states} states)"),
            WideSense::Blocked(moves) => {
                all_ok &= verify_witness(wn, wm, wr, MiddlePolicy::FirstFit, &moves);
                format!("BLOCKED after {} moves (witness verified)", moves.len())
            }
            WideSense::Exhausted(states) => format!("inconclusive ({states} states)"),
        };
        ws_table.row([
            format!("Clos({wn},{wm},{wr})"),
            "first-fit".to_string(),
            verdict_str,
        ]);
    }
    print!("{}", ws_table.render());
    all_ok &= verdict(
        matches!(
            wide_sense_search(2, 3, 2, MiddlePolicy::FirstFit, 2_000_000),
            WideSense::Nonblocking(_)
        ),
        "m = 2n-1: exhaustively wide-sense nonblocking",
    );
    all_ok &= verdict(
        matches!(
            wide_sense_search(2, 2, 3, MiddlePolicy::FirstFit, 2_000_000),
            WideSense::Blocked(_)
        ),
        "n <= m < 2n-1: adversary wedges first-fit (witness found)",
    );

    banner("E16b", "full permutations at m = n via rearrangement");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + 1);
    let mut ok = true;
    for _ in 0..50 {
        let mut c = CircuitClos::new(n, n, r, MiddlePolicy::FirstFit);
        let mut dsts: Vec<u32> = (0..c.ports()).collect();
        dsts.shuffle(&mut rng);
        for (s, &d) in dsts.iter().enumerate() {
            if c.connect_rearranging(s as u32, d).is_err() {
                ok = false;
            }
        }
        if c.active() != c.ports() as usize {
            ok = false;
        }
    }
    all_ok &= verdict(ok, "50 random full permutations fully connected at m = n");
    result_line(
        "contrast",
        "distributed packet routing has no controller to rearrange: the paper needs m >= n² instead",
    );

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
