//! E20 — arena-backed contention engine performance.
//!
//! Measures the optimized engine against the legacy `HashMap` machinery it
//! replaced, on the ISSUE's reference fabric `ftree(4+16, 9)` (36 ports,
//! 1260 cross-switch SD paths, ~794k two-pair patterns for the legacy
//! sweep):
//!
//! * complete two-pair blocking sweep: `find_blocking_two_pair` (engine,
//!   including the arena build) vs `find_blocking_two_pair_legacy`
//!   (re-routes every pattern) — the headline ≥10× speedup;
//! * full-fabric Lemma 1 audits per second: `ContentionEngine::recount` +
//!   `lemma1_violation` vs `LinkAudit::build` + `lemma1_check`;
//! * per-pattern contention checks per second: `ContentionScratch` (dense,
//!   epoch-stamped) vs `verify::find_contention` (fresh `HashMap`);
//! * peak arena bytes;
//! * verdict-agreement smoke on one blocking and one nonblocking fabric.
//!
//! Results land in `BENCH_core.json` (hand-rolled JSON, stable key order)
//! next to the working directory for CI artifact upload. Exits nonzero when
//! any claim — including the ≥10× speedup — fails.

use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::search::{find_blocking_two_pair, find_blocking_two_pair_legacy};
use ftclos_core::verify::{find_contention, LinkAudit};
use ftclos_core::{ContentionEngine, ContentionScratch};
use ftclos_routing::{route_all, DModK, PathArena, YuanDeterministic};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use rand::SeedableRng;
use std::time::Instant;

/// Wall-clock of one call, in seconds.
fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Best (minimum) wall-clock of `reps` calls, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best, mut out) = time_once(&mut f);
    for _ in 1..reps {
        let (t, o) = time_once(&mut f);
        if t < best {
            best = t;
            out = o;
        }
    }
    (best, out)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mut all_ok = true;

    banner(
        "E20",
        "arena-backed contention engine vs legacy HashMap sweeps",
    );
    let (n, m, r) = (4usize, 16usize, 9usize);
    let ft = Ftree::new(n, m, r).unwrap();
    let yuan = YuanDeterministic::new(&ft).unwrap();
    result_line("fabric", format!("ftree({n}+{m}, {r})"));
    result_line("ports", n * r);

    // Headline: the complete two-pair blocking sweep. The Yuan routing is
    // nonblocking, so both sweeps must scan their whole search space — the
    // legacy loop re-routes ~794k two-pair patterns, the engine routes 1260
    // paths once and scans channels.
    let (legacy_sweep_s, legacy_out) = time_once(|| find_blocking_two_pair_legacy(&yuan));
    all_ok &= verdict(
        legacy_out.is_nonblocking(),
        "legacy sweep: ftree(4+16, 9) with Theorem 3 routing is nonblocking",
    );
    let (engine_sweep_s, engine_out) = time_best(5, || find_blocking_two_pair(&yuan));
    all_ok &= verdict(
        engine_out.is_nonblocking(),
        "engine sweep: same fabric, same verdict",
    );
    let speedup = legacy_sweep_s / engine_sweep_s;
    result_line(
        "legacy_two_pair_sweep_ms",
        format!("{:.3}", legacy_sweep_s * 1e3),
    );
    result_line(
        "engine_two_pair_sweep_ms",
        format!("{:.3}", engine_sweep_s * 1e3),
    );
    result_line("speedup", format!("{speedup:.1}x"));
    all_ok &= verdict(speedup >= 10.0, "engine two-pair sweep is >= 10x faster");

    // Full-fabric Lemma 1 audits per second.
    let audit_reps = 20usize;
    let (legacy_audit_s, _) = time_best(3, || {
        for _ in 0..audit_reps {
            let audit = LinkAudit::build(&yuan);
            assert!(audit.lemma1_check(&yuan).is_ok());
        }
    });
    let mut engine = ContentionEngine::new(&yuan).unwrap();
    let (engine_audit_s, _) = time_best(3, || {
        for _ in 0..audit_reps {
            engine.recount();
            assert!(engine.lemma1_violation().is_none());
        }
    });
    let legacy_audits_per_sec = audit_reps as f64 / legacy_audit_s;
    let engine_audits_per_sec = audit_reps as f64 / engine_audit_s;
    result_line(
        "legacy_audits_per_sec",
        format!("{legacy_audits_per_sec:.0}"),
    );
    result_line(
        "engine_audits_per_sec",
        format!("{engine_audits_per_sec:.0}"),
    );

    // Per-pattern contention checks per second, over pre-routed random
    // permutations (the hot shape in sweeps and fault sims).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    let assignments: Vec<_> = (0..200)
        .map(|_| {
            let perm = patterns::random_full((n * r) as u32, &mut rng);
            route_all(&yuan, &perm).unwrap()
        })
        .collect();
    let (legacy_pat_s, _) = time_best(3, || {
        for a in &assignments {
            assert!(find_contention(a).is_none());
        }
    });
    let mut scratch = ContentionScratch::with_channels(ft.topology().num_channels());
    let (engine_pat_s, _) = time_best(3, || {
        for a in &assignments {
            assert!(scratch.find_contention(a).is_none());
        }
    });
    let legacy_patterns_per_sec = assignments.len() as f64 / legacy_pat_s;
    let engine_patterns_per_sec = assignments.len() as f64 / engine_pat_s;
    result_line(
        "legacy_patterns_per_sec",
        format!("{legacy_patterns_per_sec:.0}"),
    );
    result_line(
        "engine_patterns_per_sec",
        format!("{engine_patterns_per_sec:.0}"),
    );

    let arena_bytes = PathArena::build(&yuan).unwrap().bytes();
    result_line("arena_bytes", arena_bytes);

    // Agreement smoke: one blocking and one nonblocking fabric, engine and
    // legacy must concur (the full differential lives in the proptests).
    let small = Ftree::new(2, 2, 5).unwrap();
    let dmodk = DModK::new(&small);
    let blocking_agree = find_blocking_two_pair(&dmodk).found_blocking()
        && find_blocking_two_pair_legacy(&dmodk).found_blocking();
    all_ok &= verdict(
        blocking_agree,
        "smoke: both sweeps find blocking on ftree(2+2, 5) d-mod-k",
    );
    let clean = Ftree::new(2, 4, 5).unwrap();
    let clean_yuan = YuanDeterministic::new(&clean).unwrap();
    let clean_agree = find_blocking_two_pair(&clean_yuan).is_nonblocking()
        && find_blocking_two_pair_legacy(&clean_yuan).is_nonblocking();
    all_ok &= verdict(
        clean_agree,
        "smoke: both sweeps clear ftree(2+4, 5) Theorem 3 routing",
    );

    // Machine-readable record for CI (hand-rolled: no serde_json in-tree).
    let json = format!(
        "{{\n  \"experiment\": \"E20\",\n  \"fabric\": \"ftree({n}+{m}, {r})\",\n  \
         \"ports\": {ports},\n  \"legacy_two_pair_sweep_ms\": {lts},\n  \
         \"engine_two_pair_sweep_ms\": {ets},\n  \"speedup\": {sp},\n  \
         \"legacy_audits_per_sec\": {la},\n  \"engine_audits_per_sec\": {ea},\n  \
         \"legacy_patterns_per_sec\": {lp},\n  \"engine_patterns_per_sec\": {ep},\n  \
         \"arena_bytes\": {ab},\n  \"smoke_blocking_agree\": {sb},\n  \
         \"smoke_nonblocking_agree\": {sn},\n  \"pass\": {pass}\n}}\n",
        ports = n * r,
        lts = json_f64(legacy_sweep_s * 1e3),
        ets = json_f64(engine_sweep_s * 1e3),
        sp = json_f64(speedup),
        la = json_f64(legacy_audits_per_sec),
        ea = json_f64(engine_audits_per_sec),
        lp = json_f64(legacy_patterns_per_sec),
        ep = json_f64(engine_patterns_per_sec),
        ab = arena_bytes,
        sb = blocking_agree,
        sn = clean_agree,
        pass = all_ok,
    );
    std::fs::write("BENCH_core.json", &json).expect("write BENCH_core.json");
    result_line("written", "BENCH_core.json");

    if !all_ok {
        std::process::exit(1);
    }
}
