//! E20 — arena-backed contention engine performance.
//!
//! Measures the optimized engine against the legacy `HashMap` machinery it
//! replaced, on the ISSUE's reference fabric `ftree(4+16, 9)` (36 ports,
//! 1260 cross-switch SD paths, ~794k two-pair patterns for the legacy
//! sweep):
//!
//! * complete two-pair blocking sweep: `find_blocking_two_pair` (engine,
//!   including the arena build) vs `find_blocking_two_pair_legacy`
//!   (re-routes every pattern) — the headline ≥10× speedup;
//! * full-fabric Lemma 1 audits per second: `ContentionEngine::recount` +
//!   `lemma1_violation` vs `LinkAudit::build` + `lemma1_check`;
//! * per-pattern contention checks per second: `ContentionScratch` (dense,
//!   epoch-stamped) vs `verify::find_contention` (fresh `HashMap`);
//! * recording overhead (E21): the engine sweep and audit loop repeated
//!   with a live [`ftclos_obs::Registry`] threaded through the `*_with`
//!   entry points — must stay within 10% of the plain (no-op recorder)
//!   numbers, or CI fails;
//! * peak arena bytes;
//! * verdict-agreement smoke on one blocking and one nonblocking fabric.
//!
//! E22 — channel-dependency deadlock analysis at scale: CDG build + cycle
//! check for Theorem 3 and d-mod-k routing on `ftree(16+256, 625)` (10k
//! ports, 10⁸ SD pairs, 340k directed channels) must prove deadlock freedom
//! (zero valley turns) inside a wall-clock budget, and the valley straw-man
//! must still yield its deterministic witness cycle.
//!
//! E23 — adversarial fault campaigns at scale, on the same 10k-port fabric:
//! exhaustive k = 2 certification of adaptive routability over all 256 top
//! switches, then a 64-wave randomized fault campaign with shrinking, every
//! minimal killer re-verified 1-minimal. Both inside a wall-clock budget.
//!
//! E24 — event-driven packet simulation at scale: the event engine must
//! replay the cycle engine *exactly* (identical `SimStats`, bit for bit) on
//! the 10k-host ftree while clearing ≥10× its simulated host-cycles/sec,
//! then complete the first 100k+ host packet-level run — the recursive
//! three-level construction at n = 18 (110 808 ports) — inside a
//! wall-clock budget the cycle engine cannot even approach.
//!
//! E25 — sparse lazy simulator state + compact topology: fabric cost must
//! scale with *touched* state, not total channels. The recursive n = 24
//! fabric (345 600 hosts, ~415M directed channels) must build + route +
//! simulate end-to-end under the same 120 s budget, reporting the
//! build/route/run split, `Topology::memory_bytes()`, touched channels,
//! paged-state bytes, and process peak RSS; then a first million-host run
//! (`ftree(16+16, 65536)`, 1 048 576 ports) must complete inside its own
//! wall-clock budget. A peak-RSS ceiling turns any return to dense
//! `vec![...; num_channels]` state into a CI failure instead of an OOM.
//!
//! E26 — min-congestion unsplittable routing head-to-head on the 10k-host
//! fabric: for every pattern of the standard adversarial suite, the
//! repaired `MinCongestion` plan — warm-started from every exact baseline
//! assignment — must match or beat the best of Theorem 3, d-mod-k,
//! s-mod-k, and NONBLOCKINGADAPTIVE on max link load (measured by the
//! core engine's epoch-stamped load scratch, same meter for every row);
//! then on a faulted fabric (one dead top switch) it must *strictly* beat
//! fault-aware d-mod-k, all inside a wall-clock budget.
//!
//! Results land in `BENCH_core.json` (hand-rolled JSON, stable key order)
//! next to the working directory for CI artifact upload. Exits nonzero when
//! any claim — including the ≥10× speedup — fails.

use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::search::{find_blocking_two_pair, find_blocking_two_pair_legacy};
use ftclos_core::verify::{find_contention, LinkAudit};
use ftclos_core::{
    cable_universe, cdg_of_router, certify_exhaustive, run_randomized, top_switch_universe,
    AdaptiveRoutability, CampaignConfig, CampaignError, CampaignProperty, ContentionEngine,
    ContentionScratch, FaultElement, ValleyRouter,
};
use ftclos_evsim::EventSimulator;
use ftclos_flowsim::standard_suite;
use ftclos_obs::Registry;
use ftclos_routing::{
    route_all, CongestionConfig, DModK, FaultAware, FtreeCandidates, MinCongestion,
    NonblockingAdaptive, PathArena, PatternRouter, RouteAssignment, RoutingError, SModK,
    YuanDeterministic, YuanRecursive,
};
use ftclos_sim::{Policy, SimConfig, SimError, Simulator, Workload};
use ftclos_topo::{FaultSet, FaultyView, Ftree, RecursiveNonblocking, TopoError};
use ftclos_traffic::patterns;
use rand::SeedableRng;
use std::fmt;
use std::process::ExitCode;
use std::time::Instant;

/// Everything that can stop the benchmark before a verdict: these are
/// setup failures (bad fabric parameters, unroutable reference pattern,
/// result-file I/O), not performance regressions, so they carry their own
/// type instead of panicking mid-measurement.
#[derive(Debug)]
enum BenchError {
    /// Building a reference fabric failed.
    Topo(TopoError),
    /// Routing on a reference fabric failed.
    Routing(RoutingError),
    /// The E23 fault campaign aborted (checkpoint/resume plumbing).
    Campaign(CampaignError),
    /// An E24 packet-level simulation failed (setup or stall, not perf).
    Sim(SimError),
    /// Writing `BENCH_core.json` failed.
    Io(std::io::Error),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Topo(e) => write!(f, "fabric construction failed: {e}"),
            BenchError::Routing(e) => write!(f, "reference routing failed: {e}"),
            BenchError::Campaign(e) => write!(f, "fault campaign aborted: {e}"),
            BenchError::Sim(e) => write!(f, "packet-level simulation failed: {e}"),
            BenchError::Io(e) => write!(f, "cannot write BENCH_core.json: {e}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<TopoError> for BenchError {
    fn from(e: TopoError) -> Self {
        BenchError::Topo(e)
    }
}

impl From<RoutingError> for BenchError {
    fn from(e: RoutingError) -> Self {
        BenchError::Routing(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

impl From<CampaignError> for BenchError {
    fn from(e: CampaignError) -> Self {
        BenchError::Campaign(e)
    }
}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Sim(e)
    }
}

/// Wall-clock of one call, in seconds.
fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Best (minimum) wall-clock of `reps` calls, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best, mut out) = time_once(&mut f);
    for _ in 1..reps {
        let (t, o) = time_once(&mut f);
        if t < best {
            best = t;
            out = o;
        }
    }
    (best, out)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Peak resident set of this process (`VmHWM`) in MiB, from
/// `/proc/self/status`. `None` off Linux — the RSS gate then reports null
/// and does not vote.
fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kib: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kib / 1024)
}

/// Exact max link load of an assignment, by the core engine's
/// epoch-stamped scratch (0 for an assignment that crosses no channels).
fn scratch_max(scratch: &mut ContentionScratch, asg: &RouteAssignment) -> u32 {
    scratch.max_load_witness(asg).map_or(0, |(_, m)| m)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("coreperf: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, BenchError> {
    let mut all_ok = true;

    banner(
        "E20",
        "arena-backed contention engine vs legacy HashMap sweeps",
    );
    let (n, m, r) = (4usize, 16usize, 9usize);
    let ft = Ftree::new(n, m, r)?;
    let yuan = YuanDeterministic::new(&ft)?;
    result_line("fabric", format!("ftree({n}+{m}, {r})"));
    result_line("ports", n * r);

    // Headline: the complete two-pair blocking sweep. The Yuan routing is
    // nonblocking, so both sweeps must scan their whole search space — the
    // legacy loop re-routes ~794k two-pair patterns, the engine routes 1260
    // paths once and scans channels.
    let (legacy_sweep_s, legacy_out) = time_once(|| find_blocking_two_pair_legacy(&yuan));
    all_ok &= verdict(
        legacy_out.is_nonblocking(),
        "legacy sweep: ftree(4+16, 9) with Theorem 3 routing is nonblocking",
    );
    let (engine_sweep_s, engine_out) = time_best(5, || find_blocking_two_pair(&yuan));
    all_ok &= verdict(
        engine_out.is_nonblocking(),
        "engine sweep: same fabric, same verdict",
    );
    let speedup = legacy_sweep_s / engine_sweep_s;
    result_line(
        "legacy_two_pair_sweep_ms",
        format!("{:.3}", legacy_sweep_s * 1e3),
    );
    result_line(
        "engine_two_pair_sweep_ms",
        format!("{:.3}", engine_sweep_s * 1e3),
    );
    result_line("speedup", format!("{speedup:.1}x"));
    all_ok &= verdict(speedup >= 10.0, "engine two-pair sweep is >= 10x faster");

    // Full-fabric Lemma 1 audits per second.
    let audit_reps = 20usize;
    let (legacy_audit_s, _) = time_best(3, || {
        for _ in 0..audit_reps {
            let audit = LinkAudit::build(&yuan);
            assert!(audit.lemma1_check(&yuan).is_ok());
        }
    });
    let mut engine = ContentionEngine::new(&yuan)?;
    let (engine_audit_s, _) = time_best(3, || {
        for _ in 0..audit_reps {
            engine.recount();
            assert!(engine.lemma1_violation().is_none());
        }
    });
    let legacy_audits_per_sec = audit_reps as f64 / legacy_audit_s;
    let engine_audits_per_sec = audit_reps as f64 / engine_audit_s;
    result_line(
        "legacy_audits_per_sec",
        format!("{legacy_audits_per_sec:.0}"),
    );
    result_line(
        "engine_audits_per_sec",
        format!("{engine_audits_per_sec:.0}"),
    );

    // E21 — recording overhead. The plain entry points above already route
    // through the no-op recorder (monomorphized away); here the same work
    // runs with a live Registry accumulating spans and counters. The E20
    // speedup claim must not quietly erode when users pass `--trace`.
    let reg = Registry::new();
    let (recorded_build_s, recorded_clean) = time_best(5, || {
        ContentionEngine::new_with(&yuan, &reg).map(|e| e.lemma1_violation_with(&reg).is_none())
    });
    all_ok &= verdict(
        recorded_clean?,
        "recorded engine: same nonblocking verdict under a live recorder",
    );
    let (plain_build_s, plain_clean) = time_best(5, || {
        ContentionEngine::new(&yuan).map(|e| e.lemma1_violation().is_none())
    });
    let _ = plain_clean?;
    let overhead_pct = 100.0 * (recorded_build_s / plain_build_s - 1.0);
    result_line(
        "plain_build_audit_ms",
        format!("{:.3}", plain_build_s * 1e3),
    );
    result_line(
        "recorded_build_audit_ms",
        format!("{:.3}", recorded_build_s * 1e3),
    );
    result_line("record_overhead_pct", format!("{overhead_pct:.1}"));
    all_ok &= verdict(
        overhead_pct < 10.0,
        "live recording keeps build+audit within 10% of plain",
    );
    let snap = reg.snapshot();
    all_ok &= verdict(
        snap.counter("engine.channels_scanned").unwrap_or(0) > 0
            && snap.spans.iter().any(|s| s.path == "arena.build"),
        "recorded runs populated spans and counters",
    );

    // Per-pattern contention checks per second, over pre-routed random
    // permutations (the hot shape in sweeps and fault sims).
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    let perms: Vec<_> = (0..200)
        .map(|_| patterns::random_full((n * r) as u32, &mut rng))
        .collect();
    let mut assignments = Vec::with_capacity(perms.len());
    for perm in &perms {
        assignments.push(route_all(&yuan, perm)?);
    }
    let (legacy_pat_s, _) = time_best(3, || {
        for a in &assignments {
            assert!(find_contention(a).is_none());
        }
    });
    let mut scratch = ContentionScratch::with_channels(ft.topology().num_channels());
    let (engine_pat_s, _) = time_best(3, || {
        for a in &assignments {
            assert!(scratch.find_contention(a).is_none());
        }
    });
    let legacy_patterns_per_sec = assignments.len() as f64 / legacy_pat_s;
    let engine_patterns_per_sec = assignments.len() as f64 / engine_pat_s;
    result_line(
        "legacy_patterns_per_sec",
        format!("{legacy_patterns_per_sec:.0}"),
    );
    result_line(
        "engine_patterns_per_sec",
        format!("{engine_patterns_per_sec:.0}"),
    );

    let arena_bytes = PathArena::build(&yuan)?.bytes();
    result_line("arena_bytes", arena_bytes);

    // Agreement smoke: one blocking and one nonblocking fabric, engine and
    // legacy must concur (the full differential lives in the proptests).
    let small = Ftree::new(2, 2, 5)?;
    let dmodk = DModK::new(&small);
    let blocking_agree = find_blocking_two_pair(&dmodk).found_blocking()
        && find_blocking_two_pair_legacy(&dmodk).found_blocking();
    all_ok &= verdict(
        blocking_agree,
        "smoke: both sweeps find blocking on ftree(2+2, 5) d-mod-k",
    );
    let clean = Ftree::new(2, 4, 5)?;
    let clean_yuan = YuanDeterministic::new(&clean)?;
    let clean_agree = find_blocking_two_pair(&clean_yuan).is_nonblocking()
        && find_blocking_two_pair_legacy(&clean_yuan).is_nonblocking();
    all_ok &= verdict(
        clean_agree,
        "smoke: both sweeps clear ftree(2+4, 5) Theorem 3 routing",
    );

    // E22 — channel-dependency deadlock analysis at scale. The CDG
    // extractor walks all 10⁸ SD pairs of a 10k-port fabric and the cycle
    // check (Tarjan over 340k channels) must still fit interactive budgets.
    banner("E22", "channel-dependency deadlock analysis at scale");
    let (bn, bm, br) = (16usize, 256usize, 625usize);
    let big = Ftree::new(bn, bm, br)?;
    result_line("cdg_fabric", format!("ftree({bn}+{bm}, {br})"));
    result_line("cdg_ports", bn * br);
    result_line("cdg_channels", big.topology().num_channels());
    let big_yuan = YuanDeterministic::new(&big)?;
    let (yuan_cdg_s, yuan_analysis) =
        time_once(|| cdg_of_router(big.topology(), &big_yuan).check());
    result_line("yuan_cdg_deps", yuan_analysis.num_deps);
    result_line("yuan_cdg_build_check_s", format!("{yuan_cdg_s:.3}"));
    all_ok &= verdict(
        yuan_analysis.is_free() && yuan_analysis.valley_turns == 0,
        "Theorem 3 routing on ftree(16+256, 625) is deadlock-free, no valleys",
    );
    let big_dmodk = DModK::new(&big);
    let (dmodk_cdg_s, dmodk_analysis) =
        time_once(|| cdg_of_router(big.topology(), &big_dmodk).check());
    result_line("dmodk_cdg_deps", dmodk_analysis.num_deps);
    result_line("dmodk_cdg_build_check_s", format!("{dmodk_cdg_s:.3}"));
    all_ok &= verdict(
        dmodk_analysis.is_free() && dmodk_analysis.valley_turns == 0,
        "d-mod-k routing on ftree(16+256, 625) is deadlock-free, no valleys",
    );
    // ~7 s per router on a developer machine; the budget leaves room for a
    // slow 2-core CI runner while a complexity regression (the walk going
    // quadratic in path length, or the bitmap union serializing) still
    // trips the gate.
    const E22_BUDGET_S: f64 = 120.0;
    all_ok &= verdict(
        yuan_cdg_s < E22_BUDGET_S && dmodk_cdg_s < E22_BUDGET_S,
        "CDG build + cycle check stays under the 120 s budget",
    );
    // Witness smoke: the intentionally broken valley router must be caught
    // with the full-length deterministic cycle the injection harness pins.
    let vft = Ftree::new(1, 1, 4)?;
    let valley_analysis = cdg_of_router(vft.topology(), &ValleyRouter::new(&vft)).check();
    let valley_witness_len = valley_analysis.verdict.witness().map_or(0, <[_]>::len);
    result_line("valley_witness_len", valley_witness_len);
    let valley_caught = !valley_analysis.is_free() && valley_witness_len == 8;
    all_ok &= verdict(
        valley_caught,
        "valley straw-man on ftree(1+1, 4) yields its 8-channel witness",
    );

    // E23 — adversarial fault campaigns at scale, on the same 10k-port
    // fabric: (a) exhaustive k = 2 certification of adaptive routability
    // over all 256 top switches (32 897 fault sets, closed-form judge), and
    // (b) a 64-wave randomized campaign (16 sets per wave, 2 cable + 1 top
    // switch faults each) with every killer delta-debugged to a 1-minimal
    // core, re-verified here against the property.
    banner("E23", "adversarial fault campaigns at scale");
    let routability = AdaptiveRoutability::new(&big);
    let tops: Vec<FaultElement> = top_switch_universe(big.topology())
        .into_iter()
        .map(FaultElement::Switch)
        .collect();
    let (e23_certify_s, cert) = time_once(|| certify_exhaustive(&routability, &tops, 2));
    result_line("e23_certify_sets", cert.sets_total);
    result_line("e23_certify_s", format!("{e23_certify_s:.3}"));
    all_ok &= verdict(
        cert.certified() && cert.sets_total == 32_897,
        "routability on ftree(16+256, 625) certified 2-fault tolerant over all 256 tops",
    );
    let campaign_cfg = CampaignConfig {
        seed: SEED,
        waves: 64,
        wave_size: 16,
        links_per_set: 2,
        switches_per_set: 1,
        shrink: true,
    };
    let cables = cable_universe(big.topology());
    let top_ids = top_switch_universe(big.topology());
    let (e23_campaign_s, report) =
        time_once(|| run_randomized(&routability, &cables, &top_ids, &campaign_cfg, None));
    let report = report?;
    result_line("e23_sets_evaluated", report.sets_evaluated);
    result_line("e23_killers", report.killers.len());
    result_line("e23_campaign_s", format!("{e23_campaign_s:.3}"));
    all_ok &= verdict(
        report.waves_done == campaign_cfg.waves && !report.killers.is_empty(),
        "randomized campaign completes 64 waves and surfaces killers",
    );
    // Re-verify every shrunk killer independently: it must still violate
    // the property, and dropping any single fault must restore it.
    let mut e23_shrink_ok = true;
    for k in &report.killers {
        let min = k.minimal.as_ref().unwrap_or(&k.faults);
        e23_shrink_ok &= !routability.judge(min).holds;
        for i in 0..min.len() {
            e23_shrink_ok &= routability.judge(&min.without(i)).holds;
        }
    }
    let crit = report.criticality();
    result_line("e23_minimal_killers", crit.minimal_killers);
    all_ok &= verdict(
        e23_shrink_ok && crit.minimal_killers > 0,
        "every shrunk killer is 1-minimal (violates; every single removal restores)",
    );
    // Certification walks ~33k closed-form judgements in parallel; the
    // campaign adds 1024 drawn sets plus shrink evaluations. Both are
    // sub-second on a developer machine — the budget flags an accidental
    // return to per-judgement arena rebuilds while tolerating slow CI.
    const E23_BUDGET_S: f64 = 60.0;
    all_ok &= verdict(
        e23_certify_s < E23_BUDGET_S && e23_campaign_s < E23_BUDGET_S,
        "certification and campaign each stay under the 60 s budget",
    );

    // E24 — event-driven packet simulation at scale. The cycle engine scans
    // every switch output every cycle (the 10k-port ftree has 340k
    // channels), so its simulated host-cycles/sec collapses with fabric
    // size; the event engine only touches components with pending work and
    // must replay the cycle engine's semantics exactly — the full
    // `SimStats`, per-channel busy vector included — while clearing ≥10×
    // the host-cycles/sec on the same run.
    banner(
        "E24",
        "event-driven simulator: 10k-host differential, 100k-host run",
    );
    let e24_hosts = bn * br;
    let e24_cfg = SimConfig {
        warmup_cycles: 5,
        measure_cycles: 15,
        ..SimConfig::default()
    };
    let e24_cycles = e24_cfg.warmup_cycles + e24_cfg.measure_cycles;
    let e24_perm = patterns::shift(e24_hosts as u32, 3);
    let e24_routes = route_all(&big_yuan, &e24_perm)?;
    let e24_policy = Policy::from_assignment(&e24_routes);
    let e24_w = Workload::permutation(&e24_perm, 0.05);
    result_line("e24_fabric", format!("ftree({bn}+{bm}, {br})"));
    result_line("e24_hosts", e24_hosts);
    result_line("e24_cycles", e24_cycles);
    let (e24_cycle_s, cycle_stats) = time_once(|| {
        Simulator::new(big.topology(), e24_cfg, e24_policy.clone()).try_run(&e24_w, SEED)
    });
    let cycle_stats = cycle_stats?;
    let (e24_event_s, event_stats) = time_once(|| {
        EventSimulator::new(big.topology(), e24_cfg, e24_policy.clone()).try_run(&e24_w, SEED)
    });
    let event_stats = event_stats?;
    let e24_agree = cycle_stats == event_stats;
    all_ok &= verdict(
        e24_agree,
        "event engine replays the cycle engine exactly at 10k hosts",
    );
    all_ok &= verdict(
        event_stats.delivered_total > 0 && event_stats.conservation_ok(),
        "10k-host run delivers packets and conserves them",
    );
    let e24_cycle_hcs = e24_hosts as f64 * e24_cycles as f64 / e24_cycle_s;
    let e24_event_hcs = e24_hosts as f64 * e24_cycles as f64 / e24_event_s;
    let e24_speedup = e24_event_hcs / e24_cycle_hcs;
    result_line("e24_cycle_engine_s", format!("{e24_cycle_s:.3}"));
    result_line("e24_event_engine_s", format!("{e24_event_s:.3}"));
    result_line(
        "e24_cycle_host_cycles_per_sec",
        format!("{e24_cycle_hcs:.0}"),
    );
    result_line(
        "e24_event_host_cycles_per_sec",
        format!("{e24_event_hcs:.0}"),
    );
    result_line("e24_speedup", format!("{e24_speedup:.1}x"));
    all_ok &= verdict(
        e24_speedup >= 10.0,
        "event engine clears >= 10x the cycle engine's host-cycles/sec",
    );

    // First packet-level run at the north star's scale: the recursive
    // three-level construction at n = 18 exposes n⁴ + n³ = 110 808 host
    // ports. Build + route + simulate must fit the same class of budget as
    // E22; the cycle engine cannot even start here (its per-cycle channel
    // scan alone would dwarf the budget).
    let (e24_build_s, net) = time_once(|| RecursiveNonblocking::new(18));
    let net = net?;
    let r_hosts = net.num_leaves();
    let r_perm = patterns::shift(r_hosts as u32, 7);
    let (e24_route_s, r_routes) = time_once(|| route_all(&YuanRecursive::new(&net), &r_perm));
    let r_routes = r_routes?;
    let r_w = Workload::permutation(&r_perm, 0.02);
    let mut r_sim =
        EventSimulator::new(net.topology(), e24_cfg, Policy::from_assignment(&r_routes));
    let (e24_run_s, r_stats) = time_once(|| r_sim.try_run(&r_w, SEED));
    let r_stats = r_stats?;
    let e24_arena = r_sim.into_arena();
    let e24_topo_bytes = net.topology().memory_bytes();
    let e24_touched = e24_arena.touched_channels();
    let e24_recursive_s = e24_build_s + e24_route_s + e24_run_s;
    let e24_recursive_hcs = r_hosts as f64 * e24_cycles as f64 / e24_run_s;
    result_line("e24_recursive_hosts", r_hosts);
    result_line("e24_recursive_channels", net.topology().num_channels());
    result_line("e24_recursive_topo_bytes", e24_topo_bytes);
    result_line("e24_recursive_touched_channels", e24_touched);
    result_line("e24_recursive_build_s", format!("{e24_build_s:.3}"));
    result_line("e24_recursive_route_s", format!("{e24_route_s:.3}"));
    result_line("e24_recursive_run_s", format!("{e24_run_s:.3}"));
    result_line(
        "e24_recursive_host_cycles_per_sec",
        format!("{e24_recursive_hcs:.0}"),
    );
    all_ok &= verdict(
        r_hosts > 100_000,
        "recursive n=18 fabric exposes more than 100k host ports",
    );
    all_ok &= verdict(
        r_stats.delivered_total > 0 && r_stats.conservation_ok(),
        "100k-host event run delivers packets and conserves them",
    );
    const E24_BUDGET_S: f64 = 120.0;
    all_ok &= verdict(
        e24_recursive_s < E24_BUDGET_S,
        "100k-host build + route + simulate stays under the 120 s budget",
    );

    // E25 — sparse lazy simulator state. The n = 24 recursive fabric has
    // ~415M directed channels; dense per-channel state (queues, pointers,
    // wires, liveness) would need tens of gigabytes before the first packet
    // moves. With the paged arena only pages a packet actually crosses
    // materialize, so the same end-to-end budget that covered 110k hosts in
    // E24 must now cover 345k — and the per-channel busy vector, also
    // paged, keeps `SimStats` bit-identical to the dense engines (the
    // differential suites above are the proof; this gate is the scale).
    banner(
        "E25",
        "sparse lazy state: 345k-host gate, first million-host run",
    );
    let (e25_build_s, net24) = time_once(|| RecursiveNonblocking::new(24));
    let net24 = net24?;
    let e25_hosts = net24.num_leaves();
    let e25_channels = net24.topology().num_channels();
    let e25_topo_bytes = net24.topology().memory_bytes();
    result_line("e25_fabric", "recursive(24)");
    result_line("e25_hosts", e25_hosts);
    result_line("e25_channels", e25_channels);
    result_line("e25_topo_bytes", e25_topo_bytes);
    let e25_perm = patterns::shift(e25_hosts as u32, 11);
    let (e25_route_s, e25_routes) = time_once(|| route_all(&YuanRecursive::new(&net24), &e25_perm));
    let e25_routes = e25_routes?;
    let e25_w = Workload::permutation(&e25_perm, 0.02);
    // Recorded run: the touched-state gauges ride the same `--trace`
    // plumbing users see, and recording is differentially proven not to
    // perturb the run.
    let e25_reg = Registry::new();
    let mut e25_sim = EventSimulator::new(
        net24.topology(),
        e24_cfg,
        Policy::from_assignment(&e25_routes),
    );
    let (e25_run_s, e25_stats) = time_once(|| e25_sim.try_run_recorded(&e25_w, SEED, &e25_reg));
    let e25_stats = e25_stats?;
    let e25_snap = e25_reg.snapshot();
    let e25_touched = e25_snap.gauge("evsim.touched_channels").unwrap_or(0);
    let e25_state_bytes = e25_snap.gauge("evsim.state_bytes").unwrap_or(0);
    let e25_total_s = e25_build_s + e25_route_s + e25_run_s;
    result_line("e25_build_s", format!("{e25_build_s:.3}"));
    result_line("e25_route_s", format!("{e25_route_s:.3}"));
    result_line("e25_run_s", format!("{e25_run_s:.3}"));
    result_line("e25_touched_channels", e25_touched);
    result_line("e25_state_bytes", e25_state_bytes);
    all_ok &= verdict(
        e25_hosts > 331_000,
        "recursive n=24 fabric exposes more than 331k host ports",
    );
    all_ok &= verdict(
        e25_stats.delivered_total > 0 && e25_stats.conservation_ok(),
        "345k-host event run delivers packets and conserves them",
    );
    all_ok &= verdict(
        e25_touched > 0 && e25_touched < (e25_channels as u64) / 10,
        "paged arena touches fewer than a tenth of the channels",
    );
    const E25_BUDGET_S: f64 = 120.0;
    all_ok &= verdict(
        e25_total_s < E25_BUDGET_S,
        "345k-host build + route + simulate stays under the 120 s budget",
    );

    // First million-host packet run. A two-level ftree carries the port
    // count with far fewer switches than recursive n >= 35 would need, so
    // it is the cheapest fabric exposing 2^20 hosts; d-mod-k keeps routing
    // closed-form at this scale.
    let (mn, mm, mr) = (16usize, 16usize, 65_536usize);
    let (e25m_build_s, mft) = time_once(|| Ftree::new(mn, mm, mr));
    let mft = mft?;
    let m_hosts = mn * mr;
    let m_channels = mft.topology().num_channels();
    result_line("e25_million_fabric", format!("ftree({mn}+{mm}, {mr})"));
    result_line("e25_million_hosts", m_hosts);
    result_line("e25_million_channels", m_channels);
    result_line("e25_million_topo_bytes", mft.topology().memory_bytes());
    let m_perm = patterns::shift(m_hosts as u32, 13);
    let (e25m_route_s, m_routes) = time_once(|| route_all(&DModK::new(&mft), &m_perm));
    let m_routes = m_routes?;
    let m_w = Workload::permutation(&m_perm, 0.01);
    let mut m_sim =
        EventSimulator::new(mft.topology(), e24_cfg, Policy::from_assignment(&m_routes));
    let (e25m_run_s, m_stats) = time_once(|| m_sim.try_run(&m_w, SEED));
    let m_stats = m_stats?;
    let m_touched = m_sim.into_arena().touched_channels();
    let e25m_total_s = e25m_build_s + e25m_route_s + e25m_run_s;
    result_line("e25_million_build_s", format!("{e25m_build_s:.3}"));
    result_line("e25_million_route_s", format!("{e25m_route_s:.3}"));
    result_line("e25_million_run_s", format!("{e25m_run_s:.3}"));
    result_line("e25_million_touched_channels", m_touched);
    all_ok &= verdict(m_hosts >= 1 << 20, "fabric exposes at least 2^20 hosts");
    all_ok &= verdict(
        m_stats.delivered_total > 0 && m_stats.conservation_ok(),
        "million-host event run delivers packets and conserves them",
    );
    const E25_MILLION_BUDGET_S: f64 = 300.0;
    all_ok &= verdict(
        e25m_total_s < E25_MILLION_BUDGET_S,
        "million-host build + route + simulate stays under the 300 s budget",
    );
    // Peak RSS over the whole process — every fabric above included. Dense
    // per-channel state at n = 24 alone would add ~25 GiB; tripping this
    // ceiling in CI is the designed failure mode for such a regression.
    let e25_peak_rss = peak_rss_mib();
    const E25_PEAK_RSS_MIB: u64 = 24_576;
    match e25_peak_rss {
        Some(mib) => {
            result_line("e25_peak_rss_mib", mib);
            all_ok &= verdict(
                mib < E25_PEAK_RSS_MIB,
                "process peak RSS stays under the 24 GiB ceiling",
            );
        }
        None => result_line("e25_peak_rss_mib", "unavailable"),
    }

    // E26 — min-congestion unsplittable routing head-to-head at scale, on
    // the same 10k-port fabric E22–E24 exercise. Every pattern of the
    // standard adversarial suite is placed by each exact baseline router
    // and by the repaired `MinCongestion` solver warm-started from those
    // baselines; the warm start makes "repaired <= every projectable
    // baseline" a construction invariant, so this gate is really checking
    // that the plan's own bookkeeping, the projection, and the core
    // engine's independent load meter all agree at 10k hosts.
    banner(
        "E26",
        "min-congestion router head-to-head on the 10k-host fabric",
    );
    let e26_t0 = Instant::now();
    let e26_hosts = bn * br;
    let e26_suite = standard_suite(e26_hosts as u32);
    let big_smodk = SModK::new(&big);
    let big_adaptive = NonblockingAdaptive::new(&big)?;
    let e26_config = CongestionConfig::default();
    let mut e26_scratch = ContentionScratch::with_channels(big.topology().num_channels());
    let mut e26_pristine_ok = true;
    let mut e26_meter_agrees = true;
    let mut e26_repaired_worst = 0u32;
    let mut e26_moves_total = 0u64;
    let mut e26_rounds_total = 0u64;
    result_line("e26_fabric", format!("ftree({bn}+{bm}, {br})"));
    result_line("e26_patterns", e26_suite.len());
    for (pname, perm) in &e26_suite {
        let yuan_asg = route_all(&big_yuan, perm)?;
        let dmodk_asg = route_all(&big_dmodk, perm)?;
        let smodk_asg = route_all(&big_smodk, perm)?;
        let adaptive_asg = big_adaptive.route_pattern(perm)?;
        let yuan_max = scratch_max(&mut e26_scratch, &yuan_asg);
        let dmodk_max = scratch_max(&mut e26_scratch, &dmodk_asg);
        let smodk_max = scratch_max(&mut e26_scratch, &smodk_asg);
        let adaptive_max = scratch_max(&mut e26_scratch, &adaptive_asg);
        let seeds = [&yuan_asg, &dmodk_asg, &smodk_asg, &adaptive_asg];
        let router = MinCongestion::with_config(FtreeCandidates::pristine(&big), e26_config);
        let plan = router.plan_seeded(perm, &seeds)?;
        let repaired_max = scratch_max(&mut e26_scratch, &plan.assignment());
        result_line(
            &format!("e26_{pname}"),
            format!(
                "yuan={yuan_max} dmodk={dmodk_max} smodk={smodk_max} \
                 adaptive={adaptive_max} repaired={repaired_max}"
            ),
        );
        let baseline_best = yuan_max.min(dmodk_max).min(smodk_max).min(adaptive_max);
        e26_pristine_ok &= repaired_max <= baseline_best;
        e26_meter_agrees &= repaired_max == plan.max_link_load();
        e26_repaired_worst = e26_repaired_worst.max(repaired_max);
        e26_moves_total += plan.moves();
        e26_rounds_total += plan.rounds();
    }
    result_line("e26_repaired_worst_max_load", e26_repaired_worst);
    result_line("e26_moves_total", e26_moves_total);
    result_line("e26_rounds_total", e26_rounds_total);
    all_ok &= verdict(
        e26_pristine_ok,
        "repaired min-congestion <= every exact baseline on every pristine pattern",
    );
    all_ok &= verdict(
        e26_meter_agrees,
        "plan bookkeeping agrees with the core engine's load meter",
    );

    // Faulted scenario: kill one top switch. d-mod-k's residue classes no
    // longer spread — the fault-aware reroute piles the dead top's flows
    // onto surviving up-channels that already carry one flow each — while
    // the solver plans over the surviving candidate set from scratch.
    let mut e26_faults = FaultSet::new();
    e26_faults.fail_switch(big.top(0));
    let e26_view = FaultyView::new(big.topology(), &e26_faults);
    let e26_fperm = patterns::shift(e26_hosts as u32, 3);
    let e26_dmodk_faulted: Option<u32> = FaultAware::new(DModK::new(&big), &e26_view)
        .route_pattern_checked(&e26_fperm)
        .ok()
        .map(|asg| scratch_max(&mut e26_scratch, &asg));
    let e26_frouter =
        MinCongestion::with_config(FtreeCandidates::masked(&big, &e26_view), e26_config);
    let e26_fplan = e26_frouter.plan_seeded(&e26_fperm, &[])?;
    let e26_repaired_faulted = scratch_max(&mut e26_scratch, &e26_fplan.assignment());
    result_line(
        "e26_faulted_dmodk_max_load",
        e26_dmodk_faulted.map_or_else(|| "unroutable".to_string(), |v| v.to_string()),
    );
    result_line("e26_faulted_repaired_max_load", e26_repaired_faulted);
    // An unroutable d-mod-k counts as strictly worse than any placement.
    let e26_faulted_strict = e26_dmodk_faulted.is_none_or(|d| e26_repaired_faulted < d);
    all_ok &= verdict(
        e26_faulted_strict,
        "repaired strictly beats fault-aware d-mod-k with one dead top switch",
    );
    let e26_s = e26_t0.elapsed().as_secs_f64();
    result_line("e26_s", format!("{e26_s:.3}"));
    // ~7 plan calls over 2.56M candidate paths each; sub-10 s on a
    // developer machine. The budget trips if candidate collection or the
    // repair loop goes superlinear while still tolerating slow CI.
    const E26_BUDGET_S: f64 = 60.0;
    all_ok &= verdict(
        e26_s < E26_BUDGET_S,
        "head-to-head sweep stays under the 60 s budget",
    );

    // Machine-readable record for CI (hand-rolled: no serde_json in-tree).
    let json = format!(
        "{{\n  \"experiment\": \"E20\",\n  \"fabric\": \"ftree({n}+{m}, {r})\",\n  \
         \"ports\": {ports},\n  \"legacy_two_pair_sweep_ms\": {lts},\n  \
         \"engine_two_pair_sweep_ms\": {ets},\n  \"speedup\": {sp},\n  \
         \"legacy_audits_per_sec\": {la},\n  \"engine_audits_per_sec\": {ea},\n  \
         \"legacy_patterns_per_sec\": {lp},\n  \"engine_patterns_per_sec\": {ep},\n  \
         \"plain_build_audit_ms\": {pb},\n  \"recorded_build_audit_ms\": {rb},\n  \
         \"record_overhead_pct\": {op},\n  \"arena_bytes\": {ab},\n  \
         \"smoke_blocking_agree\": {sb},\n  \
         \"smoke_nonblocking_agree\": {sn},\n  \
         \"e22_cdg_fabric\": \"ftree({bn}+{bm}, {br})\",\n  \
         \"e22_yuan_cdg_deps\": {yd},\n  \
         \"e22_yuan_cdg_build_check_s\": {ys},\n  \
         \"e22_dmodk_cdg_deps\": {dd},\n  \
         \"e22_dmodk_cdg_build_check_s\": {ds},\n  \
         \"e22_deadlock_free\": {ef},\n  \
         \"e22_valley_witness_len\": {vw},\n  \
         \"e23_certified\": {cc},\n  \
         \"e23_certify_sets\": {cs},\n  \
         \"e23_certify_s\": {ct},\n  \
         \"e23_sets_evaluated\": {se},\n  \
         \"e23_killers\": {kl},\n  \
         \"e23_minimal_killers\": {mk},\n  \
         \"e23_shrink_ok\": {so},\n  \
         \"e23_campaign_s\": {cg},\n  \
         \"e24_hosts\": {e24h},\n  \
         \"e24_cycles\": {e24c},\n  \
         \"e24_stats_agree\": {e24a},\n  \
         \"e24_cycle_engine_s\": {e24cs},\n  \
         \"e24_event_engine_s\": {e24es},\n  \
         \"e24_cycle_host_cycles_per_sec\": {e24ch},\n  \
         \"e24_event_host_cycles_per_sec\": {e24eh},\n  \
         \"e24_speedup\": {e24sp},\n  \
         \"e24_recursive_hosts\": {e24rh},\n  \
         \"e24_recursive_topo_bytes\": {e24tb},\n  \
         \"e24_recursive_touched_channels\": {e24tc},\n  \
         \"e24_recursive_build_s\": {e24rb},\n  \
         \"e24_recursive_route_s\": {e24rr},\n  \
         \"e24_recursive_run_s\": {e24rs},\n  \
         \"e24_recursive_host_cycles_per_sec\": {e24rc},\n  \
         \"e25_hosts\": {e25h},\n  \
         \"e25_channels\": {e25ch},\n  \
         \"e25_topo_bytes\": {e25tb},\n  \
         \"e25_build_s\": {e25bs},\n  \
         \"e25_route_s\": {e25rs},\n  \
         \"e25_run_s\": {e25ns},\n  \
         \"e25_touched_channels\": {e25tc},\n  \
         \"e25_state_bytes\": {e25sb},\n  \
         \"e25_million_hosts\": {e25mh},\n  \
         \"e25_million_channels\": {e25mc},\n  \
         \"e25_million_build_s\": {e25mb},\n  \
         \"e25_million_route_s\": {e25mr},\n  \
         \"e25_million_run_s\": {e25mn},\n  \
         \"e25_million_touched_channels\": {e25mt},\n  \
         \"e25_peak_rss_mib\": {e25pr},\n  \
         \"e26_patterns\": {e26p},\n  \
         \"e26_pristine_ok\": {e26ok},\n  \
         \"e26_meter_agrees\": {e26ma},\n  \
         \"e26_repaired_worst_max_load\": {e26rw},\n  \
         \"e26_moves_total\": {e26mv},\n  \
         \"e26_rounds_total\": {e26rd},\n  \
         \"e26_faulted_dmodk_max_load\": {e26fd},\n  \
         \"e26_faulted_repaired_max_load\": {e26fr},\n  \
         \"e26_faulted_strict_win\": {e26fs},\n  \
         \"e26_s\": {e26t},\n  \"pass\": {pass}\n}}\n",
        ports = n * r,
        lts = json_f64(legacy_sweep_s * 1e3),
        ets = json_f64(engine_sweep_s * 1e3),
        sp = json_f64(speedup),
        la = json_f64(legacy_audits_per_sec),
        ea = json_f64(engine_audits_per_sec),
        lp = json_f64(legacy_patterns_per_sec),
        ep = json_f64(engine_patterns_per_sec),
        pb = json_f64(plain_build_s * 1e3),
        rb = json_f64(recorded_build_s * 1e3),
        op = json_f64(overhead_pct),
        ab = arena_bytes,
        sb = blocking_agree,
        sn = clean_agree,
        yd = yuan_analysis.num_deps,
        ys = json_f64(yuan_cdg_s),
        dd = dmodk_analysis.num_deps,
        ds = json_f64(dmodk_cdg_s),
        ef = yuan_analysis.is_free() && dmodk_analysis.is_free(),
        vw = valley_witness_len,
        cc = cert.certified(),
        cs = cert.sets_total,
        ct = json_f64(e23_certify_s),
        se = report.sets_evaluated,
        kl = report.killers.len(),
        mk = crit.minimal_killers,
        so = e23_shrink_ok,
        cg = json_f64(e23_campaign_s),
        e24h = e24_hosts,
        e24c = e24_cycles,
        e24a = e24_agree,
        e24cs = json_f64(e24_cycle_s),
        e24es = json_f64(e24_event_s),
        e24ch = json_f64(e24_cycle_hcs),
        e24eh = json_f64(e24_event_hcs),
        e24sp = json_f64(e24_speedup),
        e24rh = r_hosts,
        e24tb = e24_topo_bytes,
        e24tc = e24_touched,
        e24rb = json_f64(e24_build_s),
        e24rr = json_f64(e24_route_s),
        e24rs = json_f64(e24_run_s),
        e24rc = json_f64(e24_recursive_hcs),
        e25h = e25_hosts,
        e25ch = e25_channels,
        e25tb = e25_topo_bytes,
        e25bs = json_f64(e25_build_s),
        e25rs = json_f64(e25_route_s),
        e25ns = json_f64(e25_run_s),
        e25tc = e25_touched,
        e25sb = e25_state_bytes,
        e25mh = m_hosts,
        e25mc = m_channels,
        e25mb = json_f64(e25m_build_s),
        e25mr = json_f64(e25m_route_s),
        e25mn = json_f64(e25m_run_s),
        e25mt = m_touched,
        e25pr = e25_peak_rss.map_or_else(|| "null".to_string(), |v| v.to_string()),
        e26p = e26_suite.len(),
        e26ok = e26_pristine_ok,
        e26ma = e26_meter_agrees,
        e26rw = e26_repaired_worst,
        e26mv = e26_moves_total,
        e26rd = e26_rounds_total,
        e26fd = e26_dmodk_faulted.map_or_else(|| "null".to_string(), |v| v.to_string()),
        e26fr = e26_repaired_faulted,
        e26fs = e26_faulted_strict,
        e26t = json_f64(e26_s),
        pass = all_ok,
    );
    std::fs::write("BENCH_core.json", &json)?;
    result_line("written", "BENCH_core.json");

    Ok(all_ok)
}
