//! E2 / E3 — Reproduce Fig. 1 (Clos and folded-Clos structure) and Fig. 2
//! (the `ftree(n+1, r)` subgraph) as DOT artifacts plus structural checks.

use ftclos_bench::{banner, result_line, verdict};
use ftclos_topo::dot::{to_dot, DotOptions};
use ftclos_topo::{Clos, Ftree, StructureReport};
use std::path::Path;

/// Write a DOT artifact, exiting with a diagnostic instead of panicking
/// when the output tree is unwritable (read-only checkout, full disk, ...).
fn write_artifact(path: &Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let mut all_ok = true;

    banner(
        "E2",
        "Fig. 1 — Clos(n,m,r) and ftree(n+m,r), logical equivalence",
    );
    // The paper's example shapes: Clos(n, m, r) and its folded version.
    let (n, m, r) = (2usize, 3usize, 4usize);
    let clos = Clos::new(n, m, r).unwrap();
    let ftree = Ftree::new(n, m, r).unwrap();
    all_ok &= verdict(clos.folds_to(&ftree), "Clos(2,3,4) folds to ftree(2+3,4)");

    let rep = StructureReport::new(ftree.topology());
    result_line("ftree leaves", rep.leaves);
    result_line("ftree bottoms", rep.switches_per_level[&1]);
    result_line("ftree tops", rep.switches_per_level[&2]);
    result_line("ftree cables", rep.cables);
    all_ok &= verdict(
        rep.leaves == r * n && rep.switches_per_level[&1] == r && rep.switches_per_level[&2] == m,
        "ftree(n+m,r) has r·n leaves, r bottoms, m tops",
    );

    let out_dir = Path::new("target/figures");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let fig1a = to_dot(
        clos.topology(),
        &DotOptions {
            name: "clos_2_3_4".into(),
            merge_bidir: false,
            rank_by_level: true,
        },
    );
    let fig1b = to_dot(
        ftree.topology(),
        &DotOptions {
            name: "ftree_2p3_4".into(),
            ..DotOptions::default()
        },
    );
    write_artifact(&out_dir.join("fig1a_clos.dot"), &fig1a);
    write_artifact(&out_dir.join("fig1b_ftree.dot"), &fig1b);
    result_line(
        "artifacts",
        "target/figures/fig1a_clos.dot, fig1b_ftree.dot",
    );

    banner("E3", "Fig. 2 — the ftree(n+1, r) subgraph used by Lemma 2");
    let sub = Ftree::lemma2_subgraph(2, 5).unwrap();
    let rep = StructureReport::new(sub.topology());
    result_line("subgraph tops", rep.switches_per_level[&2]);
    all_ok &= verdict(
        rep.switches_per_level[&2] == 1,
        "subgraph keeps a single top-level switch (the root)",
    );
    all_ok &= verdict(
        sub.topology().out_channels(sub.top(0)).len() == 5,
        "root has r = 5 children",
    );
    let fig2 = to_dot(
        sub.topology(),
        &DotOptions {
            name: "ftree_np1_r".into(),
            ..DotOptions::default()
        },
    );
    write_artifact(&out_dir.join("fig2_subgraph.dot"), &fig2);
    result_line("artifact", "target/figures/fig2_subgraph.dot");

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
