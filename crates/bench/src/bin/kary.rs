//! E15 (extension) — multi-level fat-trees: k-ary n-trees and m-port
//! n-trees under generic up*/down* routing.
//!
//! The paper's analysis is phrased on two-level `ftree(n+m, r)`, with the
//! Discussion section extending to more levels by recursion. This
//! experiment exercises the general-XGFT substrate: deterministic
//! destination-digit routing on k-ary n-trees is blocking (two-pair
//! witnesses exist), path diversity matches `∏ w_i`, and the packet
//! simulator shows the same throughput gap at three levels that E11 shows
//! at two.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::search::find_blocking_two_pair;
use ftclos_routing::{SinglePathRouter, XgftRouter};
use ftclos_sim::{Policy, SimConfig, Simulator, Workload};
use ftclos_topo::{kary_ntree, mport_ntree};
use ftclos_traffic::{patterns, SdPair};
use rand::SeedableRng;

fn main() {
    let mut all_ok = true;

    banner("E15a", "k-ary n-tree structure and path diversity");
    let mut table = TextTable::new(["fabric", "leaves", "switches", "paths (farthest pair)"]);
    for (k, n) in [(2usize, 3usize), (3, 2), (4, 2), (2, 4)] {
        let t = kary_ntree(k, n).unwrap();
        let router = XgftRouter::dmod(&t);
        let far = (t.num_leaves() - 1) as u32;
        let paths = router.all_paths(SdPair::new(0, far));
        table.row([
            format!("{k}-ary {n}-tree"),
            t.num_leaves().to_string(),
            t.num_switches().to_string(),
            paths.len().to_string(),
        ]);
        // Diversity = k^(n-1) for full-height pairs.
        all_ok &= verdict(
            paths.len() == k.pow(n as u32 - 1),
            &format!(
                "{k}-ary {n}-tree: k^(n-1) = {} paths to the far leaf",
                k.pow(n as u32 - 1)
            ),
        );
    }
    print!("{}", table.render());

    banner(
        "E15b",
        "deterministic routing on multi-level trees is blocking",
    );
    for (k, n) in [(2usize, 3usize), (3, 2), (4, 2)] {
        let t = kary_ntree(k, n).unwrap();
        let router = XgftRouter::dmod(&t);
        let witness = find_blocking_two_pair(&router);
        all_ok &= verdict(
            witness.found_blocking(),
            &format!("{k}-ary {n}-tree + dest-digit routing has a blocking two-pair pattern"),
        );
    }
    // FT(4,3) too (the Table I family at height 3).
    let ft43 = mport_ntree(4, 3).unwrap();
    let router43 = XgftRouter::dmod(&ft43);
    all_ok &= verdict(
        find_blocking_two_pair(&router43).found_blocking(),
        "FT(4,3) + dest-digit routing blocks",
    );

    banner(
        "E15c",
        "packet throughput on a 3-level tree vs its port count",
    );
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_500,
        ..SimConfig::default()
    };
    let t = kary_ntree(4, 3).unwrap(); // 64 leaves
    let router = XgftRouter::dmod(&t);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    let mut sum = 0.0;
    for i in 0..5u64 {
        let perm = patterns::random_derangement(64, &mut rng);
        sum += Simulator::new(t.topology(), cfg, Policy::from_single_path(&router))
            .run(&Workload::permutation(&perm, 1.0), SEED + i)
            .accepted_throughput();
    }
    let thr = sum / 5.0;
    result_line("4-ary 3-tree dest-digit throughput", format!("{thr:.3}"));
    all_ok &= verdict(
        thr < 0.9,
        "3-level deterministic fat-tree stays below line rate (blocking)",
    );

    // Reference: route paths still valid everywhere.
    let mut checked = 0;
    for s in 0..64u32 {
        for d in 0..64u32 {
            let p = router.route(SdPair::new(s, d));
            p.validate(t.topology(), ftclos_topo::NodeId(s), ftclos_topo::NodeId(d))
                .unwrap();
            checked += 1;
        }
    }
    result_line("routes validated", checked);

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
