//! E10 — the Discussion-section recursive construction: a three-level
//! nonblocking network from `(n+n²)`-port switches.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::construct::NonblockingThreeLevel;
use ftclos_core::verify::is_nonblocking_deterministic;
use ftclos_traffic::patterns;
use rand::SeedableRng;

fn main() {
    let mut all_ok = true;

    banner("E10", "three-level recursive nonblocking network");
    let mut table = TextTable::new([
        "n",
        "radix",
        "ports n⁴+n³",
        "switches (measured)",
        "2n⁴+2n³+n²",
        "paper prose 2n⁴+3n³+n²",
    ]);
    for n in [1usize, 2, 3] {
        let net = NonblockingThreeLevel::new(n).unwrap();
        let formula = 2 * n.pow(4) + 2 * n.pow(3) + n.pow(2);
        let paper = 2 * n.pow(4) + 3 * n.pow(3) + n.pow(2);
        table.row([
            n.to_string(),
            net.switch_radix().to_string(),
            net.ports().to_string(),
            net.switches().to_string(),
            formula.to_string(),
            paper.to_string(),
        ]);
        all_ok &= verdict(
            net.ports() == n.pow(4) + n.pow(3),
            &format!("n={n}: ports match n⁴+n³"),
        );
        all_ok &= verdict(
            net.switches() == formula,
            &format!("n={n}: switch count matches r + n²(2n²+n) = 2n⁴+2n³+n²"),
        );
    }
    print!("{}", table.render());
    result_line(
        "note",
        "the paper's prose count 2n⁴+3n³+n² exceeds r + n²·(2n²+n) by n³ — see EXPERIMENTS.md",
    );

    banner("E10b", "nonblocking verification of the composed routing");
    let net = NonblockingThreeLevel::new(2).unwrap();
    all_ok &= verdict(
        is_nonblocking_deterministic(&net.router()),
        "n=2: complete Lemma 1 audit of the 3-level fabric passes",
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    for n in [2usize, 3] {
        let net = NonblockingThreeLevel::new(n).unwrap();
        let ports = net.ports() as u32;
        let mut max_load = 0u32;
        for _ in 0..50 {
            let perm = patterns::random_full(ports, &mut rng);
            let a = net.route(&perm).unwrap();
            max_load = max_load.max(a.max_channel_load());
        }
        for pat in patterns::StructuredPattern::ALL {
            if let Some(perm) = pat.generate(ports) {
                max_load = max_load.max(net.route(&perm).unwrap().max_channel_load());
            }
        }
        all_ok &= verdict(
            max_load <= 1,
            &format!("n={n}: 50 random + structured permutations contention-free"),
        );
    }

    banner(
        "E10c",
        "scaling: O(N²) N-port switches -> O(N²) ports, N = n+n²",
    );
    for n in [2usize, 4, 8] {
        let net = NonblockingThreeLevel::new(n).unwrap();
        let big_n = (n + n * n) as f64;
        let sw_ratio = net.switches() as f64 / (big_n * big_n);
        let port_ratio = net.ports() as f64 / (big_n * big_n);
        result_line(
            &format!("n={n}"),
            format!("switches/N² = {sw_ratio:.3}, ports/N² = {port_ratio:.3}"),
        );
        all_ok &= verdict(
            sw_ratio < 3.0 && port_ratio > 0.5 && port_ratio <= 1.0,
            &format!("n={n}: ratios bounded (both O(N²))"),
        );
    }

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
