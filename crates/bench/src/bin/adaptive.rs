//! E8 / E9 / E13 — NONBLOCKINGADAPTIVE (paper Fig. 4, Theorems 4-5,
//! Lemma 6).
//!
//! * E8: the algorithm routes every tested permutation with zero contention
//!   (exhaustive on a tiny fabric, randomized + structured at scale).
//! * E9: the number of top-level switches it consumes stays below `n²` and
//!   scales like `O(n^{2 - 1/(2(c+1))})` — we measure worst-case tops over
//!   random permutations for a sweep of `n` (at fixed `c`) and fit the
//!   exponent.
//! * E13: Lemma 6's digit-combinatorics property, checked by brute force
//!   over random digit sets.

use ftclos_analysis::{formulas, PowerFit, TextTable};
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::search::find_blocking_exhaustive;
use ftclos_routing::{NonblockingAdaptive, PatternRouter};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use rand::{Rng, SeedableRng};

fn main() {
    let mut all_ok = true;

    banner(
        "E8a",
        "Theorem 4 — exhaustive sweep on ftree(2+m, 3), 720 permutations",
    );
    let tiny = Ftree::new(2, 16, 3).unwrap();
    let tiny_router = NonblockingAdaptive::new(&tiny).unwrap();
    all_ok &= verdict(
        find_blocking_exhaustive(&tiny_router).is_none(),
        "no permutation blocks NONBLOCKINGADAPTIVE on the tiny fabric",
    );

    banner("E8b", "Theorem 4 — randomized/structured sweeps at scale");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    for (n, r) in [(3usize, 9usize), (4, 16), (5, 25), (4, 8)] {
        let ft = Ftree::new(n, 4 * n * n, r).unwrap(); // ample tops
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let ports = (n * r) as u32;
        let mut max_load = 0u32;
        for _ in 0..100 {
            let perm = patterns::random_full(ports, &mut rng);
            let a = router.route_pattern(&perm).unwrap();
            max_load = max_load.max(a.max_channel_load());
        }
        for pat in patterns::StructuredPattern::ALL {
            if let Some(perm) = pat.generate(ports) {
                let a = router.route_pattern(&perm).unwrap();
                max_load = max_load.max(a.max_channel_load());
            }
        }
        all_ok &= verdict(
            max_load <= 1,
            &format!("n={n} r={r}: 100 random + structured permutations contention-free"),
        );
    }

    banner(
        "E9",
        "Theorem 5 — top switches consumed vs n (c fixed at 2)",
    );
    // Keep c constant by choosing r = n² (so c = 2) across the sweep.
    let mut points = Vec::new();
    let mut table = TextTable::new([
        "n",
        "r=n²",
        "c",
        "worst tops used",
        "n²",
        "coarse bound",
        "paper O(n^1.833)",
    ]);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + 9);
    for n in [3usize, 4, 5, 6, 7, 8, 9, 10] {
        let r = n * n;
        let ft = Ftree::new(n, 1, r).unwrap(); // m irrelevant: we only plan
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let c = router.coder().c();
        assert_eq!(c, 2, "sweep keeps c fixed");
        let ports = (n * r) as u32;
        let mut worst = 0usize;
        for _ in 0..30 {
            let perm = patterns::random_full(ports, &mut rng);
            let plan = router.plan(&perm).unwrap();
            worst = worst.max(plan.tops_needed());
        }
        let coarse = formulas::adaptive_coarse_tops(n, c);
        table.row([
            n.to_string(),
            r.to_string(),
            c.to_string(),
            worst.to_string(),
            (n * n).to_string(),
            coarse.to_string(),
            format!("{:.1}", (n as f64).powf(formulas::adaptive_exponent(c))),
        ]);
        points.push((n as f64, worst as f64));
        // The asymptotic improvement: for large enough n the measured tops
        // drop below n² (the deterministic requirement).
        if n >= 6 {
            all_ok &= verdict(
                worst < n * n,
                &format!("n={n}: adaptive uses {worst} < n² = {}", n * n),
            );
        }
    }
    print!("{}", table.render());
    let fit = PowerFit::fit(&points).expect("fit");
    result_line(
        "measured exponent",
        format!("{:.3} (r² = {:.4})", fit.b, fit.r_squared),
    );
    result_line(
        "paper exponent",
        format!(
            "{:.3} (= 2 - 1/(2(c+1)) at c = 2)",
            formulas::adaptive_exponent(2)
        ),
    );
    all_ok &= verdict(
        fit.b < 2.0,
        "measured scaling exponent is below 2 (beats deterministic m = n²)",
    );

    banner(
        "E13",
        "Lemma 6 — digit combinatorics (randomized brute force)",
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + 13);
    let mut checked = 0usize;
    let mut holds = 0usize;
    for _ in 0..2_000 {
        let n = rng.gen_range(2usize..6);
        let c = rng.gen_range(1usize..4);
        let universe = (n as u64).pow(c as u32 + 1);
        let k = rng.gen_range(2usize..=(universe.min(24) as usize));
        // k distinct numbers of c+1 base-n digits.
        let mut set = std::collections::HashSet::new();
        while set.len() < k {
            set.insert(rng.gen_range(0..universe));
        }
        let digits = |x: u64, i: usize| (x / (n as u64).pow(i as u32)) % n as u64;
        // Best count: numbers with distinct d_0, or distinct (d_i - d_0)%n.
        let mut best = 0usize;
        let distinct_d0: std::collections::HashSet<u64> =
            set.iter().map(|&x| digits(x, 0)).collect();
        best = best.max(distinct_d0.len());
        for i in 1..=c {
            let keys: std::collections::HashSet<u64> = set
                .iter()
                .map(|&x| (digits(x, i) + n as u64 - digits(x, 0)) % n as u64)
                .collect();
            best = best.max(keys.len());
        }
        let required = (k as f64).powf(1.0 / (2.0 * (c as f64 + 1.0)));
        checked += 1;
        if best as f64 >= required - 1e-9 {
            holds += 1;
        }
    }
    result_line("random digit sets checked", checked);
    all_ok &= verdict(holds == checked, "Lemma 6 bound holds on every sampled set");

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
