//! E6 — Theorem 2 tightness: `m >= n²` is necessary and sufficient.
//!
//! *Sufficiency* is E4 (Theorem 3 routing at `m = n²`). Here we demonstrate
//! *necessity* empirically: for every `m < n²`, each deterministic routing
//! we implement admits a blocking permutation — found by the **complete**
//! two-pair search, so "no witness" would actually disprove blocking. We
//! also show the witness found is a real two-pair permutation that
//! contends, and that `m = n²` with the *wrong* routing (d-mod-k) still
//! blocks: the condition is about count *and* assignment.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict};
use ftclos_core::search::find_blocking_two_pair;
use ftclos_core::verify::is_nonblocking_deterministic;
use ftclos_routing::{route_all, DModK, SModK, YuanDeterministic};
use ftclos_topo::Ftree;

fn main() {
    let mut all_ok = true;

    banner(
        "E6",
        "Theorem 2 — every deterministic routing with m < n² blocks",
    );
    let mut table = TextTable::new(["n", "r", "m", "router", "blocking witness"]);
    for (n, r) in [(2usize, 5usize), (3, 7), (2, 8)] {
        let n2 = n * n;
        for m in 1..n2 {
            let ft = Ftree::new(n, m, r).unwrap();
            for (name, witness) in [
                ("d-mod-k", find_blocking_two_pair(&DModK::new(&ft))),
                ("s-mod-k", find_blocking_two_pair(&SModK::new(&ft))),
            ] {
                let found = witness.found_blocking();
                if let Some(perm) = witness.witness() {
                    let pairs = perm.pairs();
                    table.row([
                        n.to_string(),
                        r.to_string(),
                        m.to_string(),
                        name.to_string(),
                        format!("{} & {}", pairs[0], pairs[1]),
                    ]);
                }
                all_ok &= verdict(
                    found,
                    &format!("n={n} r={r} m={m} {name}: blocking permutation exists"),
                );
                // Double-check the witness really contends.
                if let Some(perm) = witness.into_witness() {
                    let load = match name {
                        "d-mod-k" => route_all(&DModK::new(&ft), &perm)
                            .unwrap()
                            .max_channel_load(),
                        _ => route_all(&SModK::new(&ft), &perm)
                            .unwrap()
                            .max_channel_load(),
                    };
                    all_ok &= verdict(
                        load >= 2,
                        &format!("n={n} r={r} m={m} {name}: witness contends"),
                    );
                }
            }
        }
        // At m = n² the right routing passes, the wrong one still fails.
        let ft = Ftree::new(n, n2, r).unwrap();
        all_ok &= verdict(
            is_nonblocking_deterministic(&YuanDeterministic::new(&ft).unwrap()),
            &format!("n={n} r={r} m=n²: Theorem 3 routing is nonblocking"),
        );
        all_ok &= verdict(
            find_blocking_two_pair(&DModK::new(&ft)).found_blocking(),
            &format!("n={n} r={r} m=n²: d-mod-k STILL blocks (assignment matters)"),
        );
    }
    print!("{}", table.render());

    banner("E6b", "Theorem 1 — small-top regime caps ports at 2(n+m)");
    // In the r <= 2n+1 regime the Lemma-2 counting forces m >= (r-1)n/2,
    // hence ports = rn <= 2(n+m): verify the arithmetic over a sweep.
    for n in 1..8usize {
        for r in 2..=(2 * n + 1) {
            let m_min = ((r - 1) * n).div_ceil(2);
            let ports = r * n;
            all_ok &= verdict(
                ports <= 2 * (n + m_min),
                &format!("n={n} r={r}: rn={ports} <= 2(n+m_min)={}", 2 * (n + m_min)),
            );
        }
    }

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
