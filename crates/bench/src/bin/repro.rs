//! Run every experiment binary in order and summarize PASS/FAIL.
//!
//! ```text
//! cargo run --release -p ftclos-bench --bin repro
//! ```

use std::process::Command;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "E1  Table I"),
    ("figures", "E2/E3  Figs. 1-2"),
    ("thm3", "E4  Theorem 3 / Fig. 3"),
    ("lemma2", "E5  Lemma 2"),
    ("thm2", "E6  Theorems 1-2"),
    ("multipath", "E7  Section IV.B"),
    ("adaptive", "E8/E9/E13  Fig. 4, Theorems 4-5, Lemma 6"),
    ("recursive", "E10  3-level recursion"),
    ("throughput", "E11  packet-level throughput"),
    ("blocking", "E12  blocking probability"),
    ("cost", "E14  cost scaling"),
    ("kary", "E15  multi-level fat-trees (extension)"),
    (
        "classical",
        "E16  classical centralized Clos hierarchy (context)",
    ),
    ("faults", "E17  degraded operation under failures"),
    ("churn", "E18  transient-fault churn and availability"),
    ("flowsim", "E19  fluid max-min fair delivered throughput"),
    (
        "coreperf",
        "E20-E24  contention engine, recording overhead, deadlock/fault \
         campaigns at scale, event-driven simulator at 10k/100k hosts",
    ),
    ("simval", "V1  simulator validation (HOL vs iSLIP)"),
    ("ablation", "A1-A3  design-choice ablations"),
];

fn main() {
    // Sibling experiment binaries live next to this one; if the path can't
    // be resolved (rare, but possible under exotic launchers) fall back to
    // cargo instead of panicking.
    let bin_dir = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(std::path::Path::to_path_buf));
    let mut failures = Vec::new();
    for (bin, label) in EXPERIMENTS {
        println!("\n################ {label} ({bin}) ################");
        let path = bin_dir.as_ref().map(|d| d.join(bin));
        let status = if let Some(path) = path.filter(|p| p.exists()) {
            Command::new(&path).status()
        } else {
            // Fall back to cargo run (slower, but works from any cwd).
            Command::new("cargo")
                .args(["run", "--release", "-q", "-p", "ftclos-bench", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                failures.push(*bin);
            }
        }
    }
    println!("\n################ SUMMARY ################");
    if failures.is_empty() {
        println!("all {} experiments PASS", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
