//! Run every experiment binary in order and summarize PASS/FAIL.
//!
//! ```text
//! cargo run --release -p ftclos-bench --bin repro
//! ```

use std::process::Command;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "E1  Table I"),
    ("figures", "E2/E3  Figs. 1-2"),
    ("thm3", "E4  Theorem 3 / Fig. 3"),
    ("lemma2", "E5  Lemma 2"),
    ("thm2", "E6  Theorems 1-2"),
    ("multipath", "E7  Section IV.B"),
    ("adaptive", "E8/E9/E13  Fig. 4, Theorems 4-5, Lemma 6"),
    ("recursive", "E10  3-level recursion"),
    ("throughput", "E11  packet-level throughput"),
    ("blocking", "E12  blocking probability"),
    ("cost", "E14  cost scaling"),
    ("kary", "E15  multi-level fat-trees (extension)"),
    (
        "classical",
        "E16  classical centralized Clos hierarchy (context)",
    ),
    ("faults", "E17  degraded operation under failures"),
    ("simval", "V1  simulator validation (HOL vs iSLIP)"),
    ("ablation", "A1-A3  design-choice ablations"),
];

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for (bin, label) in EXPERIMENTS {
        println!("\n################ {label} ({bin}) ################");
        let path = bin_dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo run (slower, but works from any cwd).
            Command::new("cargo")
                .args(["run", "--release", "-q", "-p", "ftclos-bench", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                failures.push(*bin);
            }
        }
    }
    println!("\n################ SUMMARY ################");
    if failures.is_empty() {
        println!("all {} experiments PASS", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
