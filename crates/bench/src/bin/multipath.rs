//! E7 — Section IV.B: traffic-oblivious multipath routing has the same
//! nonblocking condition as single-path routing.
//!
//! Evidence: (1) for any two cross-switch pairs sharing a source switch,
//! the spread-path unions violate Lemma 1 regardless of `m` — adversarial
//! packet timing can always collide them; (2) the packet simulator shows
//! random spreading still loses throughput on permutations where per-pair
//! paths overlap, while it *does* fix d-mod-k's worst case (better load
//! balance, unchanged nonblocking condition — exactly the paper's point).

use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_routing::{ObliviousMultipath, SpreadPolicy, YuanDeterministic};
use ftclos_sim::{Policy, SimConfig, Simulator, Workload};
use ftclos_topo::Ftree;
use ftclos_traffic::{patterns, Permutation, SdPair};
use rand::SeedableRng;

fn main() {
    let mut all_ok = true;

    banner(
        "E7a",
        "Lemma 1 over spread-path unions (any m, any two pairs, one switch)",
    );
    for m in [2usize, 4, 16, 64] {
        let ft = Ftree::new(2, m, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let spread = mp.spread_pattern(&perm).unwrap();
        let violation = spread.lemma1_violation();
        all_ok &= verdict(
            violation.is_some(),
            &format!("m={m}: two same-switch pairs share a spread channel (can block)"),
        );
    }

    banner(
        "E7b",
        "random permutations: violations persist for m < n² spreads",
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    let ft = Ftree::new(3, 4, 7).unwrap(); // m = 4 < n² = 9
    let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
    let mut with_violation = 0usize;
    let trials = 200usize;
    for _ in 0..trials {
        let perm = patterns::random_full(21, &mut rng);
        let spread = mp.spread_pattern(&perm).unwrap();
        if spread.lemma1_violation().is_some() {
            with_violation += 1;
        }
    }
    result_line(
        "violating permutations",
        format!("{with_violation}/{trials}"),
    );
    all_ok &= verdict(
        with_violation == trials,
        "every sampled full permutation admits adversarial-timing contention",
    );

    banner(
        "E7c",
        "packet level: spreading balances load but is not nonblocking",
    );
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_500,
        ..SimConfig::default()
    };
    // Funnel pattern: 4 sources of switch 0 target same-residue dests.
    let ft4 = Ftree::new(4, 4, 9).unwrap();
    let perm = Permutation::from_pairs(36, (0..4).map(|k| SdPair::new(k, (k + 1) * 4))).unwrap();
    let single = ftclos_routing::DModK::new(&ft4);
    let spread = ObliviousMultipath::new(&ft4, SpreadPolicy::Random);
    let s_single = Simulator::new(ft4.topology(), cfg, Policy::from_single_path(&single))
        .run(&Workload::permutation(&perm, 1.0), SEED);
    let s_spread = Simulator::new(ft4.topology(), cfg, Policy::from_multipath(&spread, true))
        .run(&Workload::permutation(&perm, 1.0), SEED);
    result_line(
        "d-mod-k throughput",
        format!("{:.3}", s_single.accepted_throughput()),
    );
    result_line(
        "random-spread throughput",
        format!("{:.3}", s_spread.accepted_throughput()),
    );
    all_ok &= verdict(
        s_spread.accepted_throughput() > s_single.accepted_throughput() + 0.2,
        "spreading improves the funnel pattern (better load balance)",
    );

    // But against the Theorem 3 fabric on a full permutation, spreading
    // still collides transiently while Yuan routing is perfectly clean.
    let ftnb = Ftree::new(3, 9, 7).unwrap();
    let yuan = YuanDeterministic::new(&ftnb).unwrap();
    let spread_nb = ObliviousMultipath::new(&ftnb, SpreadPolicy::Random);
    let mut rng2 = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + 1);
    let full = patterns::random_full(21, &mut rng2);
    let s_yuan = Simulator::new(ftnb.topology(), cfg, Policy::from_single_path(&yuan))
        .run(&Workload::permutation(&full, 1.0), SEED);
    let s_rand = Simulator::new(
        ftnb.topology(),
        cfg,
        Policy::from_multipath(&spread_nb, true),
    )
    .run(&Workload::permutation(&full, 1.0), SEED);
    result_line(
        "Theorem 3 routing throughput",
        format!("{:.3}", s_yuan.accepted_throughput()),
    );
    result_line(
        "random spread on same fabric",
        format!("{:.3}", s_rand.accepted_throughput()),
    );
    all_ok &= verdict(
        s_yuan.accepted_throughput() > 0.95,
        "Theorem 3 routing delivers ~line rate",
    );
    all_ok &= verdict(
        s_rand.accepted_throughput() < s_yuan.accepted_throughput(),
        "oblivious spreading pays transient-collision cost even with m = n²",
    );

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
