//! E11 — the paper's motivation (refs \[5\], \[7\]): delivered throughput under
//! permutation traffic. A nonblocking `ftree(n+n², r)` behaves like a
//! crossbar (~100%); a conventional rearrangeable fat-tree with static
//! `d mod k` routing delivers much less; local queue-adaptive routing
//! narrows but does not close the gap.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_routing::{DModK, ObliviousMultipath, SpreadPolicy, YuanDeterministic};
use ftclos_sim::{Policy, SimConfig, Simulator, Workload};
use ftclos_topo::{crossbar, Crossbar, Ftree};
use ftclos_traffic::patterns;
use rand::SeedableRng;

/// Crossbar reference router: two hops through the single switch.
struct XbRouter<'a>(&'a Crossbar);

impl ftclos_routing::SinglePathRouter for XbRouter<'_> {
    fn ports(&self) -> u32 {
        self.0.ports() as u32
    }
    fn route(&self, pair: ftclos_traffic::SdPair) -> ftclos_routing::Path {
        if pair.src == pair.dst {
            return ftclos_routing::Path::empty();
        }
        ftclos_routing::Path::new(vec![
            self.0.up_channel(pair.src as usize),
            self.0.down_channel(pair.dst as usize),
        ])
    }
    fn name(&self) -> &'static str {
        "crossbar"
    }
}

/// `FT(N, 2)` is `ftree(N/2 + N/2, N)`; we model it directly as that ftree
/// so all routers apply.
fn ft2_as_ftree(radix: usize) -> Ftree {
    Ftree::new(radix / 2, radix / 2, radix).unwrap()
}

fn main() {
    let mut all_ok = true;
    let cfg = SimConfig {
        warmup_cycles: 400,
        measure_cycles: 2_000,
        ..SimConfig::default()
    };

    banner(
        "E11",
        "accepted throughput on random permutations (mean over 10 perms, offered = 1.0)",
    );
    // Fabrics sized to a comparable port count (~36-40 ports).
    let xb = crossbar(36).unwrap();
    let nb = Ftree::new(3, 9, 12).unwrap(); // nonblocking: 36 ports
    let ft2 = ft2_as_ftree(12); // FT(12,2): 72 ports, n = m = 6 (rearrangeable)
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);

    let run_mean = |topo: &ftclos_topo::Topology,
                    make_policy: &dyn Fn() -> Policy,
                    ports: u32,
                    rng: &mut rand_chacha::ChaCha8Rng| {
        let mut sum = 0.0;
        let trials = 10;
        for t in 0..trials {
            let perm = patterns::random_derangement(ports, rng);
            let mut sim = Simulator::new(topo, cfg, make_policy());
            sum += sim
                .run(&Workload::permutation(&perm, 1.0), SEED + t)
                .accepted_throughput();
        }
        sum / trials as f64
    };

    let xb_router = XbRouter(&xb);
    let xbar_thr = run_mean(
        xb.topology(),
        &|| Policy::from_single_path(&xb_router),
        36,
        &mut rng,
    );
    let nb_router = YuanDeterministic::new(&nb).unwrap();
    let nb_thr = run_mean(
        nb.topology(),
        &|| Policy::from_single_path(&nb_router),
        36,
        &mut rng,
    );
    let ft_router = DModK::new(&ft2);
    let ft_thr = run_mean(
        ft2.topology(),
        &|| Policy::from_single_path(&ft_router),
        72,
        &mut rng,
    );
    let ft_mp = ObliviousMultipath::new(&ft2, SpreadPolicy::Random);
    let ft_mp_thr = run_mean(
        ft2.topology(),
        &|| Policy::from_multipath(&ft_mp, true),
        72,
        &mut rng,
    );
    let ft_adaptive_thr = run_mean(
        ft2.topology(),
        &|| Policy::queue_adaptive(&ft_mp),
        72,
        &mut rng,
    );

    let mut table = TextTable::new(["fabric", "routing", "accepted throughput"]);
    table.row(["crossbar(36)", "direct", &format!("{xbar_thr:.3}")]);
    table.row([
        "ftree(3+9,12) nonblocking",
        "Theorem 3",
        &format!("{nb_thr:.3}"),
    ]);
    table.row(["FT(12,2) rearrangeable", "d-mod-k", &format!("{ft_thr:.3}")]);
    table.row([
        "FT(12,2) rearrangeable",
        "random multipath",
        &format!("{ft_mp_thr:.3}"),
    ]);
    table.row([
        "FT(12,2) rearrangeable",
        "queue adaptive",
        &format!("{ft_adaptive_thr:.3}"),
    ]);
    print!("{}", table.render());

    all_ok &= verdict(xbar_thr > 0.95, "crossbar delivers ~line rate");
    all_ok &= verdict(nb_thr > 0.95, "nonblocking ftree matches the crossbar");
    all_ok &= verdict(
        ft_thr < nb_thr - 0.15,
        "static d-mod-k on the rearrangeable fat-tree is far below crossbar",
    );
    // Note: queue-adaptive selection with stale local signals can oscillate
    // below good static routing — consistent with the literature the paper
    // cites ([5]); the claim under test is only that EVERY conventional
    // scheme stays below crossbar behaviour.
    all_ok &= verdict(
        ft_mp_thr < 0.97 && ft_adaptive_thr < 0.97,
        "multipath and local-adaptive routing still do not reach crossbar behaviour",
    );
    all_ok &= verdict(
        ft_adaptive_thr > 0.3,
        "queue-adaptive remains functional (no collapse)",
    );

    banner(
        "E11b",
        "load-latency curves (nonblocking vs d-mod-k fat-tree)",
    );
    let rates = [0.2, 0.4, 0.6, 0.8, 0.95];
    let perm_nb = {
        let mut r2 = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + 99);
        patterns::random_derangement(36, &mut r2)
    };
    let perm_ft = {
        let mut r2 = rand_chacha::ChaCha8Rng::seed_from_u64(SEED + 100);
        patterns::random_derangement(72, &mut r2)
    };
    let nb_curve = ftclos_sim::sweep_injection_rates(
        nb.topology(),
        cfg,
        || Policy::from_single_path(&nb_router),
        |rate| Workload::permutation(&perm_nb, rate),
        &rates,
        SEED,
    );
    let ft_curve = ftclos_sim::sweep_injection_rates(
        ft2.topology(),
        cfg,
        || Policy::from_single_path(&ft_router),
        |rate| Workload::permutation(&perm_ft, rate),
        &rates,
        SEED,
    );
    let mut curve = TextTable::new([
        "offered",
        "NB accepted",
        "NB latency",
        "FT accepted",
        "FT latency",
    ]);
    for (a, b) in nb_curve.iter().zip(&ft_curve) {
        curve.row([
            format!("{:.2}", a.offered),
            format!("{:.3}", a.accepted),
            format!("{:.1}", a.mean_latency),
            format!("{:.3}", b.accepted),
            format!("{:.1}", b.mean_latency),
        ]);
    }
    print!("{}", curve.render());
    let nb_sat = nb_curve.last().unwrap();
    let ft_sat = ft_curve.last().unwrap();
    all_ok &= verdict(
        (nb_sat.accepted - nb_sat.offered).abs() < 0.05,
        "nonblocking fabric tracks offered load all the way up",
    );
    all_ok &= verdict(
        ft_sat.accepted < ft_sat.offered,
        "static fat-tree saturates below offered load",
    );

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
