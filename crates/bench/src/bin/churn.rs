//! E18 — transient-fault churn: link flapping, re-planning, and
//! availability.
//!
//! Where E17 injects *permanent* failures, E18 lets hardware come back:
//! links flap with exponential MTBF/MTTR, the path policy reacts per a
//! [`ReplanMode`], and the exact flow-level checker turns the trace into an
//! availability verdict.
//!
//! * **E18a** — availability analysis: a fault-free trace scores exactly
//!   1.0; a trace that transiently drops two uplink cables of one switch of
//!   an exactly-nonblocking `ftree(2+4, 3)` scores strictly below 1.0, and
//!   recovers the 1.0 verdict once `m` grows to `n² + n` (the minimum-`m`
//!   sweep finds that threshold).
//! * **E18b** — re-planning shootout on `ftree(3+12, 9)`: six uplink
//!   cables of one switch flap with outages longer than the packet TTL.
//!   Pinned routing keeps spraying packets onto the corpses; per-cycle
//!   re-planning readmits each link the moment it revives and strands
//!   whatever it routes there; hysteresis (readmission only after `K`
//!   stable cycles) never trusts a flapper and delivers strictly more
//!   than per-cycle.
//! * **E18c** — flap-rate sweep: the same contest under the seeded
//!   MTBF/MTTR generator at increasing flap rates, reporting delivered
//!   throughput and mean time-to-reconverge per mode.

use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::churn::{availability, min_m_for_availability, ChurnEvent};
use ftclos_routing::{ObliviousMultipath, SpreadPolicy};
use ftclos_sim::{
    Arbiter, ChurnConfig, ChurnReport, ChurnSchedule, Policy, ReplanMode, SimConfig, SimStats,
    Simulator, Workload,
};
use ftclos_topo::{Ftree, Transition};
use ftclos_traffic::patterns;

fn main() {
    let mut all_ok = true;

    banner(
        "E18a",
        "availability: fault-free vs transient Lemma-1 violation, min-m sweep",
    );
    let small = Ftree::new(2, 4, 3).unwrap();
    let clean = availability(&small, &[], 1_000, 30, SEED).unwrap();
    result_line("fault-free availability", clean.time_availability());
    all_ok &= verdict(
        clean.time_availability() == 1.0 && clean.epoch_availability() == 1.0,
        "a fault-free trace is 1.0 available",
    );

    // Drop two uplink cables of leaf switch 0 for cycles [300, 500): the
    // exactly-nonblocking m = n² fabric transiently blocks.
    let outage = |ft: &Ftree| {
        let mut events = Vec::new();
        for t in 0..2.min(ft.m()) {
            for ch in [ft.up_channel(0, t), ft.down_channel(0, t)] {
                events.push(ChurnEvent::new(300, ch, Transition::Down));
                events.push(ChurnEvent::new(500, ch, Transition::Up));
            }
        }
        events
    };
    let dented = availability(&small, &outage(&small), 1_000, 30, SEED).unwrap();
    result_line("transient-outage availability", dented.time_availability());
    all_ok &= verdict(
        dented.time_availability() < 1.0,
        "a transient double-cable outage dents availability below 1.0",
    );
    all_ok &= verdict(
        dented.worst_epoch().is_some_and(|e| e.start == 300),
        "the blocking interval is exactly the outage epoch",
    );

    match min_m_for_availability(2, 3, 8, 0.99, 1_000, 30, SEED, outage).unwrap() {
        Some((m, rep)) => {
            result_line("min m for 0.99 availability", m);
            all_ok &= verdict(
                m == 6 && rep.time_availability() == 1.0,
                "m = n² + n rides out the double-cable flap entirely",
            );
        }
        None => {
            all_ok &= verdict(false, "min-m sweep found no fabric meeting 0.99");
        }
    }

    banner(
        "E18b",
        "re-planning shootout on ftree(3+12, 9): pinned vs per-cycle vs hysteresis",
    );
    let ft = Ftree::new(3, 12, 9).unwrap();
    // Six uplink cables of switch 0 flap, staggered: up 60 cycles, down 100
    // (longer than the TTL, so whatever is queued on a dying link is lost).
    // Per-cycle re-planning re-trusts each link for the whole up-window and
    // strands its queue at every down; hysteresis with K = 200 > the
    // up-window never readmits a flapper after its first death.
    let mut schedule = ChurnSchedule::new();
    for (i, top) in (0..6).enumerate() {
        let flapper = ft.up_channel(0, top);
        let mut t = 400 + 25 * i as u64;
        while t < 3_000 {
            schedule.kill_link(t, ft.topology(), flapper);
            schedule.revive_link(t + 100, ft.topology(), flapper);
            t += 160;
        }
    }
    let pinned = run_mode(&ft, &schedule, ReplanMode::Pinned);
    let per_cycle = run_mode(&ft, &schedule, ReplanMode::PerCycle);
    let hysteresis = run_mode(&ft, &schedule, ReplanMode::Hysteresis { k: 200 });
    for (name, (stats, report)) in [
        ("pinned", &pinned),
        ("per-cycle", &per_cycle),
        ("hysteresis(200)", &hysteresis),
    ] {
        result_line(
            name,
            format!(
                "delivered {} / injected {}, timed-out {}, lost {}, reconverged {}/{}",
                stats.delivered_total,
                stats.injected_total,
                stats.timed_out_total,
                report.packets_lost(),
                report.reconverged(),
                report.transitions()
            ),
        );
    }
    all_ok &= verdict(
        pinned.0.conservation_ok()
            && per_cycle.0.conservation_ok()
            && hysteresis.0.conservation_ok(),
        "packet conservation holds across every transition (all modes)",
    );
    all_ok &= verdict(
        pinned.0.injected_total == per_cycle.0.injected_total
            && per_cycle.0.injected_total == hysteresis.0.injected_total,
        "with retry off the offered load is identical across modes",
    );
    all_ok &= verdict(
        hysteresis.0.delivered_total > per_cycle.0.delivered_total,
        "hysteresis delivers strictly more than per-cycle re-planning under flapping",
    );
    all_ok &= verdict(
        hysteresis.0.timed_out_total < per_cycle.0.timed_out_total,
        "damped readmission cuts timeouts vs per-cycle",
    );
    all_ok &= verdict(
        per_cycle.0.timed_out_total < pinned.0.timed_out_total,
        "any re-planning beats never re-planning",
    );

    banner(
        "E18c",
        "flap-rate sweep (MTBF/MTTR generator, 3 links, mttr 100)",
    );
    println!("  mtbf | mode            | delivered | timed-out | mean reconverge");
    let mut sweep_ok = true;
    for mtbf in [1_600u64, 800, 400, 200] {
        let schedule = ChurnSchedule::flapping_links(ft.topology(), 3, mtbf, 100, 3_000, SEED);
        for (name, mode) in [
            ("pinned", ReplanMode::Pinned),
            ("per-cycle", ReplanMode::PerCycle),
            ("hysteresis(150)", ReplanMode::Hysteresis { k: 150 }),
        ] {
            let (stats, report) = run_mode(&ft, &schedule, mode);
            sweep_ok &= stats.conservation_ok();
            println!(
                "  {mtbf:>4} | {name:<15} | {:>9} | {:>9} | {}",
                stats.delivered_total,
                stats.timed_out_total,
                match report.mean_reconverge_cycles() {
                    Some(c) => format!("{c:.0} cycles"),
                    None => "-".to_string(),
                }
            );
        }
    }
    all_ok &= verdict(sweep_ok, "conservation held for every sweep cell");

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}

/// One churn run on `ft` under `mode`: random multipath picks, VOQ
/// arbitration, TTL with retry off — every stranded packet is a loss, so
/// the modes contrast on delivered count alone. Retry off also keeps the
/// RNG stream identical across modes (picks only happen at injection), so
/// the offered load is exactly equal. Deterministic in `SEED`.
fn run_mode(ft: &Ftree, schedule: &ChurnSchedule, mode: ReplanMode) -> (SimStats, ChurnReport) {
    let mp = ObliviousMultipath::new(ft, SpreadPolicy::Random);
    let perm = patterns::shift(ft.num_leaves() as u32, 2);
    let cfg = SimConfig {
        warmup_cycles: 200,
        measure_cycles: 3_000,
        ttl_cycles: 50,
        drain: true,
        arbiter: Arbiter::Voq { iterations: 2 },
        ..SimConfig::default()
    };
    let churn = ChurnConfig {
        mode,
        epsilon: 0.1,
        recovery_window: 50,
    };
    Simulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, true))
        .try_run_churn(&Workload::permutation(&perm, 0.7), SEED, schedule, &churn)
        .unwrap()
}
