//! E1 — Regenerate the paper's Table I: sizes of nonblocking
//! `ftree(n+n², n+n²)` vs rearrangeable `FT(N, 2)` for 20/30/42-port
//! building-block switches.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict};
use ftclos_core::design;
use ftclos_topo::{mport_ntree, Ftree};

fn main() {
    banner("E1", "Table I — nonblocking ftree(n+n², n+n²) vs FT(N, 2)");

    let rows = design::table_one(&[20, 30, 42]);
    let mut table = TextTable::new([
        "radix",
        "n",
        "NB switches",
        "NB ports",
        "FT(N,2) switches",
        "FT(N,2) ports",
    ]);
    for row in &rows {
        table.row([
            row.radix.to_string(),
            row.nonblocking.n.to_string(),
            row.nonblocking.switches.to_string(),
            row.nonblocking.ports.to_string(),
            row.rearrangeable.switches.to_string(),
            row.rearrangeable.ports.to_string(),
        ]);
    }
    print!("{}", table.render());

    // Paper's printed values (radix, NB switches, NB ports, FT switches, FT ports).
    let paper = [
        (20usize, 36usize, 80usize, 30usize, 200usize),
        (30, 55, 150, 45, 450),
        (42, 88, 252, 63, 884),
    ];
    let mut all_ok = true;
    for (row, &(radix, nb_sw, nb_ports, ft_sw, ft_ports)) in rows.iter().zip(&paper) {
        assert_eq!(row.radix, radix);
        let ok_nb_ports = row.nonblocking.ports == nb_ports;
        let ok_ft_sw = row.rearrangeable.switches == ft_sw;
        all_ok &= verdict(
            ok_nb_ports && ok_ft_sw,
            &format!("radix {radix}: primary counts match the paper"),
        );
        if row.nonblocking.switches != nb_sw {
            result_line(
                &format!("note radix {radix}"),
                format!(
                    "paper prints {nb_sw} NB switches, formula 2n²+n gives {} (paper arithmetic slip at n=6)",
                    row.nonblocking.switches
                ),
            );
        }
        if row.rearrangeable.ports != ft_ports {
            result_line(
                &format!("note radix {radix}"),
                format!(
                    "paper prints {ft_ports} FT ports, formula N²/2 gives {} (paper arithmetic slip at N=42)",
                    row.rearrangeable.ports
                ),
            );
        }
    }

    // Cross-check the designs against actually-built topologies.
    for row in &rows {
        let nb = Ftree::new(
            row.nonblocking.n,
            row.nonblocking.n * row.nonblocking.n,
            row.nonblocking.n + row.nonblocking.n * row.nonblocking.n,
        )
        .expect("design is buildable");
        all_ok &= verdict(
            nb.num_leaves() == row.nonblocking.ports
                && nb.num_switches() == row.nonblocking.switches,
            &format!("radix {}: built ftree matches design", row.radix),
        );
        let ft = mport_ntree(row.radix, 2).expect("FT(N,2) is buildable");
        all_ok &= verdict(
            ft.num_leaves() == row.rearrangeable.ports
                && ft.num_switches() == row.rearrangeable.switches,
            &format!("radix {}: built FT(N,2) matches design", row.radix),
        );
    }

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
