//! E14 — cost scaling: `~2N` N-port switches give `N^{3/2}` nonblocking
//! ports (two levels); `O(N²)` switches give `O(N²)` ports (three levels);
//! comparison against FT(N,2)/FT(N,3).

use ftclos_analysis::cost::{three_level_scaling_ratios, two_level_scaling_ratios, CostModel};
use ftclos_analysis::{PowerFit, TextTable};
use ftclos_bench::{banner, result_line, verdict};

fn main() {
    let mut all_ok = true;

    banner(
        "E14a",
        "two-level scaling: switches/N -> 2, ports/N^1.5 -> 1 (N = n+n²)",
    );
    let mut table = TextTable::new([
        "n",
        "N=n+n²",
        "switches",
        "ports",
        "switches/N",
        "ports/N^1.5",
    ]);
    let mut pts_ports = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64] {
        let m = CostModel::two_level_nonblocking(n);
        let (s_ratio, p_ratio) = two_level_scaling_ratios(n);
        table.row([
            n.to_string(),
            (n + n * n).to_string(),
            m.switches.to_string(),
            m.ports.to_string(),
            format!("{s_ratio:.3}"),
            format!("{p_ratio:.3}"),
        ]);
        pts_ports.push(((n + n * n) as f64, m.ports as f64));
    }
    print!("{}", table.render());
    let fit = PowerFit::fit(&pts_ports).unwrap();
    result_line("ports vs N exponent", format!("{:.3} (paper: 1.5)", fit.b));
    all_ok &= verdict((fit.b - 1.5).abs() < 0.05, "two-level ports scale as N^1.5");
    let (s64, p64) = two_level_scaling_ratios(64);
    all_ok &= verdict(
        (s64 - 2.0).abs() < 0.1 && (p64 - 1.0).abs() < 0.15,
        "ratios approach (2, 1) at n = 64",
    );

    banner("E14b", "three-level scaling: O(N²) switches, O(N²) ports");
    let mut pts3 = Vec::new();
    for n in [2usize, 4, 8, 16, 32] {
        let m = CostModel::three_level_nonblocking(n);
        let (s_ratio, p_ratio) = three_level_scaling_ratios(n);
        result_line(
            &format!("n={n}"),
            format!(
                "switches {} (ratio {:.3}), ports {} (ratio {:.3})",
                m.switches, s_ratio, m.ports, p_ratio
            ),
        );
        pts3.push(((n + n * n) as f64, m.ports as f64));
    }
    let fit3 = PowerFit::fit(&pts3).unwrap();
    result_line(
        "three-level ports vs N exponent",
        format!("{:.3} (paper: 2)", fit3.b),
    );
    // ports/N² = n/(n+1) converges to 1 slowly, which biases the finite-size
    // fit slightly above 2; accept the asymptotic claim within 0.15.
    all_ok &= verdict((fit3.b - 2.0).abs() < 0.15, "three-level ports scale as N²");

    banner(
        "E14c",
        "cost of nonblocking vs rearrangeable at equal radix",
    );
    let mut table = TextTable::new([
        "radix N",
        "NB ports",
        "NB sw/port",
        "FT(N,2) ports",
        "FT(N,2) sw/port",
        "overhead x",
    ]);
    for n in [4usize, 5, 6, 10, 20] {
        let nb = CostModel::two_level_nonblocking(n);
        let ft = CostModel::ft2_same_radix(n).unwrap();
        let overhead = nb.switches_per_port() / ft.switches_per_port();
        table.row([
            nb.radix.to_string(),
            nb.ports.to_string(),
            format!("{:.3}", nb.switches_per_port()),
            ft.ports.to_string(),
            format!("{:.3}", ft.switches_per_port()),
            format!("{overhead:.2}"),
        ]);
        all_ok &= verdict(
            overhead > 1.0,
            &format!(
                "radix {}: nonblocking costs more per port (crossbar guarantee)",
                nb.radix
            ),
        );
    }
    print!("{}", table.render());

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
