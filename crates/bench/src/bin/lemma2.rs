//! E5 — Lemma 2: the maximum number of SD pairs one top-level switch can
//! route is at most `r(r-1)` when `r >= 2n+1` and at most `2nr` when
//! `r <= 2n+1`.
//!
//! For small shapes we compute the *exact* maximum (mode enumeration) and
//! compare against the paper's bound and the explicit `r(r-1)` type-(3)
//! construction; larger shapes get the greedy lower bound.

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict};
use ftclos_core::lemma2::{
    exact_max, greedy_max, is_routable_through_root, lemma2_bound, type3_construction,
};

fn main() {
    let mut all_ok = true;

    banner("E5", "Lemma 2 — max SD pairs through one top switch");
    let mut table = TextTable::new([
        "n",
        "r",
        "regime",
        "bound",
        "type3 r(r-1)",
        "greedy",
        "exact",
    ]);
    let shapes = [
        (1usize, 3usize),
        (1, 4),
        (1, 5),
        (2, 3),
        (2, 4),
        (2, 5),
        (2, 6),
        (3, 3),
        (3, 7),
        (3, 9),
        (4, 9),
        (4, 12),
    ];
    for &(n, r) in &shapes {
        let bound = lemma2_bound(n, r);
        let regime = if r > 2 * n { "r>=2n+1" } else { "r<=2n+1" };
        let t3 = type3_construction(n, r);
        assert!(is_routable_through_root(n, r, &t3));
        let greedy = greedy_max(n, r);
        let exact = exact_max(n, r, 500_000_000);
        table.row([
            n.to_string(),
            r.to_string(),
            regime.to_string(),
            bound.to_string(),
            t3.len().to_string(),
            greedy.len().to_string(),
            exact.map_or("-".to_string(), |e| e.to_string()),
        ]);
        all_ok &= verdict(
            t3.len() <= bound && greedy.len() <= bound,
            &format!("n={n} r={r}: constructions within the bound"),
        );
        if let Some(e) = exact {
            all_ok &= verdict(
                e <= bound,
                &format!("n={n} r={r}: exact max {e} <= bound {bound}"),
            );
            if r > 2 * n {
                all_ok &= verdict(
                    e == r * (r - 1),
                    &format!(
                        "n={n} r={r}: bound r(r-1) is TIGHT (exact == {})",
                        r * (r - 1)
                    ),
                );
            }
        }
    }
    print!("{}", table.render());

    // The counting consequence (Theorem 2's denominator): total pairs /
    // per-top max == n² in the large regime.
    banner(
        "E5b",
        "counting consequence: r(r-1)n² / r(r-1) = n² tops needed",
    );
    for (n, r) in [(2usize, 5usize), (3, 7), (4, 9)] {
        let total = r * (r - 1) * n * n;
        let per_top = lemma2_bound(n, r);
        result_line(
            &format!("n={n} r={r}"),
            format!(
                "{total} pairs / {per_top} per top = {} tops",
                total / per_top
            ),
        );
        all_ok &= verdict(
            total / per_top == n * n,
            &format!("n={n} r={r}: quotient is n²"),
        );
    }

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
