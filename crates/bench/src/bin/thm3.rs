//! E4 — Theorem 3 / Fig. 3: the explicit single-path deterministic routing
//! makes `ftree(n+n², r)` nonblocking.
//!
//! Three layers of evidence, strongest first:
//! 1. the complete Lemma 1 link audit over all `r(r-1)n²` SD pairs,
//! 2. exhaustive permutation sweeps on tiny fabrics,
//! 3. randomized + structured permutation sweeps on larger fabrics,
//!
//! plus the Fig. 3 census: each uplink/downlink of top switch `(i,j)`
//! carries exactly `r-1` SD pairs with one source (up) or one destination
//! (down).

use ftclos_analysis::TextTable;
use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_core::search::{find_blocking_exhaustive, find_blocking_two_pair};
use ftclos_core::verify::{is_nonblocking_deterministic, updown_discipline, LinkAudit};
use ftclos_routing::{route_all, SinglePathRouter, YuanDeterministic};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use rand::SeedableRng;

fn main() {
    let mut all_ok = true;

    banner("E4a", "Fig. 3 — SD pairs on the links of top switch (i,j)");
    let ft = Ftree::new(3, 9, 7).unwrap();
    let router = YuanDeterministic::new(&ft).unwrap();
    let audit = LinkAudit::build(&router);
    let mut table = TextTable::new(["link", "#SD pairs", "#sources", "#dests"]);
    // Sample top (1, 2) and bottom 0, as in Fig. 3's generic (i,j), v.
    let up = ft.up_channel(0, ft.top_index(ft.top_ij(1, 2)).unwrap());
    let down = ft.down_channel(ft.top_index(ft.top_ij(1, 2)).unwrap(), 0);
    let (us, ud) = audit.channel_census(up).unwrap();
    let (ds, dd) = audit.channel_census(down).unwrap();
    table.row([
        "bottom 0 -> top (1,2)".to_string(),
        (us.len().max(ud.len())).to_string(),
        us.len().to_string(),
        ud.len().to_string(),
    ]);
    table.row([
        "top (1,2) -> bottom 0".to_string(),
        (ds.len().max(dd.len())).to_string(),
        ds.len().to_string(),
        dd.len().to_string(),
    ]);
    print!("{}", table.render());
    all_ok &= verdict(
        us.len() == 1 && ud.len() == ft.r() - 1,
        "uplink: one source, r-1 destinations",
    );
    all_ok &= verdict(
        dd.len() == 1 && ds.len() == ft.r() - 1,
        "downlink: one destination, r-1 sources",
    );
    all_ok &= verdict(
        updown_discipline(&router, ft.topology()).is_ok(),
        "every uplink single-source, every downlink single-destination",
    );

    banner("E4b", "Lemma 1 audit (complete) across fabric sizes");
    for (n, r) in [(2usize, 5usize), (2, 8), (3, 7), (3, 12), (4, 9), (4, 20)] {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let ok = is_nonblocking_deterministic(&router);
        all_ok &= verdict(
            ok,
            &format!(
                "ftree({n}+{}, {r}): Lemma 1 audit passes (nonblocking)",
                n * n
            ),
        );
        all_ok &= verdict(
            find_blocking_two_pair(&router).is_nonblocking(),
            &format!(
                "ftree({n}+{}, {r}): no blocking two-pair pattern exists",
                n * n
            ),
        );
    }

    banner("E4c", "exhaustive permutation sweep on a tiny fabric");
    let tiny = Ftree::new(2, 4, 3).unwrap();
    let tiny_router = YuanDeterministic::new(&tiny).unwrap();
    let blocked = find_blocking_exhaustive(&tiny_router);
    result_line("permutations checked", "6! = 720");
    all_ok &= verdict(
        blocked.is_none(),
        "all 720 permutations of ftree(2+4,3) contention-free",
    );

    banner("E4d", "randomized + structured sweeps on ftree(4+16, 12)");
    let big = Ftree::new(4, 16, 12).unwrap();
    let big_router = YuanDeterministic::new(&big).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    let mut max_load = 0u32;
    let trials = 500usize;
    for _ in 0..trials {
        let perm = patterns::random_full(big.num_leaves() as u32, &mut rng);
        let a = route_all(&big_router, &perm).unwrap();
        max_load = max_load.max(a.max_channel_load());
    }
    result_line("random permutations", trials);
    result_line("max channel load observed", max_load);
    all_ok &= verdict(max_load <= 1, "500 random permutations: zero contention");
    for pat in patterns::StructuredPattern::ALL {
        if let Some(perm) = pat.generate(big.num_leaves() as u32) {
            let a = route_all(&big_router, &perm).unwrap();
            all_ok &= verdict(
                a.max_channel_load() <= 1,
                &format!("{pat:?} pattern contention-free"),
            );
        }
    }

    // Path-shape sanity: 4 hops cross-switch, 2 same-switch.
    let p = big_router.route(ftclos_traffic::SdPair::new(0, 47));
    all_ok &= verdict(p.len() == 4, "cross-switch paths have 4 hops");

    result_line("overall", if all_ok { "PASS" } else { "FAIL" });
    std::process::exit(i32::from(!all_ok));
}
