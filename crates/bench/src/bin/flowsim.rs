//! E19 — fluid flow-rate simulation: max-min fair delivered throughput
//! at datacenter scale.
//!
//! * **E19a** — delivered throughput vs `m`: sweep `ftree(3+m, 9)` for
//!   `m = n .. n²` under every routing scheme, averaging the mean
//!   delivered flow rate over seeded random permutations. Theorem 3's
//!   prediction is the right edge of the table: at `m = n²` the Yuan
//!   routing delivers every flow at full rate, while single-path mod-`k`
//!   schemes degrade below 1.0 somewhere in the sweep.
//! * **E19b** — differential spot checks: the fluid "all flows at rate
//!   1.0 over the complete two-pair family" decision must coincide with
//!   the exact Lemma 1 verdict, both on a blocking and a nonblocking
//!   fabric.
//! * **E19c** — scale + bench guard: solve 10,000-host `ftree(16+256,
//!   625)` (340k channels) under Yuan and `d mod k`, asserting wall-clock
//!   under 60 s per solve, and record the timings in
//!   `target/flowsim/e19_guard.json` so regressions are diffable.

use ftclos_bench::{banner, result_line, verdict, SEED};
use ftclos_flowsim::{check_fabric, solve_pattern, FluidReport};
use ftclos_routing::{
    DModK, GreedyLocalAdaptive, LinkLoadView, NonblockingAdaptive, ObliviousMultipath,
    RearrangeableRouter, SModK, SpreadPolicy, YuanDeterministic,
};
use ftclos_topo::{ChannelCapacities, Ftree};
use ftclos_traffic::{patterns, Permutation};
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

/// Random permutations averaged per (router, m) cell in E19a.
const PERMS_PER_CELL: usize = 8;

fn random_perms(ports: u32, count: usize) -> Vec<Permutation> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    (0..count)
        .map(|_| patterns::random_full(ports, &mut rng))
        .collect()
}

/// Mean delivered rate of `view` over `perms`, or `None` when any pattern
/// fails to route.
fn mean_delivered<V: LinkLoadView + ?Sized>(
    view: &V,
    perms: &[Permutation],
    caps: &ChannelCapacities,
) -> Option<(f64, f64)> {
    let mut sum = 0.0;
    let mut worst = 1.0f64;
    for (i, p) in perms.iter().enumerate() {
        let r = solve_pattern(view, &format!("random:{i}"), p, caps).ok()?;
        sum += r.mean_rate;
        worst = worst.min(r.worst_rate);
    }
    Some((sum / perms.len() as f64, worst))
}

fn cell(v: Option<(f64, f64)>) -> String {
    match v {
        Some((mean, _)) => format!("{mean:>7.4}"),
        None => format!("{:>7}", "n/a"),
    }
}

fn main() {
    let mut all_ok = true;

    banner(
        "E19a",
        "fluid delivered throughput vs m, ftree(3+m, 9), random permutations",
    );
    let n = 3usize;
    let r = 9usize;
    let ports = (n * r) as u32;
    let perms = random_perms(ports, PERMS_PER_CELL);
    println!(
        "  {:>3} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "m", "yuan", "dmodk", "smodk", "mpath", "greedy", "rearr", "adapt"
    );
    let mut dmodk_degrades = false;
    let mut yuan_full_at_nsq = false;
    let mut mpath_always_full = true;
    for m in n..=n * n {
        let ft = match Ftree::new(n, m, r) {
            Ok(ft) => ft,
            Err(e) => {
                eprintln!("cannot build ftree(3+{m}, 9): {e}");
                std::process::exit(1);
            }
        };
        let caps = ChannelCapacities::unit(ft.topology());
        let yuan = YuanDeterministic::new(&ft)
            .ok()
            .and_then(|router| mean_delivered(&router, &perms, &caps));
        let dmodk = mean_delivered(&DModK::new(&ft), &perms, &caps);
        let smodk = mean_delivered(&SModK::new(&ft), &perms, &caps);
        let mpath = mean_delivered(
            &ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin),
            &perms,
            &caps,
        );
        let greedy = mean_delivered(&GreedyLocalAdaptive::new(&ft), &perms, &caps);
        let rearr = RearrangeableRouter::new(&ft)
            .ok()
            .and_then(|router| mean_delivered(&router, &perms, &caps));
        let adapt = NonblockingAdaptive::new(&ft)
            .ok()
            .and_then(|router| mean_delivered(&router, &perms, &caps));
        println!(
            "  {:>3} {} {} {} {} {} {} {}",
            m,
            cell(yuan),
            cell(dmodk),
            cell(smodk),
            cell(mpath),
            cell(greedy),
            cell(rearr),
            cell(adapt)
        );
        if let Some((_, worst)) = dmodk {
            dmodk_degrades |= worst < 1.0;
        }
        if m == n * n {
            yuan_full_at_nsq = yuan.is_some_and(|(mean, worst)| mean == 1.0 && worst == 1.0);
        }
        mpath_always_full &= mpath.is_some_and(|(mean, _)| (mean - 1.0).abs() < 1e-9);
    }
    all_ok &= verdict(
        yuan_full_at_nsq,
        "m = n²: Theorem 3 routing delivers every flow at rate 1.0",
    );
    all_ok &= verdict(
        dmodk_degrades,
        "m < n² single-path d mod k degrades below 1.0 on some permutation",
    );
    all_ok &= verdict(
        mpath_always_full,
        "fluid multipath spreading sustains rate 1.0 for all m >= n (load n/m per uplink)",
    );

    banner(
        "E19b",
        "differential: fluid two-pair sweep vs exact Lemma 1 verdict",
    );
    let blocking = Ftree::new(2, 2, 3).unwrap();
    let fa = check_fabric(&DModK::new(&blocking), blocking.topology().num_channels());
    result_line(
        "dmodk on ftree(2+2,3) fluid-nonblocking",
        fa.fluid_nonblocking,
    );
    all_ok &= verdict(
        fa.agree() && !fa.fluid_nonblocking && fa.fluid_witness.is_some(),
        "fluid and exact agree the m = n fabric blocks (with witness)",
    );
    let clean = Ftree::new(2, 4, 3).unwrap();
    let yuan = YuanDeterministic::new(&clean).unwrap();
    let fa = check_fabric(&yuan, clean.topology().num_channels());
    result_line(
        "yuan on ftree(2+4,3) fluid-nonblocking",
        fa.fluid_nonblocking,
    );
    all_ok &= verdict(
        fa.agree() && fa.fluid_nonblocking,
        "fluid and exact agree the m = n² fabric is nonblocking",
    );

    banner(
        "E19c",
        "scale: 10,000-host ftree(16+256, 625), wall-clock guard",
    );
    let big = match Ftree::new(16, 256, 625) {
        Ok(ft) => ft,
        Err(e) => {
            eprintln!("cannot build ftree(16+256, 625): {e}");
            std::process::exit(1);
        }
    };
    result_line("hosts", big.num_leaves());
    result_line("channels", big.topology().num_channels());
    let caps = ChannelCapacities::unit(big.topology());
    let perm = {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
        patterns::random_full(big.num_leaves() as u32, &mut rng)
    };

    let mut guard_entries: Vec<String> = Vec::new();
    let mut timed = |label: &str, report: Result<FluidReport, String>, ms: f64| -> bool {
        match report {
            Ok(rep) => {
                result_line(
                    &format!("{label} wall-clock"),
                    format!(
                        "{ms:.0} ms ({} flows, {} entries, mean rate {:.4})",
                        rep.num_flows, rep.num_link_entries, rep.mean_rate
                    ),
                );
                guard_entries.push(format!(
                    "{{\"router\":\"{label}\",\"wall_ms\":{ms:.3},\"report\":{}}}",
                    rep.to_json()
                ));
                ms < 60_000.0
            }
            Err(e) => {
                eprintln!("{label}: {e}");
                false
            }
        }
    };

    let yuan_big = match YuanDeterministic::new(&big) {
        Ok(y) => y,
        Err(e) => {
            eprintln!("yuan unavailable on ftree(16+256, 625): {e}");
            std::process::exit(1);
        }
    };
    let t0 = Instant::now();
    let rep = solve_pattern(&yuan_big, "random", &perm, &caps).map_err(|e| e.to_string());
    let ok = timed("yuan-deterministic", rep, t0.elapsed().as_secs_f64() * 1e3);
    all_ok &= verdict(ok, "yuan solves 10,000 hosts in under a minute");

    let t0 = Instant::now();
    let rep = solve_pattern(&DModK::new(&big), "random", &perm, &caps).map_err(|e| e.to_string());
    let ok = timed("d-mod-k", rep, t0.elapsed().as_secs_f64() * 1e3);
    all_ok &= verdict(ok, "d mod k solves 10,000 hosts in under a minute");

    // Persist the guard so future runs can diff wall-clock regressions.
    let out_dir = Path::new("target/flowsim");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let guard = format!(
        "{{\"experiment\":\"E19\",\"config\":\"ftree(16+256,625)\",\"hosts\":{},\"channels\":{},\"budget_ms\":60000,\"solves\":[{}]}}\n",
        big.num_leaves(),
        big.topology().num_channels(),
        guard_entries.join(",")
    );
    let guard_path = out_dir.join("e19_guard.json");
    if let Err(e) = std::fs::write(&guard_path, &guard) {
        eprintln!("cannot write {}: {e}", guard_path.display());
        std::process::exit(1);
    }
    result_line("bench guard", guard_path.display());

    if !all_ok {
        std::process::exit(1);
    }
}
