//! Simulator speed: cycles of the packet engine per wall-clock second, at
//! full load, for fabric sizes a laptop study uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftclos_routing::YuanDeterministic;
use ftclos_sim::{Policy, SimConfig, Simulator, Workload};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cycles");
    for &(n, r) in &[(2usize, 5usize), (3, 12), (4, 20)] {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let ports = (n * r) as u32;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let perm = patterns::random_full(ports, &mut rng);
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 1_000,
            ..SimConfig::default()
        };
        group.throughput(Throughput::Elements(cfg.total_cycles()));
        group.bench_with_input(BenchmarkId::new("ftree_full_load", ports), &perm, |b, p| {
            b.iter(|| {
                let mut sim = Simulator::new(ft.topology(), cfg, Policy::from_single_path(&router));
                black_box(sim.run(&Workload::permutation(p, 1.0), 7))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
