//! Contention-engine cost: arena build, epoch-stamped recounts and
//! per-pattern checks, and the engine vs legacy two-pair blocking sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftclos_bench::SEED;
use ftclos_core::search::{find_blocking_two_pair, find_blocking_two_pair_legacy};
use ftclos_core::verify::find_contention;
use ftclos_core::{ContentionEngine, ContentionScratch};
use ftclos_routing::{route_all, PathArena, YuanDeterministic};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena");
    for &(n, r) in &[(2usize, 5usize), (3, 7), (4, 9)] {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let ports = n * r;
        group.bench_with_input(BenchmarkId::new("build", ports), &router, |b, rt| {
            b.iter(|| black_box(PathArena::build(rt).unwrap()))
        });
        let mut engine = ContentionEngine::new(&router).unwrap();
        group.bench_function(BenchmarkId::new("recount", ports), |b| {
            b.iter(|| {
                engine.recount();
                black_box(engine.lemma1_violation())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pattern_check");
    let ft = Ftree::new(4, 16, 9).unwrap();
    let yuan = YuanDeterministic::new(&ft).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(SEED);
    let perm = patterns::random_full(36, &mut rng);
    let assignment = route_all(&yuan, &perm).unwrap();
    group.bench_function("legacy_hashmap", |b| {
        b.iter(|| black_box(find_contention(&assignment)))
    });
    let mut scratch = ContentionScratch::with_channels(ft.topology().num_channels());
    group.bench_function("epoch_stamped", |b| {
        b.iter(|| black_box(scratch.find_contention(&assignment)))
    });
    group.finish();

    let mut group = c.benchmark_group("two_pair_sweep");
    group.sample_size(10);
    group.bench_function("engine", |b| {
        b.iter(|| black_box(find_blocking_two_pair(&yuan)))
    });
    group.bench_function("legacy", |b| {
        b.iter(|| black_box(find_blocking_two_pair_legacy(&yuan)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
