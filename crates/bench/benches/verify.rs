//! Verification cost: the complete Lemma 1 audit (all r(r-1)n² pairs) and
//! the complete two-pair blocking search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftclos_core::search::find_blocking_two_pair;
use ftclos_core::verify::{is_nonblocking_deterministic, LinkAudit};
use ftclos_routing::{DModK, YuanDeterministic};
use ftclos_topo::Ftree;
use std::hint::black_box;

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma1_audit");
    for &(n, r) in &[(2usize, 5usize), (3, 7), (4, 9)] {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let ports = n * r;
        group.bench_with_input(BenchmarkId::new("audit_build", ports), &router, |b, rt| {
            b.iter(|| black_box(LinkAudit::build(rt)))
        });
        group.bench_with_input(
            BenchmarkId::new("full_nonblocking_check", ports),
            &router,
            |b, rt| b.iter(|| black_box(is_nonblocking_deterministic(rt))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("two_pair_search");
    for &(n, r) in &[(2usize, 5usize), (3, 7)] {
        // A blocking router: search succeeds early.
        let ft = Ftree::new(n, n, r).unwrap();
        let dmodk = DModK::new(&ft);
        group.bench_with_input(BenchmarkId::new("finds_witness", n * r), &dmodk, |b, rt| {
            b.iter(|| black_box(find_blocking_two_pair(rt)))
        });
        // A nonblocking router: search must scan everything.
        let ft_nb = Ftree::new(n, n * n, r).unwrap();
        let yuan = YuanDeterministic::new(&ft_nb).unwrap();
        group.bench_with_input(BenchmarkId::new("exhausts_clean", n * r), &yuan, |b, rt| {
            b.iter(|| black_box(find_blocking_two_pair(rt)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
