//! Control-plane cost: time to route one full permutation under each
//! routing discipline. Distributed schemes (Theorem 3, d-mod-k) are cheap
//! per pair; NONBLOCKINGADAPTIVE pays the greedy partition search; the
//! centralized edge-coloring pays the global Kempe-chain computation — the
//! very "centralized controller" cost the paper's setting rules out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftclos_routing::{
    route_all, DModK, NonblockingAdaptive, PatternRouter, RearrangeableRouter, YuanDeterministic,
};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_full_permutation");
    for &n in &[2usize, 4, 6] {
        let r = 2 * n + 1;
        let ft = Ftree::new(n, n * n, r).unwrap();
        let ports = (n * r) as u32;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let perm = patterns::random_full(ports, &mut rng);

        let yuan = YuanDeterministic::new(&ft).unwrap();
        group.bench_with_input(BenchmarkId::new("yuan", ports), &perm, |b, p| {
            b.iter(|| black_box(route_all(&yuan, p).unwrap()))
        });

        let dmodk = DModK::new(&ft);
        group.bench_with_input(BenchmarkId::new("dmodk", ports), &perm, |b, p| {
            b.iter(|| black_box(route_all(&dmodk, p).unwrap()))
        });

        // Adaptive plan (logical only — what each input switch computes).
        let big = Ftree::new(n, 4 * n * n, r).unwrap();
        let adaptive = NonblockingAdaptive::new(&big).unwrap();
        group.bench_with_input(BenchmarkId::new("adaptive_plan", ports), &perm, |b, p| {
            b.iter(|| black_box(adaptive.plan(p).unwrap()))
        });

        // Centralized rearrangeable (needs m >= n only).
        let benes = Ftree::new(n, n, r).unwrap();
        let central = RearrangeableRouter::new(&benes).unwrap();
        group.bench_with_input(BenchmarkId::new("edge_coloring", ports), &perm, |b, p| {
            b.iter(|| black_box(central.route_pattern(p).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
