//! Topology construction cost: building fabrics and compiling forwarding
//! tables (the "boot time" of a simulated cluster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftclos_routing::{ForwardingTables, YuanDeterministic};
use ftclos_topo::{kary_ntree, Ftree, RecursiveNonblocking};
use std::hint::black_box;

fn bench_topo(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_topology");
    for &n in &[4usize, 8, 16] {
        let r = n + n * n;
        group.bench_with_input(BenchmarkId::new("ftree_n_plus_n2", n * r), &n, |b, &n| {
            b.iter(|| black_box(Ftree::new(n, n * n, n + n * n).unwrap()))
        });
    }
    for &k in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::new("kary_3tree", k * k * k), &k, |b, &k| {
            b.iter(|| black_box(kary_ntree(k, 3).unwrap()))
        });
    }
    for &n in &[2usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("recursive_3level", n.pow(4) + n.pow(3)),
            &n,
            |b, &n| b.iter(|| black_box(RecursiveNonblocking::new(n).unwrap())),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("compile_forwarding_tables");
    for &(n, r) in &[(2usize, 5usize), (3, 7)] {
        let ft = Ftree::new(n, n * n, r).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        group.bench_with_input(BenchmarkId::new("yuan", n * r), &router, |b, rt| {
            b.iter(|| black_box(ForwardingTables::compile(rt, ft.topology()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topo);
criterion_main!(benches);
