//! Event-driven simulator core for folded-Clos fabrics at 100k+ hosts.
//!
//! The cycle-level engine in `ftclos-sim` sweeps every channel of the
//! fabric every cycle — exact, simple, and `O(channels)` per cycle, which
//! is fine at thousands of hosts and hopeless at a hundred thousand
//! (a 3-level recursive nonblocking fabric for ~100k hosts has tens of
//! millions of directed channels, almost all of them idle in any given
//! cycle). This crate keeps the *semantics* and changes the *schedule*:
//!
//! * [`EventSimulator`] tracks exactly which components have pending work
//!   (non-empty queues, queued injections) and visits only those, and
//! * [`EventWheel`] orders future wake-ups (packet ready times, wire
//!   releases, TTL deadlines, fault transitions) so the drain phase can
//!   fast-forward over provably-inert cycles instead of executing them.
//!
//! The engine is a *replay*, not a reimplementation: for identical inputs
//! it reproduces the cycle engine's [`ftclos_sim::SimStats`] exactly —
//! every counter, every latency percentile, every per-channel busy count,
//! and every error, stall diagnoses included. That contract is enforced by
//! the differential tests in this crate and in `tests/evsim_differential.rs`
//! at the workspace root; the cycle engine stays on as the oracle.
//!
//! It shares the whole `ftclos-sim` vocabulary — [`ftclos_sim::Workload`],
//! [`ftclos_sim::Policy`], [`ftclos_sim::FaultSchedule`],
//! [`ftclos_sim::ChurnSchedule`], [`ftclos_sim::SimConfig`],
//! [`ftclos_sim::SimError`] — so existing workloads, fault campaigns, and
//! churn studies run unchanged on either engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod wheel;

pub use engine::EventSimulator;
pub use wheel::EventWheel;
