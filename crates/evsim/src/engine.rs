//! The event-driven engine: exact replay of the cycle engine's semantics,
//! touching only components with pending work.
//!
//! # Exactness contract
//!
//! [`EventSimulator`] is **bit-for-bit equivalent** to
//! [`ftclos_sim::Simulator`]: for identical topology, configuration,
//! policy, workload, seed, and fault schedule it produces an identical
//! [`SimStats`] (every field, `channel_busy` included), an identical
//! [`ChurnReport`], and identical [`SimError`]s — the cycle engine is the
//! differential oracle, not an approximation target. The speedup comes
//! purely from *where work is looked for*, never from changing what work
//! happens:
//!
//! * **Active sets** — only channels with queued packets and leaves with
//!   queued injections are visited. The cycle engine's `O(channels)` sweep
//!   per cycle becomes `O(active)`; on a 100k-host fabric with ~76M
//!   directed channels and a few thousand packets in flight, that is the
//!   difference between hours and seconds per cycle.
//! * **Grant worklist** — head-of-line arbitration is re-derived from the
//!   requesting queue heads (a `BTreeMap` keyed by output channel,
//!   processed in ascending id order), which is provably the same grant
//!   sequence as the oracle's full ascending output sweep.
//! * **Drain fast-forward** — once injection stops, the engine consults
//!   the [`EventWheel`] (packet ready times, wire release times, TTL
//!   deadlines, scheduled fault transitions) and jumps over cycles in
//!   which no state can change. The stall watchdog keeps exact cycle
//!   accounting across jumps, so a wedged run reports
//!   [`SimError::Stalled`] at the same cycle with the same strand graph.
//!
//! Injection cycles are never skipped: Bernoulli injection consumes the
//! seeded RNG stream every cycle at every leaf, and replaying that stream
//! exactly is what keeps the two engines interchangeable under one seed.

use crate::wheel::EventWheel;
use ftclos_obs::{Noop, Recorder};
use ftclos_routing::LinkAdmission;
use ftclos_sim::{
    build_report, stall_report, ChannelBusy, ChurnConfig, ChurnReport, ChurnSchedule, EpochMark,
    FaultSchedule, Packet, PagedVec, Policy, SimArena, SimConfig, SimError, SimStats, StallReport,
    Workload,
};
use ftclos_topo::{ChannelId, NodeId, Topology, Transition};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Cumulative totals already flushed to a [`Recorder`] under `evsim.*`
/// names; each flush pushes only the delta (see the cycle engine's
/// equivalent for the pattern).
#[derive(Clone, Copy, Debug, Default)]
struct FlushedTotals {
    injected: u64,
    delivered: u64,
    timed_out: u64,
    retries: u64,
    abandoned: u64,
    refusals: u64,
}

impl FlushedTotals {
    fn flush<R: Recorder>(&mut self, rec: &R, stats: &SimStats) -> Result<(), SimError> {
        let delta = |name: &'static str, total: u64, seen: u64| {
            total.checked_sub(seen).ok_or_else(|| {
                SimError::invariant(format!("recorder counter {name} moved backwards"))
            })
        };
        rec.add(
            "evsim.injected",
            delta("evsim.injected", stats.injected_total, self.injected)?,
        );
        rec.add(
            "evsim.delivered",
            delta("evsim.delivered", stats.delivered_total, self.delivered)?,
        );
        rec.add(
            "evsim.timed_out",
            delta("evsim.timed_out", stats.timed_out_total, self.timed_out)?,
        );
        rec.add(
            "evsim.retries",
            delta("evsim.retries", stats.retries_total, self.retries)?,
        );
        rec.add(
            "evsim.abandoned",
            delta("evsim.abandoned", stats.abandoned_total, self.abandoned)?,
        );
        rec.add(
            "evsim.refusals",
            delta("evsim.refusals", stats.injection_refusals, self.refusals)?,
        );
        rec.gauge("evsim.in_flight", in_flight(stats)?);
        self.injected = stats.injected_total;
        self.delivered = stats.delivered_total;
        self.timed_out = stats.timed_out_total;
        self.retries = stats.retries_total;
        self.abandoned = stats.abandoned_total;
        self.refusals = stats.injection_refusals;
        Ok(())
    }
}

/// Packets currently inside the network, with the subtraction checked.
fn in_flight(stats: &SimStats) -> Result<u64, SimError> {
    stats
        .injected_total
        .checked_sub(stats.delivered_total)
        .and_then(|left| left.checked_sub(stats.abandoned_total))
        .ok_or_else(|| {
            SimError::invariant("delivered + abandoned exceed injected (counter underflow)")
        })
}

/// Event-driven simulator over a [`Topology`] with a path [`Policy`].
///
/// Construction and every `try_run*` entry point mirror
/// [`ftclos_sim::Simulator`] one-to-one, so callers switch engines by
/// switching the type and nothing else. See the module docs for the
/// exactness contract.
pub struct EventSimulator<'a> {
    topo: &'a Topology,
    cfg: SimConfig,
    policy: Policy,
    arena: SimArena,
}

impl<'a> EventSimulator<'a> {
    /// Create a simulator. The policy must cover every pair the workload
    /// can generate (unrouteable injections are counted as refusals).
    pub fn new(topo: &'a Topology, cfg: SimConfig, policy: Policy) -> Self {
        Self::with_arena(topo, cfg, policy, SimArena::new())
    }

    /// Create a simulator reusing a [`SimArena`] from a previous run —
    /// repeated runs through one arena recycle state pages instead of
    /// reallocating them. Semantically identical to
    /// [`EventSimulator::new`].
    pub fn with_arena(topo: &'a Topology, cfg: SimConfig, policy: Policy, arena: SimArena) -> Self {
        Self {
            topo,
            cfg,
            policy,
            arena,
        }
    }

    /// Recover the arena (and its recycled pages) for the next simulator.
    pub fn into_arena(self) -> SimArena {
        self.arena
    }

    /// Run one simulation and return its statistics.
    ///
    /// # Panics
    /// On an invalid configuration or a broken engine invariant — use
    /// [`EventSimulator::try_run`] for the structured-error form.
    pub fn run(&mut self, workload: &Workload, seed: u64) -> SimStats {
        match self.try_run(workload, seed) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`EventSimulator::run`].
    ///
    /// # Errors
    /// [`SimError::Config`] for an invalid [`SimConfig`];
    /// [`SimError::Invariant`] if the engine catches itself in an
    /// inconsistent state; [`SimError::Stalled`] when the watchdog fires.
    pub fn try_run(&mut self, workload: &Workload, seed: u64) -> Result<SimStats, SimError> {
        self.try_run_with_faults(workload, seed, &FaultSchedule::new())
    }

    /// [`EventSimulator::try_run`] with instrumentation: the run records
    /// under span `evsim.run`, with cumulative counters (`evsim.injected`,
    /// `evsim.delivered`, `evsim.timed_out`, `evsim.retries`,
    /// `evsim.abandoned`, `evsim.refusals`, `evsim.cycles`), the
    /// `evsim.in_flight` gauge, activity accounting
    /// (`evsim.skipped_cycles`, `evsim.busy_component_cycles`,
    /// `evsim.idle_component_cycles`), and one recorder epoch per
    /// liveness-transition cycle plus a final `end` epoch. With [`Noop`]
    /// this is exactly `try_run`.
    ///
    /// # Errors
    /// As for [`EventSimulator::try_run`].
    pub fn try_run_recorded<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        rec: &R,
    ) -> Result<SimStats, SimError> {
        self.run_loop(workload, seed, &FaultSchedule::new(), None, rec)
            .map(|(stats, _)| stats)
    }

    /// Run with mid-simulation channel transitions (see
    /// [`ftclos_sim::Simulator::try_run_with_faults`]).
    ///
    /// # Errors
    /// As for [`EventSimulator::try_run`].
    pub fn try_run_with_faults(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &FaultSchedule,
    ) -> Result<SimStats, SimError> {
        self.run_loop(workload, seed, faults, None, &Noop)
            .map(|(stats, _)| stats)
    }

    /// [`EventSimulator::try_run_with_faults`] with instrumentation (see
    /// [`EventSimulator::try_run_recorded`]).
    ///
    /// # Errors
    /// As for [`EventSimulator::try_run`].
    pub fn try_run_with_faults_recorded<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &FaultSchedule,
        rec: &R,
    ) -> Result<SimStats, SimError> {
        self.run_loop(workload, seed, faults, None, rec)
            .map(|(stats, _)| stats)
    }

    /// Run under churn with per-epoch instrumentation (see
    /// [`ftclos_sim::Simulator::try_run_churn`]).
    ///
    /// # Errors
    /// As for [`EventSimulator::try_run`].
    pub fn try_run_churn(
        &mut self,
        workload: &Workload,
        seed: u64,
        schedule: &ChurnSchedule,
        churn: &ChurnConfig,
    ) -> Result<(SimStats, ChurnReport), SimError> {
        self.run_loop(workload, seed, schedule, Some(churn), &Noop)
            .map(|(stats, report)| (stats, report.unwrap_or_default()))
    }

    /// [`EventSimulator::try_run_churn`] with instrumentation
    /// (additionally counts hysteresis re-planning events under
    /// `evsim.churn_replans`).
    ///
    /// # Errors
    /// As for [`EventSimulator::try_run`].
    pub fn try_run_churn_recorded<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        schedule: &ChurnSchedule,
        churn: &ChurnConfig,
        rec: &R,
    ) -> Result<(SimStats, ChurnReport), SimError> {
        self.run_loop(workload, seed, schedule, Some(churn), rec)
            .map(|(stats, report)| (stats, report.unwrap_or_default()))
    }

    fn run_loop<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &ChurnSchedule,
        churn: Option<&ChurnConfig>,
        rec: &R,
    ) -> Result<(SimStats, Option<ChurnReport>), SimError> {
        // Detach the arena so the loop can borrow its arrays disjointly
        // while the policy (also behind `self`) is borrowed mutably.
        let mut arena = std::mem::take(&mut self.arena);
        let result = self.run_loop_inner(workload, seed, faults, churn, rec, &mut arena);
        self.arena = arena;
        result
    }

    #[allow(clippy::too_many_lines)]
    fn run_loop_inner<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &ChurnSchedule,
        churn: Option<&ChurnConfig>,
        rec: &R,
        arena: &mut SimArena,
    ) -> Result<(SimStats, Option<ChurnReport>), SimError> {
        self.cfg.validate()?;
        let _span = rec.span("evsim.run");
        let mut flushed = FlushedTotals::default();
        self.policy.set_live_mask(None);
        let mut admission: Option<LinkAdmission> = churn
            .and_then(|c| c.mode.hysteresis_k())
            .map(|k| LinkAdmission::new(self.topo.num_channels(), k));
        let mut epoch_marks: Vec<EpochMark> = Vec::new();
        let mut delivered_per_cycle: Vec<u32> = Vec::new();
        let mut delivered_seen = 0u64;
        if churn.is_some() {
            epoch_marks.push(EpochMark::default()); // run-start baseline
        }
        let fault_events = faults.sorted_events();
        let mut next_fault = 0usize;
        let ttl = self.cfg.ttl_cycles;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let num_channels = self.topo.num_channels();
        let leaves: Vec<NodeId> = self.topo.leaves().collect();
        // All per-channel state lives in the paged arena: allocated on
        // first touch, recycled across runs, identical in content to the
        // historical dense arrays because every default is synthesized
        // arithmetically. On a 415M-channel fabric this is the difference
        // between tens of gigabytes up front and a few pages per hot spot.
        arena.prepare(num_channels, leaves.len());
        let mut leaf_slot = vec![usize::MAX; self.topo.num_nodes()];
        for (slot, &l) in leaves.iter().enumerate() {
            leaf_slot[l.index()] = slot;
        }
        let flits = self.cfg.packet_flits.max(1);
        let mut source_injected = vec![false; leaves.len()];
        let mut window_latencies: Vec<u64> = Vec::new();

        // --- Activity tracking (what makes this engine event-driven) ---
        // Channels whose downstream queue holds at least one packet, and
        // leaf slots with a non-empty injection queue. Every queue push and
        // pop below maintains these; all per-cycle work iterates them
        // instead of sweeping the whole fabric.
        let mut nonempty_q: BTreeSet<u32> = BTreeSet::new();
        let mut nonempty_inj: BTreeSet<u32> = BTreeSet::new();
        // Wake-ups for the drain fast-forward. Only populated when a jump
        // is ever legal: drain enabled and no hysteresis admission ticking
        // at arbitrary cycles.
        let mut wake = EventWheel::new();
        let may_skip = self.cfg.drain && admission.is_none();
        let mut skipped_cycles = 0u64;
        let mut executed_cycles = 0u64;
        let mut busy_component_cycles = 0u64;

        let mut stats = SimStats {
            window_cycles: self.cfg.measure_cycles,
            offered_rate: workload.rate(),
            channel_busy: ChannelBusy::zeros(num_channels),
            ..SimStats::default()
        };
        let warmup = self.cfg.warmup_cycles;
        let total = self.cfg.total_cycles();

        let watchdog = self.cfg.stall_watchdog;
        let mut moves = 0u64;
        let mut frozen_cycles = 0u64;
        let mut last_signature = (u64::MAX, 0u64, 0u64, 0u64);

        let mut now = 0u64;
        // The loop breaks with `Some(report)` on a stall so the activity
        // counters below still reach the recorder before the error returns.
        let stalled: Option<StallReport> = loop {
            if now >= total {
                let inflight = in_flight(&stats)?;
                if !self.cfg.drain || inflight == 0 {
                    break None;
                }
                if now >= total + SimConfig::DRAIN_CAP {
                    // Same rule as the cycle engine: an armed, mid-freeze
                    // watchdog at the drain cap is a stall, not a cap exit.
                    if watchdog > 0 && frozen_cycles > 0 {
                        break Some(stall_report(now, inflight, &arena.queues, &arena.inject));
                    }
                    break None;
                }
            }
            let in_window = now >= warmup && now < total;
            let injecting = now < total;
            // Inertness probe for the drain fast-forward: if none of these
            // move during the cycle (and no fault event applied), the cycle
            // changed nothing and the next state change sits on the wheel.
            let sig_before = (
                moves,
                stats.injected_total,
                stats.delivered_total,
                stats.timed_out_total,
                stats.retries_total,
                stats.abandoned_total,
                stats.injection_refusals,
            );
            let faults_before = next_fault;
            // --- Liveness events (identical to the cycle engine) ---
            let mut downs_now = 0u64;
            let mut ups_now = 0u64;
            while next_fault < fault_events.len() && fault_events[next_fault].cycle <= now {
                let e = fault_events[next_fault];
                if e.channel.index() < num_channels {
                    *arena.dead.get_mut(e.channel.index()) = e.transition == Transition::Down;
                    match e.transition {
                        Transition::Down => downs_now += 1,
                        Transition::Up => ups_now += 1,
                    }
                    if let Some(adm) = admission.as_mut() {
                        adm.observe(now, e.channel, e.transition);
                    }
                }
                next_fault += 1;
            }
            if churn.is_some() && downs_now + ups_now > 0 {
                let mark = EpochMark {
                    cycle: now,
                    downs: downs_now,
                    ups: ups_now,
                    injected: stats.injected_total,
                    delivered: stats.delivered_total,
                    timed_out: stats.timed_out_total,
                    retries: stats.retries_total,
                    abandoned: stats.abandoned_total,
                };
                match epoch_marks.last_mut() {
                    Some(last) if last.cycle == now => {
                        last.downs += downs_now;
                        last.ups += ups_now;
                    }
                    _ => epoch_marks.push(mark),
                }
            }
            if downs_now + ups_now > 0 && rec.is_enabled() {
                flushed.flush(rec, &stats)?;
                rec.mark_epoch(&format!("cycle={now}"));
            }
            if let Some(adm) = admission.as_mut() {
                if adm.tick(now) {
                    self.policy.set_live_mask(Some(adm.mask()));
                    rec.add("evsim.churn_replans", 1);
                }
            }
            // --- Timeout sweep over the active sets only. Snapshot order
            // (queues ascending, then injection slots ascending) matches
            // the oracle's full chained scan restricted to non-empty
            // queues, so the expired list — and with it every retry RNG
            // draw — comes out in the identical order. ---
            if ttl > 0 {
                let mut expired: Vec<Packet> = Vec::new();
                let active_q: Vec<u32> = nonempty_q.iter().copied().collect();
                for c in active_q {
                    let q = arena.queues.get_mut(c as usize);
                    let mut i = 0;
                    while i < q.len() {
                        if matches!(q.get(i), Some(p) if now >= p.deadline) {
                            let Some(p) = q.remove(i) else {
                                return Err(SimError::invariant(
                                    "expired packet index out of range",
                                ));
                            };
                            expired.push(p);
                        } else {
                            i += 1;
                        }
                    }
                    if q.is_empty() {
                        nonempty_q.remove(&c);
                    }
                }
                let active_inj: Vec<u32> = nonempty_inj.iter().copied().collect();
                for s in active_inj {
                    let q = arena.inject.get_mut(s as usize);
                    let mut i = 0;
                    while i < q.len() {
                        if matches!(q.get(i), Some(p) if now >= p.deadline) {
                            let Some(p) = q.remove(i) else {
                                return Err(SimError::invariant(
                                    "expired packet index out of range",
                                ));
                            };
                            expired.push(p);
                        } else {
                            i += 1;
                        }
                    }
                    if q.is_empty() {
                        nonempty_inj.remove(&s);
                    }
                }
                for p in expired {
                    stats.timed_out_total += 1;
                    let can_retry = self.cfg.retry && p.retries < self.cfg.retry_limit;
                    if !can_retry {
                        stats.abandoned_total += 1;
                        continue;
                    }
                    let queue_probe = |c: ChannelId| arena.queues.get(c.index()).len();
                    match self.policy.pick(p.src, p.dst, queue_probe, &mut rng) {
                        Some(path) if !path.is_empty() => {
                            stats.retries_total += 1;
                            let slot = leaf_slot
                                .get(p.src as usize)
                                .copied()
                                .filter(|&s| s != usize::MAX)
                                .ok_or_else(|| {
                                    SimError::invariant(format!(
                                        "retransmission source {} is not a leaf",
                                        p.src
                                    ))
                                })?;
                            arena.inject.get_mut(slot).push_back(Packet {
                                src: p.src,
                                dst: p.dst,
                                path,
                                hop: 0,
                                inject_cycle: p.inject_cycle,
                                ready_at: now,
                                deadline: now + ttl,
                                retries: p.retries + 1,
                            });
                            nonempty_inj.insert(slot as u32);
                            if may_skip {
                                wake.push(now + ttl);
                            }
                        }
                        _ => {
                            stats.abandoned_total += 1;
                        }
                    }
                }
            }
            // --- Injection phase: NEVER skipped or restricted. Bernoulli
            // injection draws from the seeded RNG at every leaf every
            // cycle; exact stream replay is the equivalence contract. ---
            for (slot, &leaf) in leaves.iter().enumerate() {
                if !injecting {
                    break;
                }
                if !rng.gen_bool(workload.rate().clamp(0.0, 1.0)) {
                    continue;
                }
                let src = leaf.0;
                let Some(dst) = workload.destination(src, |n| rng.gen_range(0..n)) else {
                    continue;
                };
                if self.cfg.bounded_injection
                    && arena.inject.get(slot).len() >= self.cfg.queue_capacity
                {
                    stats.injection_refusals += 1;
                    continue;
                }
                let queue_probe = |c: ChannelId| arena.queues.get(c.index()).len();
                let Some(path) = self.policy.pick(src, dst, queue_probe, &mut rng) else {
                    stats.injection_refusals += 1;
                    continue;
                };
                source_injected[slot] = true;
                stats.injected_total += 1;
                if in_window {
                    stats.injected_in_window += 1;
                }
                if path.is_empty() {
                    stats.delivered_total += 1;
                    if in_window {
                        stats.delivered_in_window += 1;
                    }
                    continue;
                }
                arena.inject.get_mut(slot).push_back(Packet {
                    src,
                    dst,
                    path,
                    hop: 0,
                    inject_cycle: now,
                    ready_at: now,
                    deadline: if ttl > 0 { now + ttl } else { u64::MAX },
                    retries: 0,
                });
                nonempty_inj.insert(slot as u32);
                if may_skip && ttl > 0 {
                    wake.push(now + ttl);
                }
            }

            // --- Movement: injection links, active slots only. Each leaf
            // drives its own uplink, so restricting the oracle's full slot
            // sweep to non-empty slots changes nothing. ---
            let active_inj: Vec<u32> = nonempty_inj.iter().copied().collect();
            for s in active_inj {
                let slot = s as usize;
                let Some(&leaf) = leaves.get(slot) else {
                    return Err(SimError::invariant("injection slot without a leaf"));
                };
                let Some(&up) = self.topo.out_channels(leaf).first() else {
                    continue;
                };
                let o = up.index();
                if *arena.busy_until.get(o) > now
                    || *arena.dead.get(o)
                    || arena.queues.get(o).len() >= self.cfg.queue_capacity
                {
                    continue;
                }
                let eligible = matches!(
                    arena.inject.get(slot).front(),
                    Some(p) if p.ready_at <= now && p.path.get(p.hop) == Some(&up)
                );
                if eligible {
                    let q = arena.inject.get_mut(slot);
                    let Some(p) = q.pop_front() else {
                        return Err(SimError::invariant(
                            "eligible injection-queue head disappeared",
                        ));
                    };
                    if q.is_empty() {
                        nonempty_inj.remove(&s);
                    }
                    self.advance(
                        p,
                        o,
                        now,
                        flits,
                        in_window,
                        &mut arena.queues,
                        &mut arena.busy_until,
                        &mut stats,
                        &mut window_latencies,
                        &mut moves,
                        &mut nonempty_q,
                        &mut wake,
                        may_skip,
                    )?;
                }
            }
            // --- Movement: switch outputs. ---
            match self.cfg.arbiter {
                ftclos_sim::Arbiter::HolFifo => {
                    self.hol_fifo_cycle(
                        now,
                        flits,
                        in_window,
                        &mut arena.queues,
                        &mut arena.busy_until,
                        &arena.dead,
                        &mut arena.rr,
                        &mut stats,
                        &mut window_latencies,
                        &mut moves,
                        &mut nonempty_q,
                        &mut wake,
                        may_skip,
                    )?;
                }
                ftclos_sim::Arbiter::Voq { iterations } => {
                    // Only switches fed by at least one non-empty queue can
                    // match anything; for all others the oracle's iSLIP
                    // pass finds no requests, grants nothing, and leaves
                    // every pointer untouched — a provable no-op.
                    let mut active_switches: BTreeSet<u32> = BTreeSet::new();
                    for &c in nonempty_q.iter() {
                        let dst = self.topo.channel(ChannelId(c)).dst;
                        if self.topo.kind(dst).is_switch() {
                            active_switches.insert(dst.0);
                        }
                    }
                    for sw in active_switches {
                        self.islip_switch(
                            NodeId(sw),
                            iterations.max(1),
                            now,
                            flits,
                            in_window,
                            &mut arena.queues,
                            &mut arena.busy_until,
                            &arena.dead,
                            &mut arena.rr,
                            &mut arena.accept_ptr,
                            &mut stats,
                            &mut window_latencies,
                            &mut moves,
                            &mut nonempty_q,
                            &mut wake,
                            may_skip,
                        )?;
                    }
                }
            }
            if churn.is_some() {
                delivered_per_cycle.push((stats.delivered_total - delivered_seen) as u32);
                delivered_seen = stats.delivered_total;
            }
            if watchdog > 0 {
                let inflight = in_flight(&stats)?;
                let signature = (
                    moves,
                    stats.delivered_total,
                    stats.abandoned_total,
                    stats.retries_total,
                );
                if inflight > 0 && signature == last_signature {
                    frozen_cycles += 1;
                    if frozen_cycles >= watchdog {
                        break Some(stall_report(now, inflight, &arena.queues, &arena.inject));
                    }
                } else {
                    frozen_cycles = 0;
                    last_signature = signature;
                }
            }
            executed_cycles += 1;
            busy_component_cycles += (nonempty_q.len() + nonempty_inj.len()) as u64;

            // --- Drain fast-forward: if this cycle changed nothing and
            // injection is over, jump to the next cycle on the wheel (or
            // the next fault event, or the cycle where the watchdog must
            // fire, or the drain cap). All skipped cycles are provably
            // identical no-ops: queue state, RNG, pointers, and wires are
            // untouched between wake-ups once injection stops. ---
            let sig_after = (
                moves,
                stats.injected_total,
                stats.delivered_total,
                stats.timed_out_total,
                stats.retries_total,
                stats.abandoned_total,
                stats.injection_refusals,
            );
            if may_skip
                && now + 1 >= total
                && sig_after == sig_before
                && next_fault == faults_before
                && in_flight(&stats)? > 0
            {
                let mut target = total + SimConfig::DRAIN_CAP;
                if let Some(e) = fault_events.get(next_fault) {
                    target = target.min(e.cycle.max(now + 1));
                }
                if let Some(w) = wake.next_at_or_after(now + 1) {
                    target = target.min(w);
                }
                if watchdog > 0 {
                    // frozen < watchdog here (a fire returns above); the
                    // first cycle in which it can reach the threshold must
                    // execute normally so the report is exact.
                    target = target.min(now + (watchdog - frozen_cycles));
                }
                if target > now + 1 {
                    let skipped = target - (now + 1);
                    skipped_cycles += skipped;
                    if watchdog > 0 {
                        // Every skipped cycle would have been another
                        // progress-free tick of the armed watchdog.
                        frozen_cycles += skipped;
                    }
                    if churn.is_some() {
                        delivered_per_cycle.extend(std::iter::repeat_n(0u32, skipped as usize));
                    }
                    now = target;
                    continue;
                }
            }
            now += 1;
        };
        rec.add("evsim.cycles", now);
        rec.add("evsim.executed_cycles", executed_cycles);
        rec.add("evsim.skipped_cycles", skipped_cycles);
        rec.add("evsim.busy_component_cycles", busy_component_cycles);
        let components = (num_channels + leaves.len()) as u64;
        rec.add(
            "evsim.idle_component_cycles",
            executed_cycles
                .saturating_mul(components)
                .saturating_sub(busy_component_cycles),
        );
        rec.gauge("evsim.touched_channels", arena.touched_channels() as u64);
        rec.gauge("evsim.state_bytes", arena.state_bytes() as u64);
        if let Some(report) = stalled {
            return Err(SimError::Stalled(report));
        }
        stats.leftover_packets = in_flight(&stats)?;
        stats.active_sources = source_injected.iter().filter(|&&b| b).count();
        if rec.is_enabled() {
            flushed.flush(rec, &stats)?;
            rec.mark_epoch("end");
        }
        window_latencies.sort_unstable();
        finish_stats(&mut stats, &window_latencies);
        let report = churn.map(|c| {
            let final_mark = EpochMark {
                cycle: now,
                downs: 0,
                ups: 0,
                injected: stats.injected_total,
                delivered: stats.delivered_total,
                timed_out: stats.timed_out_total,
                retries: stats.retries_total,
                abandoned: stats.abandoned_total,
            };
            build_report(c, &epoch_marks, final_mark, &delivered_per_cycle, warmup)
        });
        Ok((stats, report))
    }

    /// One cycle of head-of-line FIFO arbitration, driven from the
    /// requesting queue heads instead of a full output sweep.
    ///
    /// Equivalence to the oracle's ascending `for o in 0..num_channels`
    /// sweep: a grant at output `o` needs a ready head whose next hop is
    /// `o`, so outputs nobody requests are no-ops in both engines. The
    /// worklist processes requested outputs in ascending id order and
    /// re-checks wire/credit/liveness at processing time — the same state
    /// the oracle sees when its sweep reaches `o`, because queue state for
    /// `o` only changes when `o` itself grants. After a grant pops a queue,
    /// its new head (if already ready) can only be granted by a *later*
    /// output this cycle, exactly like the single-pass sweep; it is
    /// re-enqueued under that output when its id is greater than `o`.
    #[allow(clippy::too_many_arguments)]
    fn hol_fifo_cycle(
        &self,
        now: u64,
        flits: u64,
        in_window: bool,
        queues: &mut PagedVec<VecDeque<Packet>>,
        busy_until: &mut PagedVec<u64>,
        dead: &PagedVec<bool>,
        rr: &mut PagedVec<u32>,
        stats: &mut SimStats,
        window_latencies: &mut Vec<u64>,
        moves: &mut u64,
        nonempty_q: &mut BTreeSet<u32>,
        wake: &mut EventWheel,
        may_skip: bool,
    ) -> Result<(), SimError> {
        // Requested output -> requesting input channels (each queue head
        // requests exactly one output, so every queue appears at most once).
        // The round-robin arbiter ranks a requesting channel by its
        // position among `in_channels(dst)`. The CSR audit proves in-ports
        // are dense and ordered, so that position *is* `dst_port` — no
        // O(channels) side table needed.
        let local_in = |c: u32| self.topo.channel(ChannelId(c)).dst_port as usize;
        let mut pending: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &c in nonempty_q.iter() {
            let Some(p) = queues.get(c as usize).front() else {
                continue;
            };
            let Some(&want) = p.path.get(p.hop) else {
                continue; // defensive: delivered packets never queue
            };
            if p.ready_at > now {
                continue;
            }
            // Only requests issued at the switch the packet sits at can be
            // granted (mirrors the oracle scanning `in_channels(src(o))`).
            if self.topo.channel(want).src != self.topo.channel(ChannelId(c)).dst {
                continue;
            }
            pending.entry(want.0).or_default().push(c);
        }
        while let Some((&o, _)) = pending.iter().next() {
            let reqs = pending.remove(&o).unwrap_or_default();
            let oi = o as usize;
            if *busy_until.get(oi) > now || *dead.get(oi) {
                continue;
            }
            let ch = self.topo.channel(ChannelId(o));
            if self.topo.kind(ch.src).is_leaf() {
                continue; // injection links are handled separately
            }
            let to_leaf = self.topo.kind(ch.dst).is_leaf();
            if !to_leaf && queues.get(oi).len() >= self.cfg.queue_capacity {
                continue; // no downstream credit
            }
            let n_in = self.topo.in_channels(ch.src).len();
            if n_in == 0 {
                continue;
            }
            let start = *rr.get(oi) as usize % n_in;
            // Round-robin winner: the requester whose local input index
            // comes first scanning from the grant pointer. Input indices
            // are distinct per switch, so the minimum is unique.
            let Some(&win) = reqs
                .iter()
                .min_by_key(|&&c| (local_in(c) + n_in - start) % n_in)
            else {
                continue;
            };
            let head_ok = matches!(
                queues.get(win as usize).front(),
                Some(p) if p.ready_at <= now && p.path.get(p.hop) == Some(&ChannelId(o))
            );
            if !head_ok {
                return Err(SimError::invariant(
                    "worklist head changed before its grant",
                ));
            }
            let winq = queues.get_mut(win as usize);
            let Some(p) = winq.pop_front() else {
                return Err(SimError::invariant("eligible input-queue head disappeared"));
            };
            if winq.is_empty() {
                nonempty_q.remove(&win);
            }
            *rr.get_mut(oi) = (local_in(win) as u32 + 1) % n_in as u32;
            // The popped queue's next head may request a later output this
            // cycle (same-switch only; earlier outputs already passed).
            if let Some(np) = queues.get(win as usize).front() {
                if np.ready_at <= now {
                    if let Some(&nwant) = np.path.get(np.hop) {
                        if nwant.0 > o && self.topo.channel(nwant).src == ch.src {
                            pending.entry(nwant.0).or_default().push(win);
                        }
                    }
                }
            }
            self.advance(
                p,
                oi,
                now,
                flits,
                in_window,
                queues,
                busy_until,
                stats,
                window_latencies,
                moves,
                nonempty_q,
                wake,
                may_skip,
            )?;
        }
        Ok(())
    }

    /// Move one granted packet across output channel `o` (identical to the
    /// oracle, plus active-set and wheel maintenance).
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        mut p: Packet,
        o: usize,
        now: u64,
        flits: u64,
        in_window: bool,
        queues: &mut PagedVec<VecDeque<Packet>>,
        busy_until: &mut PagedVec<u64>,
        stats: &mut SimStats,
        window_latencies: &mut Vec<u64>,
        moves: &mut u64,
        nonempty_q: &mut BTreeSet<u32>,
        wake: &mut EventWheel,
        may_skip: bool,
    ) -> Result<(), SimError> {
        let ch = self.topo.channel(ChannelId(o as u32));
        let to_leaf = self.topo.kind(ch.dst).is_leaf();
        *moves += 1;
        p.hop += 1;
        p.ready_at = now + flits;
        *busy_until.get_mut(o) = now + flits;
        if may_skip {
            // The packet becomes ready — and the wire frees — at the same
            // cycle; one wheel entry covers both.
            wake.push(now + flits);
        }
        if in_window {
            stats.channel_busy.add(o, flits);
        }
        if to_leaf {
            if ch.dst.0 != p.dst {
                return Err(SimError::invariant(format!(
                    "packet for leaf {} exited the fabric at leaf {}",
                    p.dst, ch.dst.0
                )));
            }
            if p.hop != p.path.len() {
                return Err(SimError::invariant(format!(
                    "packet reached its destination after hop {} of a {}-hop path",
                    p.hop,
                    p.path.len()
                )));
            }
            stats.delivered_total += 1;
            if in_window {
                stats.delivered_in_window += 1;
                let lat = now - p.inject_cycle + flits;
                stats.latency_sum += lat;
                stats.latency_max = stats.latency_max.max(lat);
                window_latencies.push(lat);
            }
        } else {
            queues.get_mut(o).push_back(p);
            nonempty_q.insert(o as u32);
        }
        Ok(())
    }

    /// One cycle of iSLIP request-grant-accept matching on switch `sw` —
    /// a verbatim port of the oracle's matching (see
    /// `ftclos_sim::Simulator`), with active-set maintenance on the moves.
    #[allow(clippy::too_many_arguments)]
    fn islip_switch(
        &self,
        sw: NodeId,
        iterations: u8,
        now: u64,
        flits: u64,
        in_window: bool,
        queues: &mut PagedVec<VecDeque<Packet>>,
        busy_until: &mut PagedVec<u64>,
        dead: &PagedVec<bool>,
        grant_ptr: &mut PagedVec<u32>,
        accept_ptr: &mut PagedVec<u32>,
        stats: &mut SimStats,
        window_latencies: &mut Vec<u64>,
        moves: &mut u64,
        nonempty_q: &mut BTreeSet<u32>,
        wake: &mut EventWheel,
        may_skip: bool,
    ) -> Result<(), SimError> {
        let inputs = self.topo.in_channels(sw);
        let outputs = self.topo.out_channels(sw);
        if inputs.is_empty() || outputs.is_empty() {
            return Ok(());
        }
        let out_slot = |c: ChannelId| outputs.iter().position(|&o| o == c);

        let mut voq_head: Vec<Vec<Option<usize>>> = Vec::with_capacity(inputs.len());
        for &qi in inputs {
            let mut heads = vec![None; outputs.len()];
            for (pos, p) in queues.get(qi.index()).iter().enumerate() {
                let Some(&next_hop) = p.path.get(p.hop) else {
                    continue;
                };
                if p.ready_at > now {
                    continue;
                }
                if let Some(oj) = out_slot(next_hop) {
                    if heads[oj].is_none() {
                        heads[oj] = Some(pos);
                    }
                }
            }
            voq_head.push(heads);
        }
        let out_ok: Vec<bool> = outputs
            .iter()
            .map(|&o| {
                if *busy_until.get(o.index()) > now || *dead.get(o.index()) {
                    return false;
                }
                let ch = self.topo.channel(o);
                self.topo.kind(ch.dst).is_leaf()
                    || queues.get(o.index()).len() < self.cfg.queue_capacity
            })
            .collect();

        let mut in_matched = vec![false; inputs.len()];
        let mut out_matched = vec![false; outputs.len()];
        let mut matches: Vec<(usize, usize)> = Vec::new();
        for iter in 0..iterations {
            let mut grants: Vec<Vec<usize>> = vec![Vec::new(); inputs.len()];
            let mut any_grant = false;
            for (oj, &o) in outputs.iter().enumerate() {
                if out_matched[oj] || !out_ok[oj] {
                    continue;
                }
                let start = *grant_ptr.get(o.index()) as usize % inputs.len();
                for k in 0..inputs.len() {
                    let ii = (start + k) % inputs.len();
                    if !in_matched[ii] && voq_head[ii][oj].is_some() {
                        grants[ii].push(oj);
                        any_grant = true;
                        break;
                    }
                }
            }
            if !any_grant {
                break;
            }
            for (ii, granted) in grants.iter().enumerate() {
                if granted.is_empty() || in_matched[ii] {
                    continue;
                }
                let qi = inputs[ii];
                let start = *accept_ptr.get(qi.index()) as usize % outputs.len();
                let Some(&oj) = granted
                    .iter()
                    .min_by_key(|&&oj| (oj + outputs.len() - start) % outputs.len())
                else {
                    return Err(SimError::invariant("grant list emptied during accept"));
                };
                in_matched[ii] = true;
                out_matched[oj] = true;
                matches.push((ii, oj));
                if iter == 0 {
                    *grant_ptr.get_mut(outputs[oj].index()) = ((ii + 1) % inputs.len()) as u32;
                    *accept_ptr.get_mut(qi.index()) = ((oj + 1) % outputs.len()) as u32;
                }
            }
        }
        for (ii, oj) in matches {
            let Some(pos) = voq_head[ii][oj] else {
                return Err(SimError::invariant(
                    "iSLIP matched an input with no eligible VOQ head",
                ));
            };
            let qc = inputs[ii].index();
            let qcq = queues.get_mut(qc);
            let Some(p) = qcq.remove(pos) else {
                return Err(SimError::invariant("iSLIP VOQ head position out of range"));
            };
            if qcq.is_empty() {
                nonempty_q.remove(&(qc as u32));
            }
            self.advance(
                p,
                outputs[oj].index(),
                now,
                flits,
                in_window,
                queues,
                busy_until,
                stats,
                window_latencies,
                moves,
                nonempty_q,
                wake,
                may_skip,
            )?;
        }
        Ok(())
    }
}

/// Fill in percentile fields from sorted window latencies (identical to
/// the oracle's computation).
fn finish_stats(stats: &mut SimStats, sorted: &[u64]) {
    let pct = |q: f64| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        }
    };
    stats.latency_p50 = pct(0.50);
    stats.latency_p95 = pct(0.95);
    stats.latency_p99 = pct(0.99);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{DModK, ObliviousMultipath, SpreadPolicy, YuanDeterministic};
    use ftclos_sim::{ChurnConfig, ChurnSchedule, ReplanMode, Simulator};
    use ftclos_topo::Ftree;
    use ftclos_traffic::patterns;

    fn cfg() -> SimConfig {
        SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_000,
            ..SimConfig::default()
        }
    }

    /// Run both engines on the same inputs and require exact equality.
    fn assert_engines_agree(
        topo: &Topology,
        config: SimConfig,
        policy: &Policy,
        w: &Workload,
        seed: u64,
        faults: &FaultSchedule,
    ) -> SimStats {
        let oracle = Simulator::new(topo, config, policy.clone())
            .try_run_with_faults(w, seed, faults)
            .unwrap();
        let event = EventSimulator::new(topo, config, policy.clone())
            .try_run_with_faults(w, seed, faults)
            .unwrap();
        assert_eq!(oracle, event, "engines diverged");
        event
    }

    #[test]
    fn matches_cycle_engine_on_permutations() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let policy = Policy::from_single_path(&router);
        let perm = patterns::shift(10, 3);
        for rate in [0.2, 0.9] {
            for arbiter in [
                ftclos_sim::Arbiter::HolFifo,
                ftclos_sim::Arbiter::Voq { iterations: 2 },
            ] {
                let config = SimConfig { arbiter, ..cfg() };
                let stats = assert_engines_agree(
                    ft.topology(),
                    config,
                    &policy,
                    &Workload::permutation(&perm, rate),
                    7,
                    &FaultSchedule::new(),
                );
                assert!(stats.delivered_total > 0);
            }
        }
    }

    #[test]
    fn matches_cycle_engine_on_congested_uniform_traffic() {
        // DModK on a thin fabric congests hard: deep queues, HOL blocking,
        // leftover packets — the adversarial case for grant-order replay.
        let ft = Ftree::new(2, 1, 5).unwrap();
        let router = DModK::new(&ft);
        let policy = Policy::from_single_path(&router);
        let stats = assert_engines_agree(
            ft.topology(),
            cfg(),
            &policy,
            &Workload::uniform_random(10, 1.0),
            44,
            &FaultSchedule::new(),
        );
        assert!(stats.leftover_packets > 0, "congestion expected");
    }

    #[test]
    fn matches_cycle_engine_with_drain_and_multiflit() {
        let ft = Ftree::new(2, 1, 5).unwrap();
        let router = DModK::new(&ft);
        let policy = Policy::from_single_path(&router);
        let config = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 400,
            drain: true,
            packet_flits: 3,
            ..SimConfig::default()
        };
        let stats = assert_engines_agree(
            ft.topology(),
            config,
            &policy,
            &Workload::uniform_random(10, 1.0),
            44,
            &FaultSchedule::new(),
        );
        assert_eq!(stats.leftover_packets, 0, "drain must empty the network");
    }

    #[test]
    fn matches_cycle_engine_under_faults_retry_and_spreading() {
        // Random multipath spreading consumes RNG on every pick; faults
        // plus TTL retries exercise the timeout sweep ordering.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let policy = Policy::from_multipath(&mp, true);
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            ttl_cycles: 60,
            retry: true,
            retry_limit: 10,
            drain: true,
            arbiter: ftclos_sim::Arbiter::Voq { iterations: 2 },
            ..SimConfig::default()
        };
        let mut faults = FaultSchedule::new();
        faults.kill_channel(400, ft.up_channel(0, 1));
        let stats = assert_engines_agree(
            ft.topology(),
            config,
            &policy,
            &Workload::permutation(&perm, 0.6),
            9,
            &faults,
        );
        assert!(stats.timed_out_total > 0);
        assert!(stats.retries_total > 0);
        assert!(stats.conservation_ok());
    }

    #[test]
    fn matches_cycle_engine_under_churn_modes() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 2_000,
            ttl_cycles: 50,
            drain: true,
            arbiter: ftclos_sim::Arbiter::Voq { iterations: 2 },
            ..SimConfig::default()
        };
        let mut schedule = ChurnSchedule::new();
        schedule.kill_link(400, ft.topology(), ft.up_channel(0, 1));
        schedule.revive_link(900, ft.topology(), ft.up_channel(0, 1));
        for mode in [
            ReplanMode::Pinned,
            ReplanMode::PerCycle,
            ReplanMode::Hysteresis { k: 150 },
        ] {
            let churn = ChurnConfig {
                mode,
                epsilon: 0.1,
                recovery_window: 50,
            };
            let w = Workload::permutation(&perm, 0.6);
            let (oracle, oracle_report) =
                Simulator::new(ft.topology(), config, Policy::from_multipath(&mp, true))
                    .try_run_churn(&w, 33, &schedule, &churn)
                    .unwrap();
            let (event, event_report) =
                EventSimulator::new(ft.topology(), config, Policy::from_multipath(&mp, true))
                    .try_run_churn(&w, 33, &schedule, &churn)
                    .unwrap();
            assert_eq!(oracle, event, "stats diverged under {mode:?}");
            assert_eq!(oracle_report, event_report, "report diverged: {mode:?}");
        }
    }

    #[test]
    fn matches_cycle_engine_stall_diagnosis() {
        // Pinned valley routes wedge the fabric; both engines must return
        // the identical Stalled error (cycle, strands, wait cycle).
        let ft = Ftree::new(1, 1, 4).unwrap();
        let routes = valley_routes(&ft);
        let policy = || {
            Policy::from_pinned(
                ft.topology(),
                routes.iter().map(|(s, d, p)| (*s, *d, p.as_slice())),
            )
            .unwrap()
        };
        let pairs: Vec<(u32, u32)> = routes.iter().map(|(s, d, _)| (*s, *d)).collect();
        let w = Workload::fixed_pairs(4, &pairs, 1.0);
        let config = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 200,
            queue_capacity: 2,
            drain: true,
            stall_watchdog: 64,
            ..SimConfig::default()
        };
        let oracle = Simulator::new(ft.topology(), config, policy())
            .try_run(&w, 0xDEAD)
            .unwrap_err();
        let event = EventSimulator::new(ft.topology(), config, policy())
            .try_run(&w, 0xDEAD)
            .unwrap_err();
        assert_eq!(oracle, event);
        assert!(matches!(event, SimError::Stalled(_)));
    }

    #[test]
    fn drain_fast_forward_skips_cycles_and_hits_the_cap_stall() {
        // With the watchdog too long to fire before the drain cap, the
        // wedged run must stall out at exactly the cap cycle — and the
        // event engine must get there by jumping, not spinning.
        let ft = Ftree::new(1, 1, 4).unwrap();
        let routes = valley_routes(&ft);
        let policy = Policy::from_pinned(
            ft.topology(),
            routes.iter().map(|(s, d, p)| (*s, *d, p.as_slice())),
        )
        .unwrap();
        let pairs: Vec<(u32, u32)> = routes.iter().map(|(s, d, _)| (*s, *d)).collect();
        let w = Workload::fixed_pairs(4, &pairs, 1.0);
        let config = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 50,
            queue_capacity: 2,
            drain: true,
            stall_watchdog: 2 * SimConfig::DRAIN_CAP,
            ..SimConfig::default()
        };
        let reg = ftclos_obs::Registry::new();
        let err = EventSimulator::new(ft.topology(), config, policy)
            .try_run_recorded(&w, 0xDEAD, &reg)
            .unwrap_err();
        let SimError::Stalled(report) = err else {
            panic!("expected Stalled at the drain cap, got {err}");
        };
        assert_eq!(report.cycle, 50 + SimConfig::DRAIN_CAP);
        let snap = reg.snapshot();
        let skipped = snap.counter("evsim.skipped_cycles").unwrap_or(0);
        assert!(
            skipped > SimConfig::DRAIN_CAP / 2,
            "fast-forward must skip most of the drain: {skipped}"
        );
        let executed = snap.counter("evsim.executed_cycles").unwrap_or(0);
        assert!(
            executed < 1_000,
            "wedged drain should execute few real cycles: {executed}"
        );
    }

    #[test]
    fn recorded_run_flushes_evsim_counters_and_epochs() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            ttl_cycles: 40,
            drain: true,
            ..SimConfig::default()
        };
        let mut faults = FaultSchedule::new();
        for t in 0..4 {
            faults.kill_channel(400, ft.up_channel(0, t));
            faults.revive_channel(900, ft.up_channel(0, t));
        }
        let w = Workload::permutation(&perm, 0.6);
        let plain = EventSimulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .try_run_with_faults(&w, 9, &faults)
            .unwrap();
        let reg = ftclos_obs::Registry::new();
        let recorded =
            EventSimulator::new(ft.topology(), config, Policy::from_single_path(&router))
                .try_run_with_faults_recorded(&w, 9, &faults, &reg)
                .unwrap();
        assert_eq!(plain, recorded, "recording must not perturb the run");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("evsim.injected"), Some(plain.injected_total));
        assert_eq!(snap.counter("evsim.delivered"), Some(plain.delivered_total));
        assert_eq!(snap.counter("evsim.abandoned"), Some(plain.abandoned_total));
        assert_eq!(snap.gauge("evsim.in_flight"), Some(plain.leftover_packets));
        assert!(snap.spans.iter().any(|s| s.path == "evsim.run"));
        assert!(snap.counter("evsim.busy_component_cycles").unwrap_or(0) > 0);
        assert_eq!(snap.epochs.len(), 3);
        assert_eq!(snap.epochs[0].label, "cycle=400");
        assert_eq!(snap.epochs[1].label, "cycle=900");
        assert_eq!(snap.epochs[2].label, "end");
        for e in &snap.epochs {
            assert_eq!(
                e.counter("evsim.injected"),
                e.counter("evsim.delivered")
                    + e.counter("evsim.abandoned")
                    + e.gauge("evsim.in_flight"),
                "epoch {} must conserve packets",
                e.label
            );
        }
    }

    /// Hand-built "valley" routes on `ftree(1, 1, 4)` (the witness-module
    /// construction): route `v -> (v+3) % 4` walks three arcs of the
    /// 8-channel up/down cycle, realizing a circular credit wait.
    fn valley_routes(ft: &Ftree) -> Vec<(u32, u32, Vec<ChannelId>)> {
        let r = 4;
        (0..r)
            .map(|v| {
                let w = (v + 3) % r;
                let mut channels = vec![ft.leaf_up_channel(v, 0)];
                for k in 0..3 {
                    channels.push(ft.up_channel((v + k) % r, 0));
                    channels.push(ft.down_channel(0, (v + k + 1) % r));
                }
                channels.push(ft.leaf_down_channel(w, 0));
                (v as u32, w as u32, channels)
            })
            .collect()
    }
}
