//! The event wheel: a min-heap of future cycles at which *something can
//! happen* — a packet becomes ready, a wire frees up, a TTL deadline
//! matures. During the drain phase the engine fast-forwards from one wheel
//! entry to the next instead of executing provably-inert cycles.
//!
//! Entries are plain cycle numbers, deliberately not `(cycle, payload)`
//! pairs: the engine re-derives all work from queue state when it executes
//! a cycle, so the wheel only has to guarantee that no cycle in which state
//! *could* change is skipped. Duplicate and stale entries are harmless
//! (executing an inert cycle is a no-op) and are discarded lazily.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap of wake-up cycles (see module docs).
#[derive(Debug, Default)]
pub struct EventWheel {
    heap: BinaryHeap<Reverse<u64>>,
}

impl EventWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a wake-up at `cycle`. Duplicates are fine.
    pub fn push(&mut self, cycle: u64) {
        self.heap.push(Reverse(cycle));
    }

    /// The earliest scheduled cycle `>= cycle`, discarding every stale
    /// entry before it. `None` when nothing is scheduled at or after
    /// `cycle`.
    pub fn next_at_or_after(&mut self, cycle: u64) -> Option<u64> {
        while let Some(&Reverse(t)) = self.heap.peek() {
            if t >= cycle {
                return Some(t);
            }
            self.heap.pop();
        }
        None
    }

    /// Entries currently queued (stale ones included until discarded).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the wheel holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = EventWheel::new();
        for t in [9, 3, 7, 3, 100] {
            w.push(t);
        }
        assert_eq!(w.next_at_or_after(0), Some(3));
        assert_eq!(w.next_at_or_after(4), Some(7));
        // Stale entries (3, 3) were discarded by the previous call.
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_at_or_after(8), Some(9));
        assert_eq!(w.next_at_or_after(101), None);
        assert!(w.is_empty());
    }

    #[test]
    fn peek_does_not_consume_live_entries() {
        let mut w = EventWheel::new();
        w.push(5);
        assert_eq!(w.next_at_or_after(5), Some(5));
        assert_eq!(w.next_at_or_after(5), Some(5));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn empty_wheel_reports_none() {
        let mut w = EventWheel::new();
        assert_eq!(w.next_at_or_after(0), None);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }
}
