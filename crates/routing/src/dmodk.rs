//! Modular deterministic routings — the InfiniBand-style defaults used as
//! blocking baselines (they satisfy `m < n²` fabrics but then violate the
//! paper's Lemma 1 and block some permutation).

use crate::path::Path;
use crate::router::SinglePathRouter;
use ftclos_topo::Ftree;
use ftclos_traffic::SdPair;

/// Destination-modular routing on `ftree(n+m, r)`: cross-switch pair
/// `(s, d)` uses top switch `d mod m`.
///
/// This spreads destinations evenly over top switches (each downlink
/// `t → w` carries a single destination's traffic, so downlinks never
/// contend) but lets two sources in one switch share an uplink whenever
/// their destinations collide mod `m`.
#[derive(Clone, Copy, Debug)]
pub struct DModK<'a> {
    ft: &'a Ftree,
}

/// Source-modular routing: cross-switch pair `(s, d)` uses top switch
/// `s mod m` — the mirror image of [`DModK`] (uplinks clean, downlinks
/// contend).
#[derive(Clone, Copy, Debug)]
pub struct SModK<'a> {
    ft: &'a Ftree,
}

impl<'a> DModK<'a> {
    /// Create the router (works for any `m >= 1`).
    pub fn new(ft: &'a Ftree) -> Self {
        Self { ft }
    }

    /// Top switch selected for a pair.
    pub fn top_for(&self, pair: SdPair) -> usize {
        pair.dst as usize % self.ft.m()
    }
}

impl<'a> SModK<'a> {
    /// Create the router (works for any `m >= 1`).
    pub fn new(ft: &'a Ftree) -> Self {
        Self { ft }
    }

    /// Top switch selected for a pair.
    pub fn top_for(&self, pair: SdPair) -> usize {
        pair.src as usize % self.ft.m()
    }
}

fn modular_route(ft: &Ftree, pair: SdPair, top: usize) -> Path {
    let n = ft.n();
    let (v, i) = (pair.src as usize / n, pair.src as usize % n);
    let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
    if pair.src == pair.dst {
        return Path::empty();
    }
    if v == w {
        return Path::new(vec![ft.leaf_up_channel(v, i), ft.leaf_down_channel(w, j)]);
    }
    Path::new(vec![
        ft.leaf_up_channel(v, i),
        ft.up_channel(v, top),
        ft.down_channel(top, w),
        ft.leaf_down_channel(w, j),
    ])
}

impl SinglePathRouter for DModK<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }

    fn route(&self, pair: SdPair) -> Path {
        modular_route(self.ft, pair, self.top_for(pair))
    }

    fn name(&self) -> &'static str {
        "d-mod-k"
    }
}

impl SinglePathRouter for SModK<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }

    fn route(&self, pair: SdPair) -> Path {
        modular_route(self.ft, pair, self.top_for(pair))
    }

    fn name(&self) -> &'static str {
        "s-mod-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_all;
    use ftclos_traffic::adversarial::{downlink_attack_mod, uplink_attack_mod, FtreeShape};
    use ftclos_traffic::Permutation;

    fn shape(ft: &Ftree) -> FtreeShape {
        FtreeShape {
            n: ft.n() as u32,
            m: ft.m() as u32,
            r: ft.r() as u32,
        }
    }

    #[test]
    fn paths_are_valid() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = DModK::new(&ft);
        for s in 0..10u32 {
            for d in 0..10u32 {
                let path = r.route(SdPair::new(s, d));
                path.validate(
                    ft.topology(),
                    ftclos_topo::NodeId(s),
                    ftclos_topo::NodeId(d),
                )
                .unwrap();
            }
        }
    }

    #[test]
    fn dmodk_uplink_attack_blocks() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = DModK::new(&ft);
        let attack = uplink_attack_mod(shape(&ft)).unwrap();
        let a = route_all(&r, &attack).unwrap();
        assert!(a.max_channel_load() >= 2, "adversarial pattern must block");
    }

    #[test]
    fn smodk_downlink_attack_blocks() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = SModK::new(&ft);
        let attack = downlink_attack_mod(shape(&ft)).unwrap();
        let a = route_all(&r, &attack).unwrap();
        assert!(a.max_channel_load() >= 2);
    }

    #[test]
    fn dmodk_downlinks_never_contend() {
        // Each downlink t -> w carries only destinations d with d mod m = t
        // in switch w; a permutation has each destination at most once, and
        // within one (t, w) all pairs share... in fact multiple dests in w
        // can map to t when n > m. Check the *single destination* property
        // only holds when m >= n; here verify loads directly on a full
        // random sweep with m = n (balanced).
        use rand::SeedableRng;
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = DModK::new(&ft);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let perm = ftclos_traffic::patterns::random_full(10, &mut rng);
            let a = route_all(&r, &perm).unwrap();
            for (ch, load) in a.channel_loads() {
                let c = ft.topology().channel(ch);
                if ft.top_index(c.src).is_some() {
                    assert!(load <= 1, "downlink contention under d-mod-k with m = n");
                }
            }
        }
    }

    #[test]
    fn dmodk_with_enough_tops_still_blocks() {
        // Even m = n^2 doesn't save d-mod-k: it's the *assignment*, not the
        // count, that matters. n=2, m=4, r=5: sources (0,0),(0,1) to dests
        // 4 and 8 (different switches, both ≡ 0 mod 4).
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = DModK::new(&ft);
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 8)]).unwrap();
        let a = route_all(&r, &perm).unwrap();
        assert_eq!(a.max_channel_load(), 2, "shared uplink to top 0");
    }

    #[test]
    fn top_for_formulas() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        assert_eq!(DModK::new(&ft).top_for(SdPair::new(0, 7)), 1);
        assert_eq!(SModK::new(&ft).top_for(SdPair::new(7, 0)), 1);
    }
}
