//! Routing under churn: hysteresis link admission and epoch-based
//! re-planning.
//!
//! When links fail *and recover* — sometimes flapping — a routing plan has
//! two failure modes beyond the static-fault story:
//!
//! 1. **Thrash**: re-planning on every liveness transition readmits a
//!    flapping link the instant it reports up, routes fresh traffic onto
//!    it, and strands that traffic when the link dies again a few cycles
//!    later. [`LinkAdmission`] damps this with hysteresis — a link that
//!    went down is only readmitted after `K` consecutive stable cycles.
//! 2. **Staleness**: routing from a plan computed before the last
//!    transition silently sends packets over hardware that has since died.
//!    [`EpochPlanner`] stamps every plan with the admission epoch it was
//!    computed in and surfaces [`RoutingError::StaleEpoch`] when a route is
//!    requested from an outdated plan.
//!
//! Both the fault-aware deterministic router ([`crate::FaultAware`]) and
//! the masked NONBLOCKINGADAPTIVE ([`crate::NonblockingAdaptive`]) plug
//! into the planner; the packet simulator drives [`LinkAdmission`] directly
//! for its per-cycle path-policy masking.

use crate::adaptive::NonblockingAdaptive;
use crate::assignment::RouteAssignment;
use crate::error::RoutingError;
use crate::path::Path;
use crate::router::SinglePathRouter;
use crate::FaultAware;
use ftclos_topo::{ChannelId, FaultSet, FaultyView, Ftree, Transition};
use ftclos_traffic::{Permutation, SdPair};

/// Hysteresis-damped channel admission: which channels a routing plan may
/// use, given the liveness transitions observed so far.
///
/// A `Down` transition excludes the channel immediately (packets must stop
/// riding a corpse at once). An `Up` transition only *starts a stability
/// clock*: the channel is readmitted after it has stayed up for `k`
/// consecutive cycles (`k = 0` readmits on the next [`LinkAdmission::tick`]
/// — per-cycle re-planning with no damping). A `Down` while the clock runs
/// resets it, so a flapping link stays excluded until it genuinely settles.
///
/// Feed observations with [`LinkAdmission::observe`], then call
/// [`LinkAdmission::tick`] once per cycle; `tick` reports whether the
/// admitted set changed and bumps the epoch counter when it did.
#[derive(Clone, Debug)]
pub struct LinkAdmission {
    k: u64,
    admitted: Vec<bool>,
    /// Cycle the channel last reported up, `u64::MAX` when no stability
    /// clock is running.
    pending_since: Vec<u64>,
    num_pending: usize,
    changed: bool,
    epoch: u64,
}

impl LinkAdmission {
    /// All `num_channels` channels admitted, readmission after `k` stable
    /// cycles.
    pub fn new(num_channels: usize, k: u64) -> Self {
        Self {
            k,
            admitted: vec![true; num_channels],
            pending_since: vec![u64::MAX; num_channels],
            num_pending: 0,
            changed: false,
            epoch: 0,
        }
    }

    /// The hysteresis constant `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Record one liveness transition observed at `cycle`. Out-of-range
    /// channel ids are ignored.
    pub fn observe(&mut self, cycle: u64, ch: ChannelId, transition: Transition) {
        let Some(admitted) = self.admitted.get_mut(ch.index()) else {
            return;
        };
        let i = ch.index();
        match transition {
            Transition::Down => {
                if self.pending_since[i] != u64::MAX {
                    self.pending_since[i] = u64::MAX;
                    self.num_pending -= 1;
                }
                if *admitted {
                    *admitted = false;
                    self.changed = true;
                }
            }
            Transition::Up => {
                if !*admitted && self.pending_since[i] == u64::MAX {
                    self.pending_since[i] = cycle;
                    self.num_pending += 1;
                }
            }
        }
    }

    /// Advance to `cycle`: readmit channels whose stability clock has run
    /// `k` cycles. Returns whether the admitted set changed since the last
    /// tick (from exclusions or readmissions) and bumps the epoch when so.
    pub fn tick(&mut self, cycle: u64) -> bool {
        if self.num_pending > 0 {
            for i in 0..self.pending_since.len() {
                let since = self.pending_since[i];
                if since != u64::MAX && cycle.saturating_sub(since) >= self.k {
                    self.pending_since[i] = u64::MAX;
                    self.num_pending -= 1;
                    self.admitted[i] = true;
                    self.changed = true;
                }
            }
        }
        let changed = self.changed;
        if changed {
            self.epoch += 1;
            self.changed = false;
        }
        changed
    }

    /// Whether the channel is currently admitted for routing.
    pub fn is_admitted(&self, ch: ChannelId) -> bool {
        self.admitted.get(ch.index()).copied().unwrap_or(false)
    }

    /// Admission bitmap indexed by channel id (`true` = usable).
    pub fn mask(&self) -> &[bool] {
        &self.admitted
    }

    /// Epoch counter: bumped by every tick that changed the admitted set.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Channels currently excluded from routing.
    pub fn num_excluded(&self) -> usize {
        self.admitted.iter().filter(|&&a| !a).count()
    }

    /// The excluded channels as a [`FaultSet`], for the masked analyzers.
    pub fn to_fault_set(&self) -> FaultSet {
        let mut set = FaultSet::new();
        for (i, &admitted) in self.admitted.iter().enumerate() {
            if !admitted {
                set.fail_channel(ChannelId(i as u32));
            }
        }
        set
    }
}

/// A routing plan stamped with the admission epoch it was computed in.
#[derive(Clone, Debug)]
pub struct EpochPlan {
    epoch: u64,
    assignment: RouteAssignment,
}

impl EpochPlan {
    /// The epoch the plan was computed in.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying route assignment.
    pub fn assignment(&self) -> &RouteAssignment {
        &self.assignment
    }
}

/// Epoch-based re-planning over a fat-tree: owns the [`LinkAdmission`]
/// state, plans through the masked NONBLOCKINGADAPTIVE or a fault-aware
/// deterministic router, and rejects routes from stale plans.
#[derive(Clone, Debug)]
pub struct EpochPlanner<'a> {
    ft: &'a Ftree,
    adaptive: NonblockingAdaptive<'a>,
    admission: LinkAdmission,
}

impl<'a> EpochPlanner<'a> {
    /// Planner over `ft` with hysteresis constant `k`.
    ///
    /// # Errors
    /// Propagates [`NonblockingAdaptive::new`] precondition failures.
    pub fn new(ft: &'a Ftree, k: u64) -> Result<Self, RoutingError> {
        Ok(Self {
            ft,
            adaptive: NonblockingAdaptive::new(ft)?,
            admission: LinkAdmission::new(ft.topology().num_channels(), k),
        })
    }

    /// The admission state (mask, epoch, exclusion counts).
    pub fn admission(&self) -> &LinkAdmission {
        &self.admission
    }

    /// Current plan epoch: plans older than this are stale.
    pub fn epoch(&self) -> u64 {
        self.admission.epoch()
    }

    /// Record one liveness transition observed at `cycle`.
    pub fn observe(&mut self, cycle: u64, ch: ChannelId, transition: Transition) {
        self.admission.observe(cycle, ch, transition);
    }

    /// Advance to `cycle`; returns whether the epoch advanced (i.e. every
    /// outstanding [`EpochPlan`] just went stale and needs re-planning).
    pub fn tick(&mut self, cycle: u64) -> bool {
        self.admission.tick(cycle)
    }

    /// Plan `perm` through the masked NONBLOCKINGADAPTIVE over the
    /// currently admitted channels.
    ///
    /// # Errors
    /// As for [`NonblockingAdaptive::route_pattern_masked`].
    pub fn plan_adaptive(&self, perm: &Permutation) -> Result<EpochPlan, RoutingError> {
        let faults = self.admission.to_fault_set();
        let view = FaultyView::new(self.ft.topology(), &faults);
        let assignment = self.adaptive.route_pattern_masked(perm, &view)?;
        Ok(EpochPlan {
            epoch: self.admission.epoch(),
            assignment,
        })
    }

    /// Plan `perm` through a fault-aware single-path deterministic router
    /// over the currently admitted channels.
    ///
    /// # Errors
    /// As for [`FaultAware::route_pattern_checked`] — in particular
    /// [`RoutingError::PathFaulted`] when a pair's pinned path crosses an
    /// unadmitted channel.
    pub fn plan_deterministic<R: SinglePathRouter + Clone>(
        &self,
        router: &R,
        perm: &Permutation,
    ) -> Result<EpochPlan, RoutingError> {
        let faults = self.admission.to_fault_set();
        let view = FaultyView::new(self.ft.topology(), &faults);
        let assignment = FaultAware::new(router.clone(), &view).route_pattern_checked(perm)?;
        Ok(EpochPlan {
            epoch: self.admission.epoch(),
            assignment,
        })
    }

    /// Route `pair` from `plan`, first checking the plan is current.
    ///
    /// # Errors
    /// * [`RoutingError::StaleEpoch`] when the fabric's admitted set
    ///   changed after the plan was computed,
    /// * [`RoutingError::NoLivePath`] when the (current) plan does not
    ///   cover the pair.
    pub fn route(&self, plan: &EpochPlan, pair: SdPair) -> Result<Path, RoutingError> {
        let current = self.admission.epoch();
        if plan.epoch != current {
            return Err(RoutingError::StaleEpoch {
                plan_epoch: plan.epoch,
                current_epoch: current,
            });
        }
        plan.assignment
            .path_of(pair)
            .cloned()
            .ok_or(RoutingError::NoLivePath {
                src: pair.src,
                dst: pair.dst,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yuan::YuanDeterministic;
    use ftclos_traffic::patterns;

    #[test]
    fn down_excludes_immediately_up_waits_k_cycles() {
        let mut adm = LinkAdmission::new(8, 10);
        let ch = ChannelId(3);
        adm.observe(5, ch, Transition::Down);
        assert!(adm.tick(5), "exclusion changes the set");
        assert!(!adm.is_admitted(ch));
        assert_eq!(adm.epoch(), 1);
        adm.observe(7, ch, Transition::Up);
        for cycle in 7..17 {
            assert!(!adm.tick(cycle), "cycle {cycle}: still inside hysteresis");
            assert!(!adm.is_admitted(ch));
        }
        assert!(adm.tick(17), "10 stable cycles elapsed");
        assert!(adm.is_admitted(ch));
        assert_eq!(adm.epoch(), 2);
        assert_eq!(adm.num_excluded(), 0);
    }

    #[test]
    fn flap_resets_the_stability_clock() {
        let mut adm = LinkAdmission::new(4, 10);
        let ch = ChannelId(0);
        adm.observe(0, ch, Transition::Down);
        adm.tick(0);
        adm.observe(2, ch, Transition::Up);
        adm.tick(2);
        // Flap at cycle 8: clock resets, no readmission at 12.
        adm.observe(8, ch, Transition::Down);
        adm.tick(8);
        adm.observe(9, ch, Transition::Up);
        for cycle in 9..19 {
            assert!(!adm.tick(cycle));
        }
        assert!(adm.tick(19), "clock restarted at the second up");
        assert!(adm.is_admitted(ch));
    }

    #[test]
    fn zero_k_readmits_on_next_tick() {
        let mut adm = LinkAdmission::new(4, 0);
        let ch = ChannelId(1);
        adm.observe(3, ch, Transition::Down);
        assert!(adm.tick(3));
        adm.observe(4, ch, Transition::Up);
        assert!(adm.tick(4), "k = 0: no damping");
        assert!(adm.is_admitted(ch));
    }

    #[test]
    fn fault_set_mirrors_exclusions() {
        let mut adm = LinkAdmission::new(6, 5);
        adm.observe(0, ChannelId(2), Transition::Down);
        adm.observe(0, ChannelId(4), Transition::Down);
        adm.tick(0);
        let set = adm.to_fault_set();
        assert_eq!(set.num_failed_channels(), 2);
        assert!(set.failed_channels().any(|c| c == ChannelId(2)));
        assert_eq!(adm.mask().iter().filter(|&&a| !a).count(), 2);
        // Out-of-range observations are ignored.
        adm.observe(1, ChannelId(99), Transition::Down);
        assert!(!adm.tick(1));
    }

    #[test]
    fn stale_plan_is_rejected_and_replan_recovers() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut planner = EpochPlanner::new(&ft, 3).unwrap();
        let perm = patterns::shift(10, 2);
        let plan = planner.plan_adaptive(&perm).unwrap();
        let pair = perm.pairs()[0];
        assert!(planner.route(&plan, pair).is_ok());
        // A transition advances the epoch: the old plan goes stale.
        planner.observe(100, ft.up_channel(0, 0), Transition::Down);
        assert!(planner.tick(100));
        let err = planner.route(&plan, pair).unwrap_err();
        assert_eq!(
            err,
            RoutingError::StaleEpoch {
                plan_epoch: 0,
                current_epoch: 1
            }
        );
        // Re-planning under the new epoch routes around the dead uplink.
        let fresh = planner.plan_adaptive(&perm).unwrap();
        let path = planner.route(&fresh, pair).unwrap();
        assert!(!path.channels().contains(&ft.up_channel(0, 0)));
        // Pairs outside the plan surface NoLivePath.
        let off_plan = SdPair::new(0, 5);
        if !perm.pairs().contains(&off_plan) {
            assert!(matches!(
                planner.route(&fresh, off_plan),
                Err(RoutingError::NoLivePath { .. })
            ));
        }
    }

    #[test]
    fn deterministic_plan_fails_on_unadmitted_pinned_path() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let mut planner = EpochPlanner::new(&ft, 2).unwrap();
        let perm = patterns::shift(10, 2);
        assert!(planner.plan_deterministic(&yuan, &perm).is_ok());
        // Kill top (0,0): the i=0 -> j=0 pinned pairs become unplannable.
        for v in 0..ft.r() {
            planner.observe(50, ft.up_channel(v, 0), Transition::Down);
            planner.observe(50, ft.down_channel(0, v), Transition::Down);
        }
        planner.tick(50);
        let err = planner.plan_deterministic(&yuan, &perm).unwrap_err();
        assert!(matches!(err, RoutingError::PathFaulted { .. }), "{err:?}");
        // The adaptive planner still covers the same pattern.
        assert!(planner.plan_adaptive(&perm).is_ok());
    }

    #[test]
    fn readmission_restores_the_deterministic_plan() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let mut planner = EpochPlanner::new(&ft, 4).unwrap();
        let perm = patterns::shift(10, 2);
        planner.observe(10, ft.up_channel(0, 0), Transition::Down);
        planner.tick(10);
        assert!(planner.plan_deterministic(&yuan, &perm).is_err());
        planner.observe(20, ft.up_channel(0, 0), Transition::Up);
        planner.tick(20);
        assert!(
            planner.plan_deterministic(&yuan, &perm).is_err(),
            "still excluded during hysteresis"
        );
        planner.tick(24);
        assert_eq!(planner.admission().num_excluded(), 0);
        assert!(planner.plan_deterministic(&yuan, &perm).is_ok());
    }
}
