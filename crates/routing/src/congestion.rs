//! Min-congestion unsplittable-flow routing (the load-aware *global*
//! router family).
//!
//! The paper's Lemma 1 is a statement about unsplittable flows: a pattern
//! blocks exactly when two flows are forced onto one channel. This module
//! attacks the optimization form of that statement — *given* a pattern and
//! a candidate path set per SD pair, pick one path per pair minimizing the
//! maximum link load — with the standard playbook for minimum-congestion
//! unsplittable-flow routing in data-center networks:
//!
//! * **greedy min-max placement** ([`CongestionMode::Greedy`]): flows are
//!   placed in pattern order, each on the candidate whose bottleneck
//!   channel ends up least loaded;
//! * **seeded randomized rounding** ([`CongestionMode::Rounded`]): the
//!   fractional multipath split (the uniform `1/k` spread of
//!   [`ObliviousMultipath`]) is rounded to one path per flow by seeded
//!   sampling, best of a configurable number of trials;
//! * **local-search repair** ([`CongestionMode::Repaired`]): starting from
//!   the best of the above (plus any warm starts), flows on the
//!   most-loaded channel are re-homed one at a time; a move is accepted
//!   only if it lexicographically reduces `(max load, channels at max)`,
//!   so the max link load never increases across accepted moves, and the
//!   search stops when no single-flow move improves.
//!
//! Unlike every per-pair scheme in this crate, the choice for one pair
//! depends on the whole pattern, so the family sits behind a *plan step*:
//! [`GlobalRouter::plan`] produces a [`CongestionPlan`], which lowers to
//! the existing traits for everything downstream —
//! [`CongestionPlan::assignment`] for the contention analyzers,
//! [`CongestionPlan::load_view`] for the fluid flow simulator, and
//! [`CongestionPlan::lower`] for a [`SinglePathRouter`] the
//! [`crate::PathArena`] / contention engine can freeze. [`MinCongestion`]
//! also implements [`PatternRouter`] directly (plan-then-materialize), so
//! the blanket [`crate::LinkLoadView`] impl applies unchanged.
//!
//! Everything is deterministic: placements depend only on the pattern
//! order, candidate order, channel ids, and the configured seed — never on
//! thread count or hash iteration order.

use crate::assignment::RouteAssignment;
use crate::error::RoutingError;
use crate::loadview::{FlowLinks, LinkLoadView};
use crate::multipath::ObliviousMultipath;
use crate::multipath::SpreadPolicy;
use crate::path::Path;
use crate::router::{PatternRouter, SinglePathRouter};
use ftclos_obs::{Noop, Recorder};
use ftclos_topo::{ChannelId, FaultyView, Ftree};
use ftclos_traffic::{Permutation, SdPair};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// A candidate path set per SD pair — the search space the min-congestion
/// solver optimizes over.
///
/// Contract: `candidates` returns at least one path for every in-range
/// pair, in a deterministic order (self-pairs return the single empty
/// path); an unroutable pair is an error, never an empty set.
pub trait PathCandidates {
    /// Leaf universe size of the fabric.
    fn ports(&self) -> u32;

    /// All admissible paths for `pair`, deterministic order.
    ///
    /// # Errors
    /// [`RoutingError::NoLivePath`] when the pair cannot be connected at
    /// all; [`RoutingError::PortOutOfRange`] for bad pairs.
    fn candidates(&self, pair: SdPair) -> Result<Vec<Path>, RoutingError>;
}

/// The `ftree(n+m, r)` candidate set: one path per top switch (the
/// [`ObliviousMultipath`] spread set), optionally masked by a fault
/// overlay so dead candidates never enter the search.
#[derive(Clone, Copy, Debug)]
pub struct FtreeCandidates<'a> {
    mp: ObliviousMultipath<'a>,
    view: Option<&'a FaultyView<'a>>,
}

impl<'a> FtreeCandidates<'a> {
    /// Candidates over the pristine fabric.
    pub fn pristine(ft: &'a Ftree) -> Self {
        Self {
            mp: ObliviousMultipath::new(ft, SpreadPolicy::RoundRobin),
            view: None,
        }
    }

    /// Candidates over the surviving hardware only.
    pub fn masked(ft: &'a Ftree, view: &'a FaultyView<'a>) -> Self {
        Self {
            mp: ObliviousMultipath::new(ft, SpreadPolicy::RoundRobin),
            view: Some(view),
        }
    }
}

impl PathCandidates for FtreeCandidates<'_> {
    fn ports(&self) -> u32 {
        self.mp.ports()
    }

    fn candidates(&self, pair: SdPair) -> Result<Vec<Path>, RoutingError> {
        for port in [pair.src, pair.dst] {
            if port >= self.ports() {
                return Err(RoutingError::PortOutOfRange {
                    port,
                    ports: self.ports(),
                });
            }
        }
        match self.view {
            None => Ok(self.mp.paths(pair)),
            Some(view) => self.mp.paths_masked(pair, view),
        }
    }
}

/// Adapt any closure `SdPair -> candidate paths` into a provider — the
/// bridge for fabrics without a dedicated provider (k-ary n-trees via
/// [`crate::XgftRouter::all_paths`], the recursive construction, test
/// doubles).
pub struct FnCandidates<F> {
    ports: u32,
    f: F,
}

impl<F> FnCandidates<F>
where
    F: Fn(SdPair) -> Result<Vec<Path>, RoutingError>,
{
    /// Wrap a closure over a `ports`-leaf universe.
    pub fn new(ports: u32, f: F) -> Self {
        Self { ports, f }
    }
}

impl<F> PathCandidates for FnCandidates<F>
where
    F: Fn(SdPair) -> Result<Vec<Path>, RoutingError>,
{
    fn ports(&self) -> u32 {
        self.ports
    }

    fn candidates(&self, pair: SdPair) -> Result<Vec<Path>, RoutingError> {
        for port in [pair.src, pair.dst] {
            if port >= self.ports {
                return Err(RoutingError::PortOutOfRange {
                    port,
                    ports: self.ports,
                });
            }
        }
        (self.f)(pair)
    }
}

/// Which member of the router family solves the placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionMode {
    /// Greedy min-max placement only.
    Greedy,
    /// Best of the seeded randomized-rounding trials only.
    Rounded,
    /// Best of greedy + rounding trials (+ warm starts), then local-search
    /// repair to a single-flow-move local optimum.
    Repaired,
}

impl CongestionMode {
    /// Scheme name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CongestionMode::Greedy => "congestion-greedy",
            CongestionMode::Rounded => "congestion-rounded",
            CongestionMode::Repaired => "congestion-repaired",
        }
    }
}

/// Solver knobs. Every field participates in determinism: two solves with
/// equal configs over equal inputs produce identical plans.
#[derive(Clone, Copy, Debug)]
pub struct CongestionConfig {
    /// Family member to run.
    pub mode: CongestionMode,
    /// RNG seed for the rounding trials.
    pub seed: u64,
    /// Independent rounding trials (best one wins); at least 1 is used
    /// whenever rounding participates.
    pub rounding_trials: u32,
    /// Hard cap on accepted repair moves (a termination backstop — the
    /// lexicographic acceptance rule already forces termination).
    pub max_moves: u64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        Self {
            mode: CongestionMode::Repaired,
            seed: 0,
            rounding_trials: 4,
            max_moves: 100_000,
        }
    }
}

/// A global router: plans a whole pattern at once, then lowers.
pub trait GlobalRouter {
    /// Leaf universe size of the fabric.
    fn ports(&self) -> u32;

    /// Plan the pattern: one chosen candidate per pair.
    ///
    /// # Errors
    /// Provider errors (out-of-range pairs, unroutable pairs).
    fn plan(&self, perm: &Permutation) -> Result<CongestionPlan, RoutingError>;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}

/// The min-congestion router family over any [`PathCandidates`] provider.
#[derive(Clone, Debug)]
pub struct MinCongestion<C> {
    provider: C,
    config: CongestionConfig,
}

impl<C: PathCandidates> MinCongestion<C> {
    /// Repaired-mode router with default config.
    pub fn new(provider: C) -> Self {
        Self::with_config(provider, CongestionConfig::default())
    }

    /// Router with explicit config.
    pub fn with_config(provider: C, config: CongestionConfig) -> Self {
        Self { provider, config }
    }

    /// The active config.
    pub fn config(&self) -> CongestionConfig {
        self.config
    }

    /// Plan `perm` (no warm starts, no instrumentation).
    ///
    /// # Errors
    /// Provider errors for any pair of the pattern.
    pub fn plan(&self, perm: &Permutation) -> Result<CongestionPlan, RoutingError> {
        self.plan_seeded_with(perm, &[], &Noop)
    }

    /// [`MinCongestion::plan`] with instrumentation: placement (greedy +
    /// rounding + start selection) records under span `congestion.place`,
    /// the local search under `congestion.repair`, with counters
    /// `congestion.moves` / `congestion.rounds` and gauge
    /// `congestion.max_load`.
    ///
    /// # Errors
    /// As for [`MinCongestion::plan`].
    pub fn plan_with<Rec: Recorder>(
        &self,
        perm: &Permutation,
        rec: &Rec,
    ) -> Result<CongestionPlan, RoutingError> {
        self.plan_seeded_with(perm, &[], rec)
    }

    /// Plan with *warm starts*: each seed assignment that routes exactly
    /// the pattern's pairs along candidate paths is projected into the
    /// search space and competes with greedy and the rounding trials
    /// (seeds that don't project — a pair missing, or a path outside the
    /// candidate set — are skipped). Because repair never worsens the
    /// lexicographic `(max load, channels at max)` objective, a repaired
    /// plan is guaranteed no worse than every projectable seed.
    ///
    /// # Errors
    /// As for [`MinCongestion::plan`].
    pub fn plan_seeded(
        &self,
        perm: &Permutation,
        seeds: &[&RouteAssignment],
    ) -> Result<CongestionPlan, RoutingError> {
        self.plan_seeded_with(perm, seeds, &Noop)
    }

    /// [`MinCongestion::plan_seeded`] with instrumentation (see
    /// [`MinCongestion::plan_with`]).
    ///
    /// # Errors
    /// As for [`MinCongestion::plan`].
    pub fn plan_seeded_with<Rec: Recorder>(
        &self,
        perm: &Permutation,
        seeds: &[&RouteAssignment],
        rec: &Rec,
    ) -> Result<CongestionPlan, RoutingError> {
        let mut pairs = Vec::with_capacity(perm.len());
        let mut cands: Vec<Vec<Path>> = Vec::with_capacity(perm.len());
        for &pair in perm.pairs() {
            let c = self.provider.candidates(pair)?;
            if c.is_empty() {
                return Err(RoutingError::NoLivePath {
                    src: pair.src,
                    dst: pair.dst,
                });
            }
            pairs.push(pair);
            cands.push(c);
        }
        let num_channels = cands
            .iter()
            .flat_map(|c| c.iter())
            .flat_map(|p| p.channels())
            .map(|c| c.index() + 1)
            .max()
            .unwrap_or(0);

        // Placement: collect the competing starts and keep the best.
        let place = rec.span("congestion.place");
        let mut starts: Vec<Vec<usize>> = Vec::new();
        match self.config.mode {
            CongestionMode::Greedy => starts.push(greedy_placement(&cands, num_channels)),
            CongestionMode::Rounded => {
                rounding_trials(&cands, &self.config, &mut starts);
            }
            CongestionMode::Repaired => {
                starts.push(greedy_placement(&cands, num_channels));
                rounding_trials(&cands, &self.config, &mut starts);
                for seed in seeds {
                    if let Some(projected) = project_assignment(seed, &pairs, &cands) {
                        starts.push(projected);
                    }
                }
            }
        }
        let mut best: Option<(Vec<usize>, (u32, u32))> = None;
        for choice in starts {
            let score = score_placement(&cands, &choice, num_channels);
            if best.as_ref().is_none_or(|(_, s)| score < *s) {
                best = Some((choice, score));
            }
        }
        let (choice, _) = best.expect("at least one start");
        let mut state = PlacementState::new(&cands, choice, num_channels);
        drop(place);

        // Local-search repair (repaired mode only).
        let mut moves = 0u64;
        let mut rounds = 0u64;
        let mut repair_trace = vec![state.tracker.max];
        if self.config.mode == CongestionMode::Repaired {
            let _span = rec.span("congestion.repair");
            (moves, rounds) = repair(&cands, &mut state, self.config.max_moves, &mut repair_trace);
        }
        rec.add("congestion.moves", moves);
        rec.add("congestion.rounds", rounds);
        rec.gauge("congestion.max_load", state.tracker.max as u64);

        let witness = state.witness();
        Ok(CongestionPlan {
            name: self.config.mode.name(),
            ports: self.provider.ports(),
            pairs,
            max_load: state.tracker.max,
            channels_at_max: state.tracker.count_at_max(),
            witness,
            choice: state.choice,
            candidates: cands,
            moves,
            rounds,
            repair_trace,
        })
    }
}

impl<C: PathCandidates> GlobalRouter for MinCongestion<C> {
    fn ports(&self) -> u32 {
        self.provider.ports()
    }

    fn plan(&self, perm: &Permutation) -> Result<CongestionPlan, RoutingError> {
        MinCongestion::plan(self, perm)
    }

    fn name(&self) -> &'static str {
        self.config.mode.name()
    }
}

/// Plan-then-materialize: the global router fits the existing pattern
/// interface (and hence, via the blanket impls, [`LinkLoadView`]).
impl<C: PathCandidates> PatternRouter for MinCongestion<C> {
    fn ports(&self) -> u32 {
        self.provider.ports()
    }

    fn route_pattern(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError> {
        Ok(MinCongestion::plan(self, perm)?.assignment())
    }

    fn name(&self) -> &'static str {
        self.config.mode.name()
    }
}

/// A solved placement: one chosen candidate per pair of the planned
/// pattern, plus the solve's summary statistics.
#[derive(Clone, Debug)]
pub struct CongestionPlan {
    name: &'static str,
    ports: u32,
    pairs: Vec<SdPair>,
    candidates: Vec<Vec<Path>>,
    choice: Vec<usize>,
    max_load: u32,
    channels_at_max: u32,
    witness: Option<ChannelId>,
    moves: u64,
    rounds: u64,
    repair_trace: Vec<u32>,
}

impl CongestionPlan {
    /// Scheme name (the family member that produced the plan).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Planned pairs, in pattern order.
    pub fn pairs(&self) -> &[SdPair] {
        &self.pairs
    }

    /// Number of planned pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the plan covers no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The chosen path of planned pair `i`.
    pub fn chosen(&self, i: usize) -> &Path {
        &self.candidates[i][self.choice[i]]
    }

    /// Maximum link load of the placement (flows per channel).
    pub fn max_link_load(&self) -> u32 {
        self.max_load
    }

    /// Number of channels at the maximum load.
    pub fn channels_at_max(&self) -> u32 {
        self.channels_at_max
    }

    /// The deterministic witness: the lowest-id channel carrying the
    /// maximum load (`None` when nothing is loaded).
    pub fn witness_channel(&self) -> Option<ChannelId> {
        self.witness
    }

    /// Accepted repair moves.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Repair rounds (move searches, including the final failed one).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Max link load after the start placement and after each accepted
    /// repair move — non-increasing by the acceptance rule.
    pub fn repair_trace(&self) -> &[u32] {
        &self.repair_trace
    }

    /// Lower to a [`RouteAssignment`] (the shape every contention analyzer
    /// consumes).
    pub fn assignment(&self) -> RouteAssignment {
        RouteAssignment::new(
            self.pairs
                .iter()
                .enumerate()
                .map(|(i, &pair)| (pair, self.chosen(i).clone()))
                .collect(),
        )
    }

    /// Lower to a [`LinkLoadView`] serving the chosen paths (unit weight),
    /// for the fluid flow simulator — no re-planning.
    pub fn load_view(&self) -> PlanLoadView<'_> {
        PlanLoadView { plan: self }
    }

    /// Lower to a [`SinglePathRouter`]: planned pairs route along their
    /// chosen path, everything else falls through to `base` — the shape
    /// [`crate::PathArena`] and the contention engine freeze.
    pub fn lower<B: SinglePathRouter>(&self, base: B) -> LoweredPlan<B> {
        let routes = self
            .pairs
            .iter()
            .enumerate()
            .map(|(i, &pair)| (pair, self.chosen(i).clone()))
            .collect();
        LoweredPlan {
            name: self.name,
            routes,
            base,
        }
    }
}

/// [`LinkLoadView`] over a frozen plan: serves the chosen paths for
/// exactly the planned pattern.
#[derive(Clone, Copy, Debug)]
pub struct PlanLoadView<'a> {
    plan: &'a CongestionPlan,
}

impl LinkLoadView for PlanLoadView<'_> {
    fn ports(&self) -> u32 {
        self.plan.ports
    }

    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError> {
        if perm.pairs() != self.plan.pairs {
            return Err(RoutingError::Precondition {
                router: self.plan.name,
                detail: "plan was computed for a different pattern".to_string(),
            });
        }
        Ok(self
            .plan
            .pairs
            .iter()
            .enumerate()
            .map(|(i, &pair)| FlowLinks::single_path(pair, self.plan.chosen(i).channels()))
            .collect())
    }

    fn name(&self) -> &'static str {
        self.plan.name
    }
}

/// A plan lowered onto the per-pair [`SinglePathRouter`] interface.
#[derive(Clone, Debug)]
pub struct LoweredPlan<B> {
    name: &'static str,
    routes: HashMap<SdPair, Path>,
    base: B,
}

impl<B: SinglePathRouter> LoweredPlan<B> {
    /// True when `pair` was planned (routes along the optimized path).
    pub fn is_planned(&self, pair: SdPair) -> bool {
        self.routes.contains_key(&pair)
    }
}

impl<B: SinglePathRouter> SinglePathRouter for LoweredPlan<B> {
    fn ports(&self) -> u32 {
        self.base.ports()
    }

    fn route(&self, pair: SdPair) -> Path {
        match self.routes.get(&pair) {
            Some(path) => path.clone(),
            None => self.base.route(pair),
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// The demand lower bound `⌈max per-channel forced-pair count / capacity⌉`
/// on the max link load *any* unsplittable placement over `provider`'s
/// candidates can achieve for `perm`: a channel crossed by **every**
/// candidate of a pair must carry that pair no matter the placement, and a
/// nonempty flow must load some channel. Every solver output — and every
/// baseline router confined to the same candidate sets — sits at or above
/// this bound.
///
/// # Errors
/// Provider errors for any pair of the pattern.
pub fn demand_lower_bound<C: PathCandidates + ?Sized>(
    provider: &C,
    perm: &Permutation,
    capacity: u32,
) -> Result<u32, RoutingError> {
    let capacity = capacity.max(1);
    let mut forced: HashMap<ChannelId, u32> = HashMap::new();
    let mut any_flow = false;
    for &pair in perm.pairs() {
        let cands = provider.candidates(pair)?;
        if cands.is_empty() {
            return Err(RoutingError::NoLivePath {
                src: pair.src,
                dst: pair.dst,
            });
        }
        if cands.iter().any(|p| p.is_empty()) {
            continue; // the pair can stay off the network entirely
        }
        any_flow = true;
        let mut inter: Vec<ChannelId> = cands[0].channels().to_vec();
        for p in &cands[1..] {
            inter.retain(|c| p.channels().contains(c));
        }
        for c in inter {
            *forced.entry(c).or_insert(0) += 1;
        }
    }
    let max_forced = forced.values().copied().max().unwrap_or(0);
    let bound = max_forced.div_ceil(capacity);
    Ok(if any_flow { bound.max(1) } else { bound })
}

// ---------------------------------------------------------------------------
// Solver internals.

/// Dense per-channel load vector with a load histogram, so the
/// lexicographic objective `(max, channels at max)` updates in O(1) per
/// channel increment/decrement.
#[derive(Clone, Debug)]
struct LoadTracker {
    load: Vec<u32>,
    count_at: Vec<u32>,
    max: u32,
}

impl LoadTracker {
    fn new(num_channels: usize) -> Self {
        Self {
            load: vec![0; num_channels],
            count_at: vec![num_channels as u32],
            max: 0,
        }
    }

    #[inline]
    fn incr(&mut self, c: ChannelId) {
        let i = c.index();
        let old = self.load[i] as usize;
        self.load[i] += 1;
        self.count_at[old] -= 1;
        if self.count_at.len() <= old + 1 {
            self.count_at.push(0);
        }
        self.count_at[old + 1] += 1;
        if old as u32 + 1 > self.max {
            self.max = old as u32 + 1;
        }
    }

    #[inline]
    fn decr(&mut self, c: ChannelId) {
        let i = c.index();
        let old = self.load[i] as usize;
        debug_assert!(old > 0);
        self.load[i] -= 1;
        self.count_at[old] -= 1;
        self.count_at[old - 1] += 1;
        while self.max > 0 && self.count_at[self.max as usize] == 0 {
            self.max -= 1;
        }
    }

    #[inline]
    fn count_at_max(&self) -> u32 {
        if self.max == 0 {
            0
        } else {
            self.count_at[self.max as usize]
        }
    }

    #[inline]
    fn score(&self) -> (u32, u32) {
        (self.max, self.count_at_max())
    }
}

/// A placement under edit: chosen candidate per pair + the load tracker.
struct PlacementState {
    choice: Vec<usize>,
    tracker: LoadTracker,
}

impl PlacementState {
    fn new(cands: &[Vec<Path>], choice: Vec<usize>, num_channels: usize) -> Self {
        let mut tracker = LoadTracker::new(num_channels);
        for (c, &pick) in cands.iter().zip(&choice) {
            for &ch in c[pick].channels() {
                tracker.incr(ch);
            }
        }
        Self { choice, tracker }
    }

    /// Move pair `i` from its current candidate to candidate `to`.
    fn apply(&mut self, cands: &[Vec<Path>], i: usize, to: usize) {
        for &ch in cands[i][self.choice[i]].channels() {
            self.tracker.decr(ch);
        }
        for &ch in cands[i][to].channels() {
            self.tracker.incr(ch);
        }
        self.choice[i] = to;
    }

    /// Lowest-id channel at max load.
    fn witness(&self) -> Option<ChannelId> {
        if self.tracker.max == 0 {
            return None;
        }
        self.tracker
            .load
            .iter()
            .position(|&l| l == self.tracker.max)
            .map(|i| ChannelId(i as u32))
    }
}

/// Greedy min-max: place flows in pattern order, each on the candidate
/// minimizing `(bottleneck after placement, sum of current loads,
/// candidate index)`.
fn greedy_placement(cands: &[Vec<Path>], num_channels: usize) -> Vec<usize> {
    let mut load = vec![0u32; num_channels];
    let mut choice = Vec::with_capacity(cands.len());
    for c in cands {
        let mut best = 0usize;
        let mut best_key = (u32::MAX, u64::MAX);
        for (idx, path) in c.iter().enumerate() {
            let mut bottleneck = 0u32;
            let mut sum = 0u64;
            for &ch in path.channels() {
                let l = load[ch.index()];
                bottleneck = bottleneck.max(l + 1);
                sum += l as u64;
            }
            let key = (bottleneck, sum);
            if key < best_key {
                best_key = key;
                best = idx;
            }
        }
        for &ch in c[best].channels() {
            load[ch.index()] += 1;
        }
        choice.push(best);
    }
    choice
}

/// Seeded randomized rounding of the uniform fractional split: trial `t`
/// draws one candidate per pair from `ChaCha8(seed + t)`.
fn rounding_trials(cands: &[Vec<Path>], config: &CongestionConfig, out: &mut Vec<Vec<usize>>) {
    for t in 0..config.rounding_trials.max(1) {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(t as u64));
        out.push(
            cands
                .iter()
                .map(|c| {
                    if c.len() == 1 {
                        0
                    } else {
                        rng.gen_range(0..c.len())
                    }
                })
                .collect(),
        );
    }
}

/// Objective of a full placement.
fn score_placement(cands: &[Vec<Path>], choice: &[usize], num_channels: usize) -> (u32, u32) {
    let mut tracker = LoadTracker::new(num_channels);
    for (c, &pick) in cands.iter().zip(choice) {
        for &ch in c[pick].channels() {
            tracker.incr(ch);
        }
    }
    tracker.score()
}

/// Project a warm-start assignment into candidate indices; `None` when any
/// planned pair is missing from the seed or its path is not a candidate.
fn project_assignment(
    seed: &RouteAssignment,
    pairs: &[SdPair],
    cands: &[Vec<Path>],
) -> Option<Vec<usize>> {
    let by_pair: HashMap<SdPair, &Path> =
        seed.routes().iter().map(|(p, path)| (*p, path)).collect();
    pairs
        .iter()
        .zip(cands)
        .map(|(pair, c)| {
            let path = *by_pair.get(pair)?;
            c.iter().position(|cand| cand == path)
        })
        .collect()
}

/// Local search: repeatedly re-home one flow off a most-loaded channel.
/// A move is accepted iff it strictly reduces `(max, channels at max)`
/// lexicographically; the search stops when no flow on any max-load
/// channel has an improving move (or at `max_moves`). Deterministic:
/// channels scan ascending by id, flows in pattern order, candidates in
/// provider order, first improving move wins.
fn repair(
    cands: &[Vec<Path>],
    state: &mut PlacementState,
    max_moves: u64,
    trace: &mut Vec<u32>,
) -> (u64, u64) {
    let mut moves = 0u64;
    let mut rounds = 0u64;
    'search: while moves < max_moves && state.tracker.max > 1 {
        rounds += 1;
        let before = state.tracker.score();
        let hot_load = state.tracker.max;
        // Ascending scan over the channels currently at max load.
        for hot in 0..state.tracker.load.len() {
            if state.tracker.load[hot] != hot_load {
                continue;
            }
            let hot = ChannelId(hot as u32);
            for i in 0..cands.len() {
                if !cands[i][state.choice[i]].channels().contains(&hot) {
                    continue;
                }
                let from = state.choice[i];
                for to in 0..cands[i].len() {
                    if to == from {
                        continue;
                    }
                    state.apply(cands, i, to);
                    if state.tracker.score() < before {
                        moves += 1;
                        trace.push(state.tracker.max);
                        continue 'search;
                    }
                    state.apply(cands, i, from);
                }
            }
        }
        break; // no improving single-flow move exists
    }
    (moves, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PathArena;
    use crate::dmodk::DModK;
    use crate::router::route_all;
    use crate::xgft_routing::XgftRouter;
    use crate::yuan::YuanDeterministic;
    use ftclos_topo::{kary_ntree, FaultSet, Ftree};
    use ftclos_traffic::patterns;

    fn plan_of(ft: &Ftree, perm: &Permutation, mode: CongestionMode) -> CongestionPlan {
        let router = MinCongestion::with_config(
            FtreeCandidates::pristine(ft),
            CongestionConfig {
                mode,
                ..CongestionConfig::default()
            },
        );
        router.plan(perm).unwrap()
    }

    #[test]
    fn all_modes_route_valid_paths() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let perm = patterns::shift(10, 3);
        for mode in [
            CongestionMode::Greedy,
            CongestionMode::Rounded,
            CongestionMode::Repaired,
        ] {
            let plan = plan_of(&ft, &perm, mode);
            let a = plan.assignment();
            a.validate(ft.topology()).unwrap();
            assert_eq!(a.max_channel_load(), plan.max_link_load(), "{mode:?}");
            assert_eq!(a.len(), perm.len());
        }
    }

    #[test]
    fn beats_modular_routing_on_residue_collisions() {
        // Four sources in leaf 0 target destinations ≡ 0 mod 4: d-mod-k
        // piles them on one uplink (load 4); with all m tops admissible the
        // solver spreads them to load 1.
        let ft = Ftree::new(4, 4, 5).unwrap();
        let perm = Permutation::from_pairs(
            20,
            [
                SdPair::new(0, 4),
                SdPair::new(1, 8),
                SdPair::new(2, 12),
                SdPair::new(3, 16),
            ],
        )
        .unwrap();
        let dmodk = route_all(&DModK::new(&ft), &perm).unwrap();
        assert_eq!(dmodk.max_channel_load(), 4);
        for mode in [
            CongestionMode::Greedy,
            CongestionMode::Rounded,
            CongestionMode::Repaired,
        ] {
            let plan = plan_of(&ft, &perm, mode);
            assert!(
                plan.max_link_load() < 4,
                "{mode:?} got {}",
                plan.max_link_load()
            );
        }
        assert_eq!(
            plan_of(&ft, &perm, CongestionMode::Repaired).max_link_load(),
            1
        );
    }

    #[test]
    fn warm_started_repair_never_loses_to_its_seeds() {
        let ft = Ftree::new(2, 2, 6).unwrap(); // m < n²: baselines collide
        let router = MinCongestion::new(FtreeCandidates::pristine(&ft));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..8 {
            let perm = patterns::random_full(12, &mut rng);
            let dmodk = route_all(&DModK::new(&ft), &perm).unwrap();
            let smodk = route_all(&crate::dmodk::SModK::new(&ft), &perm).unwrap();
            let plan = router.plan_seeded(&perm, &[&dmodk, &smodk]).unwrap();
            assert!(plan.max_link_load() <= dmodk.max_channel_load());
            assert!(plan.max_link_load() <= smodk.max_channel_load());
        }
    }

    #[test]
    fn repair_trace_is_monotone_nonincreasing() {
        let ft = Ftree::new(3, 4, 6).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..6 {
            let perm = patterns::random_full(18, &mut rng);
            let plan = plan_of(&ft, &perm, CongestionMode::Repaired);
            let trace = plan.repair_trace();
            assert_eq!(trace.len() as u64, plan.moves() + 1);
            assert!(
                trace.windows(2).all(|w| w[1] <= w[0]),
                "max load rose during repair: {trace:?}"
            );
            assert_eq!(*trace.last().unwrap(), plan.max_link_load());
        }
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let perm = patterns::tornado(10);
        let mk = |seed| {
            MinCongestion::with_config(
                FtreeCandidates::pristine(&ft),
                CongestionConfig {
                    seed,
                    ..CongestionConfig::default()
                },
            )
            .plan(&perm)
            .unwrap()
        };
        let (a, b) = (mk(3), mk(3));
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(a.witness_channel(), b.witness_channel());
        assert_eq!(a.max_link_load(), b.max_link_load());
    }

    #[test]
    fn nonblocking_fabric_reaches_the_lower_bound() {
        // m = n²: a contention-free placement exists (Theorem 3); the
        // repaired solver must find load 1 on every structured pattern.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let provider = FtreeCandidates::pristine(&ft);
        for k in 1..10 {
            let perm = patterns::shift(10, k);
            let plan = plan_of(&ft, &perm, CongestionMode::Repaired);
            assert_eq!(plan.max_link_load(), 1, "shift:{k}");
            assert_eq!(demand_lower_bound(&provider, &perm, 1).unwrap(), 1);
        }
    }

    #[test]
    fn masked_candidates_avoid_dead_hardware() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let view = FaultyView::new(ft.topology(), &faults);
        let router = MinCongestion::new(FtreeCandidates::masked(&ft, &view));
        let perm = patterns::shift(10, 2);
        let plan = router.plan(&perm).unwrap();
        for (_, path) in plan.assignment().routes() {
            view.path_alive(path.channels()).unwrap();
        }
        // Yuan pins shift:2's (0,0) pairs to the dead top — the global
        // solver still delivers a load-1 placement on the survivors.
        assert_eq!(plan.max_link_load(), 1);
    }

    #[test]
    fn lowered_plan_feeds_the_arena() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let perm = patterns::shift(10, 3);
        let plan = plan_of(&ft, &perm, CongestionMode::Repaired);
        let lowered = plan.lower(DModK::new(&ft));
        assert!(lowered.is_planned(SdPair::new(0, 3)));
        let arena = PathArena::build(&lowered).unwrap();
        for (i, &pair) in plan.pairs().iter().enumerate() {
            assert_eq!(arena.path(pair), plan.chosen(i).channels(), "{pair}");
        }
        // Unplanned pairs fall through to the base router.
        let off_pattern = SdPair::new(0, 5);
        assert!(!lowered.is_planned(off_pattern));
        assert_eq!(
            arena.path(off_pattern),
            DModK::new(&ft).route(off_pattern).channels()
        );
    }

    #[test]
    fn load_view_serves_the_plan_and_rejects_other_patterns() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let perm = patterns::shift(10, 3);
        let plan = plan_of(&ft, &perm, CongestionMode::Repaired);
        let flows = plan.load_view().flow_links(&perm).unwrap();
        assert_eq!(flows.len(), perm.len());
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.pair, plan.pairs()[i]);
            assert!(f.links.iter().all(|&(_, w)| w == 1.0));
        }
        assert!(matches!(
            plan.load_view().flow_links(&patterns::shift(10, 4)),
            Err(RoutingError::Precondition { .. })
        ));
        assert_eq!(plan.load_view().name(), "congestion-repaired");
    }

    #[test]
    fn pattern_router_blanket_matches_plan() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = MinCongestion::new(FtreeCandidates::pristine(&ft));
        let perm = patterns::tornado(10);
        let via_pattern = router.route_pattern(&perm).unwrap();
        let via_plan = MinCongestion::plan(&router, &perm).unwrap().assignment();
        assert_eq!(via_pattern, via_plan);
        assert_eq!(PatternRouter::name(&router), "congestion-repaired");
        assert_eq!(GlobalRouter::ports(&router), 10);
    }

    #[test]
    fn works_over_kary_ntree_candidates() {
        let t = kary_ntree(2, 3).unwrap();
        let xr = XgftRouter::dmod(&t);
        let provider = FnCandidates::new(8, |pair| Ok(xr.all_paths(pair)));
        let router = MinCongestion::new(provider);
        let perm = patterns::bit_reversal(8).unwrap();
        let plan = MinCongestion::plan(&router, &perm).unwrap();
        plan.assignment().validate(t.topology()).unwrap();
        let baseline = route_all(&xr, &perm).unwrap();
        assert!(plan.max_link_load() <= baseline.max_channel_load());
        let bound = demand_lower_bound(
            &FnCandidates::new(8, |pair| Ok(xr.all_paths(pair))),
            &perm,
            1,
        )
        .unwrap();
        assert!(plan.max_link_load() >= bound);
    }

    #[test]
    fn instrumented_plan_matches_plain_and_emits_metrics() {
        let ft = Ftree::new(2, 2, 6).unwrap();
        let router = MinCongestion::new(FtreeCandidates::pristine(&ft));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let perm = patterns::random_full(12, &mut rng);
        let plain = router.plan(&perm).unwrap();
        let reg = ftclos_obs::Registry::new();
        let recorded = router.plan_with(&perm, &reg).unwrap();
        assert_eq!(plain.assignment(), recorded.assignment());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("congestion.moves"), Some(recorded.moves()));
        assert_eq!(snap.counter("congestion.rounds"), Some(recorded.rounds()));
        assert_eq!(
            snap.gauge("congestion.max_load"),
            Some(recorded.max_link_load() as u64)
        );
        for path in ["congestion.place", "congestion.repair"] {
            assert!(snap.spans.iter().any(|s| s.path == path), "missing {path}");
        }
    }

    #[test]
    fn witness_channel_carries_the_max_load() {
        let ft = Ftree::new(2, 2, 6).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let perm = patterns::random_full(12, &mut rng);
        let plan = plan_of(&ft, &perm, CongestionMode::Repaired);
        let witness = plan.witness_channel().expect("traffic flows");
        let loads = plan.assignment().channel_loads();
        assert_eq!(loads[&witness], plan.max_link_load());
        // Lowest-id among the max-load channels.
        for (&c, &l) in &loads {
            if l == plan.max_link_load() {
                assert!(witness <= c);
            }
        }
    }

    #[test]
    fn errors_propagate() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let router = MinCongestion::new(FtreeCandidates::pristine(&ft));
        let perm = Permutation::from_pairs(11, [SdPair::new(0, 10)]).unwrap();
        assert!(matches!(
            MinCongestion::plan(&router, &perm),
            Err(RoutingError::PortOutOfRange { .. })
        ));
        let mut faults = FaultSet::new();
        faults.fail_channel(ft.leaf_up_channel(0, 0));
        let view = FaultyView::new(ft.topology(), &faults);
        let masked = MinCongestion::new(FtreeCandidates::masked(&ft, &view));
        let perm = patterns::shift(10, 2);
        assert!(matches!(
            MinCongestion::plan(&masked, &perm),
            Err(RoutingError::NoLivePath { .. })
        ));
    }

    #[test]
    fn yuan_projection_preserves_the_perfect_placement() {
        // Warm-starting from Yuan's load-1 assignment keeps the plan at
        // load 1 even when greedy/rounding alone might wander.
        let ft = Ftree::new(3, 9, 4).unwrap();
        let router = MinCongestion::new(FtreeCandidates::pristine(&ft));
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..5 {
            let perm = patterns::random_full(12, &mut rng);
            let seed = route_all(&yuan, &perm).unwrap();
            assert_eq!(seed.max_channel_load(), 1);
            let plan = router.plan_seeded(&perm, &[&seed]).unwrap();
            assert_eq!(plan.max_link_load(), 1);
        }
    }
}
