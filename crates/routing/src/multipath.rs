//! Traffic-oblivious multi-path deterministic routing (paper Section IV.B).
//!
//! Packets of one SD pair are spread over several pre-determined paths,
//! either round-robin or uniformly at random, independent of the traffic
//! pattern. The paper's argument: because the *timing* of which path carries
//! which packet is unpredictable, nonblocking-ness still requires Lemma 1
//! over the **union** of the spread paths — so the bound `m >= n²` is
//! unchanged. [`MultipathAssignment::lemma1_violation`] is the executable
//! form of that argument.

use crate::error::RoutingError;
use crate::path::Path;
use ftclos_topo::{ChannelId, FaultyView, Ftree};
use ftclos_traffic::{Permutation, SdPair};
use rand::Rng;
use std::collections::HashMap;

/// How packets are spread over the candidate paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpreadPolicy {
    /// Deterministic round-robin over the candidate top switches.
    RoundRobin,
    /// Independent uniform random top switch per packet.
    Random,
}

/// Oblivious multipath routing over `ftree(n+m, r)`: every cross-switch SD
/// pair may use any of the `m` top switches.
#[derive(Clone, Copy, Debug)]
pub struct ObliviousMultipath<'a> {
    ft: &'a Ftree,
    policy: SpreadPolicy,
}

impl<'a> ObliviousMultipath<'a> {
    /// Create the router.
    pub fn new(ft: &'a Ftree, policy: SpreadPolicy) -> Self {
        Self { ft, policy }
    }

    /// The spread policy.
    pub fn policy(&self) -> SpreadPolicy {
        self.policy
    }

    /// Leaf count of the fabric.
    pub fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }

    /// The candidate path through top switch `t` for a cross-switch pair.
    fn path_via(&self, pair: SdPair, t: usize) -> Path {
        let n = self.ft.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        Path::new(vec![
            self.ft.leaf_up_channel(v, i),
            self.ft.up_channel(v, t),
            self.ft.down_channel(t, w),
            self.ft.leaf_down_channel(w, j),
        ])
    }

    /// All candidate paths for `pair` (one per top switch for cross-switch
    /// pairs; the single local path otherwise).
    pub fn paths(&self, pair: SdPair) -> Vec<Path> {
        let n = self.ft.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        if pair.src == pair.dst {
            return vec![Path::empty()];
        }
        if v == w {
            return vec![Path::new(vec![
                self.ft.leaf_up_channel(v, i),
                self.ft.leaf_down_channel(w, j),
            ])];
        }
        (0..self.ft.m()).map(|t| self.path_via(pair, t)).collect()
    }

    /// The path the `seq`-th packet of `pair` takes.
    ///
    /// Round-robin uses `seq mod m`; random ignores `seq` and draws from
    /// `rng`.
    pub fn packet_path<R: Rng>(&self, pair: SdPair, seq: u64, rng: &mut R) -> Path {
        let candidates = self.paths(pair);
        let idx = match self.policy {
            SpreadPolicy::RoundRobin => (seq % candidates.len() as u64) as usize,
            SpreadPolicy::Random => rng.gen_range(0..candidates.len()),
        };
        candidates[idx].clone()
    }

    /// Candidate paths for `pair` with dead candidates masked out: a
    /// spreader with local liveness information simply stops using paths
    /// that cross failed hardware.
    ///
    /// # Errors
    /// [`RoutingError::NoLivePath`] when every candidate is dead (for
    /// cross-switch pairs that means all `m` top switches are unreachable;
    /// for local pairs, the leaf cable itself).
    pub fn paths_masked(
        &self,
        pair: SdPair,
        view: &FaultyView<'_>,
    ) -> Result<Vec<Path>, RoutingError> {
        let live: Vec<Path> = self
            .paths(pair)
            .into_iter()
            .filter(|p| view.path_alive(p.channels()).is_ok())
            .collect();
        if live.is_empty() {
            return Err(RoutingError::NoLivePath {
                src: pair.src,
                dst: pair.dst,
            });
        }
        Ok(live)
    }

    /// The path the `seq`-th packet takes, skipping dead candidates.
    pub fn packet_path_masked<R: Rng>(
        &self,
        pair: SdPair,
        seq: u64,
        rng: &mut R,
        view: &FaultyView<'_>,
    ) -> Result<Path, RoutingError> {
        let candidates = self.paths_masked(pair, view)?;
        let idx = match self.policy {
            SpreadPolicy::RoundRobin => (seq % candidates.len() as u64) as usize,
            SpreadPolicy::Random => rng.gen_range(0..candidates.len()),
        };
        Ok(candidates[idx].clone())
    }

    /// Spread a whole pattern: each pair is associated with its full
    /// candidate set.
    pub fn spread_pattern(&self, perm: &Permutation) -> Result<MultipathAssignment, RoutingError> {
        let mut entries = Vec::with_capacity(perm.len());
        for &pair in perm.pairs() {
            for port in [pair.src, pair.dst] {
                if port >= self.ports() {
                    return Err(RoutingError::PortOutOfRange {
                        port,
                        ports: self.ports(),
                    });
                }
            }
            entries.push((pair, self.paths(pair)));
        }
        Ok(MultipathAssignment { entries })
    }

    /// Spread a whole pattern with dead candidates masked per pair.
    ///
    /// # Errors
    /// [`RoutingError::PortOutOfRange`] for bad pairs and
    /// [`RoutingError::NoLivePath`] when some pair loses all candidates.
    pub fn spread_pattern_masked(
        &self,
        perm: &Permutation,
        view: &FaultyView<'_>,
    ) -> Result<MultipathAssignment, RoutingError> {
        let mut entries = Vec::with_capacity(perm.len());
        for &pair in perm.pairs() {
            for port in [pair.src, pair.dst] {
                if port >= self.ports() {
                    return Err(RoutingError::PortOutOfRange {
                        port,
                        ports: self.ports(),
                    });
                }
            }
            entries.push((pair, self.paths_masked(pair, view)?));
        }
        Ok(MultipathAssignment { entries })
    }
}

/// The spread-path sets for a routed pattern.
#[derive(Clone, Debug, Default)]
pub struct MultipathAssignment {
    entries: Vec<(SdPair, Vec<Path>)>,
}

impl MultipathAssignment {
    /// The `(pair, candidate paths)` entries.
    pub fn entries(&self) -> &[(SdPair, Vec<Path>)] {
        &self.entries
    }

    /// Expected per-channel load when each pair spreads its unit of traffic
    /// uniformly over its candidates.
    pub fn expected_channel_loads(&self) -> HashMap<ChannelId, f64> {
        let mut loads = HashMap::new();
        for (_, paths) in &self.entries {
            if paths.is_empty() {
                continue;
            }
            let w = 1.0 / paths.len() as f64;
            for p in paths {
                for &c in p.channels() {
                    *loads.entry(c).or_insert(0.0) += w;
                }
            }
        }
        loads
    }

    /// Maximum expected channel load.
    pub fn max_expected_load(&self) -> f64 {
        self.expected_channel_loads()
            .values()
            .fold(0.0, |a, &b| a.max(b))
    }

    /// The Section IV.B test: is there a channel that lies in the candidate
    /// sets of two pairs with different sources **and** different
    /// destinations? If so, an adversarial packet timing routes both pairs
    /// onto that channel simultaneously — the pattern can block.
    ///
    /// Returns a witnessing `(channel, pair1, pair2)` if one exists.
    pub fn lemma1_violation(&self) -> Option<(ChannelId, SdPair, SdPair)> {
        // channel -> (first pair seen)
        let mut owner: HashMap<ChannelId, Vec<SdPair>> = HashMap::new();
        for (pair, paths) in &self.entries {
            let mut mine: Vec<ChannelId> = paths
                .iter()
                .flat_map(|p| p.channels().iter().copied())
                .collect();
            mine.sort_unstable();
            mine.dedup();
            for c in mine {
                owner.entry(c).or_default().push(*pair);
            }
        }
        for (c, pairs) in owner {
            for (a_idx, &a) in pairs.iter().enumerate() {
                for &b in &pairs[a_idx + 1..] {
                    if a.src != b.src && a.dst != b.dst {
                        return Some((c, a, b));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(9)
    }

    #[test]
    fn candidate_sets() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        assert_eq!(r.paths(SdPair::new(0, 4)).len(), 3, "one per top");
        assert_eq!(r.paths(SdPair::new(0, 1)).len(), 1, "same switch");
        assert_eq!(r.paths(SdPair::new(0, 0)).len(), 1);
        assert!(r.paths(SdPair::new(0, 0))[0].is_empty());
        for p in r.paths(SdPair::new(0, 4)) {
            p.validate(
                ft.topology(),
                ftclos_topo::NodeId(0),
                ftclos_topo::NodeId(4),
            )
            .unwrap();
        }
    }

    #[test]
    fn round_robin_cycles() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        let pair = SdPair::new(0, 4);
        let mut g = rng();
        let p0 = r.packet_path(pair, 0, &mut g);
        let p3 = r.packet_path(pair, 3, &mut g);
        assert_eq!(p0, p3, "period m = 3");
        let p1 = r.packet_path(pair, 1, &mut g);
        assert_ne!(p0, p1);
    }

    #[test]
    fn random_draws_valid_candidates() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let pair = SdPair::new(0, 4);
        let candidates = r.paths(pair);
        let mut g = rng();
        for seq in 0..20 {
            let p = r.packet_path(pair, seq, &mut g);
            assert!(candidates.contains(&p));
        }
    }

    #[test]
    fn expected_loads_spread_evenly() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4)]).unwrap();
        let a = r.spread_pattern(&perm).unwrap();
        let loads = a.expected_channel_loads();
        // Leaf links carry the full unit, each of 4 uplinks carries 1/4.
        assert_eq!(loads[&ft.leaf_up_channel(0, 0)], 1.0);
        assert!((loads[&ft.up_channel(0, 2)] - 0.25).abs() < 1e-12);
        assert!((a.max_expected_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn union_violation_always_exists_for_same_switch_sources() {
        // Two cross-switch pairs from one switch: candidate sets share every
        // uplink of the source switch -> violation regardless of m.
        let ft = Ftree::new(2, 100, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let a = r.spread_pattern(&perm).unwrap();
        let (c, p1, p2) = a.lemma1_violation().expect("must find witness");
        assert_ne!(p1.src, p2.src);
        assert_ne!(p1.dst, p2.dst);
        // The witness channel is an uplink out of bottom switch 0.
        let ch = ft.topology().channel(c);
        assert_eq!(ch.src, ft.bottom(0));
    }

    #[test]
    fn no_violation_for_disjoint_pairs() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        // Same destination switch but same destination is impossible in a
        // permutation; pick fully disjoint switches with distinct tops...
        // With spreading over all tops, cross-switch pairs from different
        // sources to different dest switches still share top->dst? No:
        // downlinks differ by dest switch; uplinks differ by source switch.
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(6, 8)]).unwrap();
        let a = r.spread_pattern(&perm).unwrap();
        assert!(a.lemma1_violation().is_none());
    }

    #[test]
    fn out_of_range_rejected() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = Permutation::from_pairs(11, [SdPair::new(0, 10)]).unwrap();
        assert!(r.spread_pattern(&perm).is_err());
    }

    #[test]
    fn masked_candidates_drop_dead_top() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        let mut faults = ftclos_topo::FaultSet::new();
        faults.fail_switch(ft.top(1));
        let view = ftclos_topo::FaultyView::new(ft.topology(), &faults);
        let pair = SdPair::new(0, 4);
        let live = r.paths_masked(pair, &view).unwrap();
        assert_eq!(live.len(), 2, "one candidate per surviving top");
        for p in &live {
            view.path_alive(p.channels()).unwrap();
        }
        // Round-robin spreading cycles over the surviving candidates only.
        let mut g = rng();
        for seq in 0..6 {
            let p = r.packet_path_masked(pair, seq, &mut g, &view).unwrap();
            view.path_alive(p.channels()).unwrap();
        }
    }

    #[test]
    fn masked_dead_leaf_cable_is_no_live_path() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let mut faults = ftclos_topo::FaultSet::new();
        faults.fail_channel(ft.leaf_up_channel(0, 0));
        let view = ftclos_topo::FaultyView::new(ft.topology(), &faults);
        assert!(matches!(
            r.paths_masked(SdPair::new(0, 4), &view),
            Err(RoutingError::NoLivePath { src: 0, dst: 4 })
        ));
        // A pair whose leaf cables survive is unaffected.
        assert_eq!(r.paths_masked(SdPair::new(1, 5), &view).unwrap().len(), 3);
    }

    #[test]
    fn masked_spread_pattern_avoids_all_dead_channels() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let faults = ftclos_topo::FaultSet::random_links(ft.topology(), 3, 0xFA17);
        let view = ftclos_topo::FaultyView::new(ft.topology(), &faults);
        let perm = ftclos_traffic::patterns::shift(10, 3);
        match r.spread_pattern_masked(&perm, &view) {
            Ok(a) => {
                for (_, candidates) in a.entries() {
                    for p in candidates {
                        view.path_alive(p.channels()).unwrap();
                    }
                }
            }
            // Random links may have severed a leaf cable outright.
            Err(RoutingError::NoLivePath { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
