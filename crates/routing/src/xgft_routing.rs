//! Generic up*/down* routing for extended generalized fat trees.
//!
//! Every fat-tree variant (k-ary n-tree, m-port n-tree, …) routes the same
//! way: climb from the source leaf to a *nearest common ancestor* (NCA)
//! level — choosing one of `w_i` parents at each step, which is where all
//! path diversity lives — then descend along the unique downward path to
//! the destination. This module implements the family:
//!
//! * [`XgftRouter::dmod`] — destination-digit parent choice (`y_i = x_i(dst) mod
//!   w_i`), the multi-level generalization of `d mod k`;
//! * [`XgftRouter::smod`] — source-digit parent choice;
//! * [`XgftRouter::route_via`] — explicit parent choices, the primitive for
//!   multipath and randomized (Valiant/Greenberg-Leiserson style) schemes.
//!
//! These are the distributed routings the paper's related work runs on
//! k-ary n-trees; they are all *blocking* (Theorem 2 applies level-wise),
//! which the tests demonstrate.

use crate::path::Path;
use crate::router::SinglePathRouter;
use ftclos_topo::{ChannelId, Xgft};
use ftclos_traffic::SdPair;

/// How upward parent choices are made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpChoice {
    /// `y_i = x_i(dst) mod w_i` — destination-based (d-mod-k family).
    DestDigit,
    /// `y_i = x_i(src) mod w_i` — source-based.
    SrcDigit,
}

/// Up*/down* router over an [`Xgft`].
#[derive(Clone, Copy, Debug)]
pub struct XgftRouter<'a> {
    xgft: &'a Xgft,
    choice: UpChoice,
}

/// Destination-digit deterministic router (see [`UpChoice::DestDigit`]).
pub type XgftDmod<'a> = XgftRouter<'a>;

impl<'a> XgftRouter<'a> {
    /// Destination-digit routing.
    pub fn dmod(xgft: &'a Xgft) -> Self {
        Self {
            xgft,
            choice: UpChoice::DestDigit,
        }
    }

    /// Source-digit routing.
    pub fn smod(xgft: &'a Xgft) -> Self {
        Self {
            xgft,
            choice: UpChoice::SrcDigit,
        }
    }

    /// The underlying fabric.
    pub fn xgft(&self) -> &'a Xgft {
        self.xgft
    }

    /// Digit `x_i` (1-indexed tier) of a leaf index: leaves are mixed-radix
    /// numbers over `(m_h, …, m_1)`, most significant first.
    fn leaf_digit(&self, leaf: usize, i: usize) -> usize {
        let ms = self.xgft.ms();
        let below: usize = ms[..i - 1].iter().product();
        (leaf / below) % ms[i - 1]
    }

    /// Nearest-common-ancestor level of two leaves: the highest tier whose
    /// digits differ (0 if the leaves are equal).
    pub fn nca_level(&self, a: usize, b: usize) -> usize {
        let h = self.xgft.height();
        for i in (1..=h).rev() {
            if self.leaf_digit(a, i) != self.leaf_digit(b, i) {
                return i;
            }
        }
        0
    }

    /// Index of the level-`i` parent of level-`(i-1)` node `child` under
    /// parent choice `y_i` (mirrors the builder's wiring rule).
    fn parent_index(&self, i: usize, child: usize, y_i: usize) -> usize {
        let ws = self.xgft.ws();
        let ms = self.xgft.ms();
        let wp: usize = ws[..i - 1].iter().product();
        let x = child / wp;
        let y = child % wp;
        let x_hi = x / ms[i - 1];
        (x_hi * ws[i - 1] + y_i) * wp + y
    }

    /// Index of the level-`(i-1)` child of level-`i` node `parent` on the
    /// way down to a leaf whose tier-`i` digit is `x_i`.
    fn child_index(&self, i: usize, parent: usize, x_i: usize) -> usize {
        let ws = self.xgft.ws();
        let ms = self.xgft.ms();
        let wp: usize = ws[..i - 1].iter().product();
        let x_hi = parent / (ws[i - 1] * wp);
        let y = parent % wp;
        (x_hi * ms[i - 1] + x_i) * wp + y
    }

    /// Route with explicit upward parent choices `ys[i]` for the climb step
    /// into level `i+1` (only the first `nca_level - ?` entries are used;
    /// missing entries default to 0). This is the primitive for multipath
    /// and randomized routing.
    pub fn route_via(&self, pair: SdPair, ys: &[usize]) -> Path {
        let (s, d) = (pair.src as usize, pair.dst as usize);
        if s == d {
            return Path::empty();
        }
        let topo = self.xgft.topology();
        let nca = self.nca_level(s, d);
        let mut channels: Vec<ChannelId> = Vec::with_capacity(2 * nca);
        // Climb.
        let mut idx = s;
        for i in 1..=nca {
            let w_i = self.xgft.ws()[i - 1];
            let y = ys.get(i - 1).copied().unwrap_or(0) % w_i;
            let parent = self.parent_index(i, idx, y);
            let from = self.xgft.node(i - 1, idx);
            let to = self.xgft.node(i, parent);
            channels.push(topo.channel_between(from, to).expect("tree wiring"));
            idx = parent;
        }
        // Descend.
        for i in (1..=nca).rev() {
            let x_i = self.leaf_digit(d, i);
            let child = self.child_index(i, idx, x_i);
            let from = self.xgft.node(i, idx);
            let to = self.xgft.node(i - 1, child);
            channels.push(topo.channel_between(from, to).expect("tree wiring"));
            idx = child;
        }
        debug_assert_eq!(idx, d);
        Path::new(channels)
    }

    /// All distinct paths between a pair (the product of parent choices up
    /// to the NCA level). Sizes grow as `∏ w_i`; intended for small fabrics
    /// and multipath policies.
    pub fn all_paths(&self, pair: SdPair) -> Vec<Path> {
        let (s, d) = (pair.src as usize, pair.dst as usize);
        let nca = self.nca_level(s, d);
        if nca == 0 {
            return vec![self.route_via(pair, &[])];
        }
        let ws = &self.xgft.ws()[..nca];
        let mut choices = vec![0usize; nca];
        let mut out = Vec::new();
        loop {
            out.push(self.route_via(pair, &choices));
            // Odometer.
            let mut i = 0;
            loop {
                if i == nca {
                    return out;
                }
                choices[i] += 1;
                if choices[i] < ws[i] {
                    break;
                }
                choices[i] = 0;
                i += 1;
            }
        }
    }
}

impl SinglePathRouter for XgftRouter<'_> {
    fn ports(&self) -> u32 {
        self.xgft.num_leaves() as u32
    }

    fn route(&self, pair: SdPair) -> Path {
        let reference = match self.choice {
            UpChoice::DestDigit => pair.dst as usize,
            UpChoice::SrcDigit => pair.src as usize,
        };
        let h = self.xgft.height();
        let ys: Vec<usize> = (1..=h)
            .map(|i| self.leaf_digit(reference, i) % self.xgft.ws()[i - 1])
            .collect();
        self.route_via(pair, &ys)
    }

    fn name(&self) -> &'static str {
        match self.choice {
            UpChoice::DestDigit => "xgft-dest-digit",
            UpChoice::SrcDigit => "xgft-src-digit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_all;
    use ftclos_topo::{kary_ntree, mport_ntree, NodeId, Xgft};
    use ftclos_traffic::patterns;
    use rand::SeedableRng;

    #[test]
    fn all_paths_are_valid_walks() {
        let t = kary_ntree(2, 3).unwrap();
        let router = XgftRouter::dmod(&t);
        for s in 0..8u32 {
            for d in 0..8u32 {
                for path in router.all_paths(SdPair::new(s, d)) {
                    path.validate(t.topology(), NodeId(s), NodeId(d))
                        .unwrap_or_else(|e| panic!("({s},{d}): {e}"));
                }
            }
        }
    }

    #[test]
    fn deterministic_route_is_one_of_all_paths() {
        let t = kary_ntree(3, 2).unwrap();
        let router = XgftRouter::dmod(&t);
        for s in 0..9u32 {
            for d in 0..9u32 {
                let route = router.route(SdPair::new(s, d));
                assert!(router.all_paths(SdPair::new(s, d)).contains(&route));
            }
        }
    }

    #[test]
    fn nca_levels() {
        // 2-ary 3-tree: leaves are 3-bit numbers, digit i = bit i-1.
        let t = kary_ntree(2, 3).unwrap();
        let router = XgftRouter::dmod(&t);
        assert_eq!(router.nca_level(0, 0), 0);
        assert_eq!(router.nca_level(0, 1), 1);
        assert_eq!(router.nca_level(0, 2), 2);
        assert_eq!(router.nca_level(0, 4), 3);
        assert_eq!(router.nca_level(3, 7), 3);
        // Path length = 2 * NCA level.
        assert_eq!(router.route(SdPair::new(0, 4)).len(), 6);
        assert_eq!(router.route(SdPair::new(0, 1)).len(), 2);
    }

    #[test]
    fn path_diversity_matches_w_product() {
        let t = kary_ntree(2, 3).unwrap(); // w = (1, 2, 2)
        let router = XgftRouter::dmod(&t);
        // NCA at level 3: 1 * 2 * 2 = 4 distinct paths.
        let paths = router.all_paths(SdPair::new(0, 7));
        assert_eq!(paths.len(), 4);
        let set: std::collections::HashSet<_> = paths.into_iter().collect();
        assert_eq!(set.len(), 4, "all distinct");
        // NCA at level 1: single path.
        assert_eq!(router.all_paths(SdPair::new(0, 1)).len(), 1);
    }

    #[test]
    fn ftree_equivalent_matches_2level_shape() {
        // XGFT(2; n, r; 1, m) dest-digit routing should produce 4-hop
        // cross-switch paths and 2-hop local paths, like the Ftree routers.
        let x = Xgft::ftree_equivalent(2, 3, 4).unwrap();
        let router = XgftRouter::dmod(&x);
        assert_eq!(router.route(SdPair::new(0, 1)).len(), 2);
        assert_eq!(router.route(SdPair::new(0, 7)).len(), 4);
    }

    #[test]
    fn mport_ntree_routing_works() {
        let t = mport_ntree(4, 3).unwrap(); // 16 leaves, 3 levels
        let router = XgftRouter::dmod(&t);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let perm = patterns::random_full(16, &mut rng);
            let a = route_all(&router, &perm).unwrap();
            a.validate(t.topology()).unwrap();
        }
    }

    #[test]
    fn dmod_on_kary_tree_blocks_some_permutation() {
        // k-ary n-trees under deterministic routing are not nonblocking
        // (the paper's general point); exhibit it via the two-pair search.
        let t = kary_ntree(2, 3).unwrap();
        let router = XgftRouter::dmod(&t);
        let witness = ftclos_traffic::enumerate::TwoPairs::new(8, true).find(|perm| {
            let [a, b] = perm.pairs() else { return false };
            router.route(*a).shares_channel_with(&router.route(*b))
        });
        assert!(witness.is_some(), "k-ary n-tree + d-mod must block");
    }

    #[test]
    fn smod_mirror() {
        let t = kary_ntree(2, 3).unwrap();
        let router = XgftRouter::smod(&t);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let perm = patterns::random_full(8, &mut rng);
        let a = route_all(&router, &perm).unwrap();
        a.validate(t.topology()).unwrap();
        assert_eq!(SinglePathRouter::name(&router), "xgft-src-digit");
    }

    #[test]
    fn route_via_respects_choices() {
        let t = kary_ntree(2, 2).unwrap(); // w = (1, 2)
        let router = XgftRouter::dmod(&t);
        let p0 = router.route_via(SdPair::new(0, 3), &[0, 0]);
        let p1 = router.route_via(SdPair::new(0, 3), &[0, 1]);
        assert_ne!(p0, p1, "different top-level parent");
        // Both still valid.
        p0.validate(t.topology(), NodeId(0), NodeId(3)).unwrap();
        p1.validate(t.topology(), NodeId(0), NodeId(3)).unwrap();
    }
}
