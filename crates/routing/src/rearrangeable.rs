//! Centralized rearrangeable routing via bipartite multigraph edge coloring
//! — the classical Beneš `m >= n` construction (paper Section II).
//!
//! The cross-switch SD pairs of a permutation form a bipartite multigraph on
//! (source switch, destination switch) vertices with maximum degree
//! `Δ <= n`. By Kőnig's theorem its edges can be colored with `Δ` colors;
//! assigning color classes to top switches routes the whole permutation
//! with no contention. This **requires global knowledge of the pattern** —
//! it is exactly the "centralized controller" regime the paper contrasts
//! with distributed control, and serves as the global-adaptive comparator.

use crate::assignment::RouteAssignment;
use crate::error::RoutingError;
use crate::path::Path;
use crate::router::PatternRouter;
use ftclos_topo::Ftree;
use ftclos_traffic::Permutation;

/// Edge-coloring rearrangeable router for `ftree(n+m, r)` with `m >= n`.
#[derive(Clone, Copy, Debug)]
pub struct RearrangeableRouter<'a> {
    ft: &'a Ftree,
}

impl<'a> RearrangeableRouter<'a> {
    /// Create the router. Requires the Beneš condition `m >= n` so that any
    /// permutation (degree ≤ n) is colorable within the fabric.
    pub fn new(ft: &'a Ftree) -> Result<Self, RoutingError> {
        if ft.m() < ft.n() {
            return Err(RoutingError::Precondition {
                router: "RearrangeableRouter",
                detail: format!(
                    "Beneš condition m >= n violated (m = {}, n = {})",
                    ft.m(),
                    ft.n()
                ),
            });
        }
        Ok(Self { ft })
    }

    /// Color the cross-switch pairs of `perm`; returns `(colors, edges)`
    /// where `edges[i] = (src_switch, dst_switch, pair_index_in_perm)`.
    fn color_edges(&self, edges: &[(usize, usize)], colors_avail: usize) -> Vec<usize> {
        let r = self.ft.r();
        // left/right slot tables: slot[vertex * colors + color] = edge or usize::MAX.
        const NONE: usize = usize::MAX;
        let mut left = vec![NONE; r * colors_avail];
        let mut right = vec![NONE; r * colors_avail];
        let mut color = vec![NONE; edges.len()];

        for (e, &(u, w)) in edges.iter().enumerate() {
            let a = (0..colors_avail)
                .find(|&c| left[u * colors_avail + c] == NONE)
                .expect("degree < colors so a free color exists at u");
            let b = (0..colors_avail)
                .find(|&c| right[w * colors_avail + c] == NONE)
                .expect("degree < colors so a free color exists at w");
            if a == b {
                color[e] = a;
                left[u * colors_avail + a] = e;
                right[w * colors_avail + a] = e;
                continue;
            }
            // Kempe chain: make color `a` free at `w` by flipping the
            // alternating a/b path that starts at w. In a properly colored
            // graph the path is simple and cannot reach u (u has no
            // a-colored edge), so flipping keeps the coloring proper and
            // frees `a` at `w`. Collect first, then flip, so slot updates
            // never clobber an edge we still need to follow.
            let mut chain = Vec::new();
            let mut on_right = true;
            let mut vertex = w;
            let mut col = a;
            loop {
                let slot = if on_right {
                    right[vertex * colors_avail + col]
                } else {
                    left[vertex * colors_avail + col]
                };
                if slot == NONE {
                    break;
                }
                chain.push(slot);
                vertex = if on_right {
                    edges[slot].0
                } else {
                    edges[slot].1
                };
                on_right = !on_right;
                col = if col == a { b } else { a };
            }
            for &ce in &chain {
                let (u1, w1) = edges[ce];
                let cl = color[ce];
                left[u1 * colors_avail + cl] = NONE;
                right[w1 * colors_avail + cl] = NONE;
            }
            for &ce in &chain {
                let (u1, w1) = edges[ce];
                let new_c = if color[ce] == a { b } else { a };
                color[ce] = new_c;
                left[u1 * colors_avail + new_c] = ce;
                right[w1 * colors_avail + new_c] = ce;
            }
            debug_assert_eq!(right[w * colors_avail + a], NONE);
            color[e] = a;
            left[u * colors_avail + a] = e;
            right[w * colors_avail + a] = e;
        }
        color
    }
}

impl PatternRouter for RearrangeableRouter<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }

    fn route_pattern(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError> {
        let ports = self.ports();
        let n = self.ft.n();
        // Collect cross-switch edges.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut edge_pairs = Vec::new();
        let mut local_pairs = Vec::new();
        for &pair in perm.pairs() {
            for port in [pair.src, pair.dst] {
                if port >= ports {
                    return Err(RoutingError::PortOutOfRange { port, ports });
                }
            }
            let v = pair.src as usize / n;
            let w = pair.dst as usize / n;
            if v == w {
                local_pairs.push(pair);
            } else {
                edges.push((v, w));
                edge_pairs.push(pair);
            }
        }
        // Max degree of the multigraph.
        let r = self.ft.r();
        let mut out_deg = vec![0usize; r];
        let mut in_deg = vec![0usize; r];
        for &(u, w) in &edges {
            out_deg[u] += 1;
            in_deg[w] += 1;
        }
        let delta = out_deg
            .iter()
            .chain(in_deg.iter())
            .copied()
            .max()
            .unwrap_or(0);
        if delta > self.ft.m() {
            return Err(RoutingError::NotEnoughTops {
                needed: delta,
                available: self.ft.m(),
            });
        }
        let colors = self.color_edges(&edges, delta.max(1));

        let mut out = RouteAssignment::default();
        for pair in local_pairs {
            let (v, i) = (pair.src as usize / n, pair.src as usize % n);
            let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
            let path = if pair.src == pair.dst {
                Path::empty()
            } else {
                Path::new(vec![
                    self.ft.leaf_up_channel(v, i),
                    self.ft.leaf_down_channel(w, j),
                ])
            };
            out.push(pair, path);
        }
        for (idx, pair) in edge_pairs.into_iter().enumerate() {
            let (v, i) = (pair.src as usize / n, pair.src as usize % n);
            let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
            let t = colors[idx];
            out.push(
                pair,
                Path::new(vec![
                    self.ft.leaf_up_channel(v, i),
                    self.ft.up_channel(v, t),
                    self.ft.down_channel(t, w),
                    self.ft.leaf_down_channel(w, j),
                ]),
            );
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "rearrangeable-edge-coloring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_traffic::{enumerate::AllPermutations, patterns, SdPair};
    use rand::SeedableRng;

    #[test]
    fn requires_benes_condition() {
        let bad = Ftree::new(3, 2, 4).unwrap();
        assert!(RearrangeableRouter::new(&bad).is_err());
        let ok = Ftree::new(3, 3, 4).unwrap();
        assert!(RearrangeableRouter::new(&ok).is_ok());
    }

    #[test]
    fn benes_m_equals_n_routes_all_tiny_permutations() {
        // ftree(2+2, 3): m = n = 2; every permutation of 6 leaves must be
        // contention-free under centralized routing (Beneš).
        let ft = Ftree::new(2, 2, 3).unwrap();
        let router = RearrangeableRouter::new(&ft).unwrap();
        for perm in AllPermutations::new(6) {
            let a = router.route_pattern(&perm).unwrap();
            assert!(
                a.max_channel_load() <= 1,
                "Beneš violated for {:?}",
                perm.pairs()
            );
            a.validate(ft.topology()).unwrap();
        }
    }

    #[test]
    fn random_larger_fabrics() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for (n, r) in [(3, 5), (4, 7), (5, 6)] {
            let ft = Ftree::new(n, n, r).unwrap();
            let router = RearrangeableRouter::new(&ft).unwrap();
            for _ in 0..30 {
                let perm = patterns::random_full((n * r) as u32, &mut rng);
                let a = router.route_pattern(&perm).unwrap();
                assert!(a.max_channel_load() <= 1, "n={n} r={r}");
            }
        }
    }

    #[test]
    fn partial_patterns_use_few_colors() {
        // A pattern of degree 1 routes entirely through top 0.
        let ft = Ftree::new(3, 3, 4).unwrap();
        let router = RearrangeableRouter::new(&ft).unwrap();
        let perm = Permutation::from_pairs(12, [SdPair::new(0, 3), SdPair::new(3, 0)]).unwrap();
        let a = router.route_pattern(&perm).unwrap();
        let tops = a.tops_used(ft.topology());
        assert_eq!(tops.len(), 1);
        assert!(tops.contains(&ft.top(0)));
    }

    #[test]
    fn structured_patterns() {
        let ft = Ftree::new(4, 4, 4).unwrap();
        let router = RearrangeableRouter::new(&ft).unwrap();
        for pat in patterns::StructuredPattern::ALL {
            if let Some(perm) = pat.generate(16) {
                let a = router.route_pattern(&perm).unwrap();
                assert!(a.max_channel_load() <= 1, "{pat:?}");
            }
        }
    }

    #[test]
    fn local_and_self_pairs() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let router = RearrangeableRouter::new(&ft).unwrap();
        let perm = Permutation::from_pairs(6, [SdPair::new(0, 1), SdPair::new(3, 3)]).unwrap();
        let a = router.route_pattern(&perm).unwrap();
        assert_eq!(a.path_of(SdPair::new(0, 1)).unwrap().len(), 2);
        assert!(a.path_of(SdPair::new(3, 3)).unwrap().is_empty());
    }
}
