//! Routing for the three-level recursive nonblocking construction
//! (paper Discussion section).
//!
//! The outer network is logically `ftree(n+n², n³+n²)` routed with the
//! Theorem 3 scheme; each logical top switch `(i, j)` is itself a
//! nonblocking `ftree(n+n², n²+n)` routed with the Theorem 3 scheme using
//! the outer **bottom-switch index** as the inner leaf index. The
//! composition preserves the Lemma 1 invariant on every physical link: each
//! inner uplink still carries a single outer source and each inner downlink
//! a single outer destination, so the whole fabric is nonblocking (the
//! paper's induction).

use crate::path::Path;
use crate::router::SinglePathRouter;
use ftclos_topo::RecursiveNonblocking;
use ftclos_traffic::SdPair;

/// Composed Theorem 3 routing over [`RecursiveNonblocking`].
#[derive(Clone, Copy, Debug)]
pub struct YuanRecursive<'a> {
    net: &'a RecursiveNonblocking,
}

impl<'a> YuanRecursive<'a> {
    /// Create the router.
    pub fn new(net: &'a RecursiveNonblocking) -> Self {
        Self { net }
    }

    /// The logical top fabric used for a cross-switch pair:
    /// `g = i·n + j` from the local leaf indices, exactly Theorem 3.
    pub fn logical_top_for(&self, pair: SdPair) -> usize {
        let n = self.net.n() as u32;
        ((pair.src % n) * n + (pair.dst % n)) as usize
    }
}

impl SinglePathRouter for YuanRecursive<'_> {
    fn ports(&self) -> u32 {
        self.net.num_leaves() as u32
    }

    fn route(&self, pair: SdPair) -> Path {
        let n = self.net.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        if pair.src == pair.dst {
            return Path::empty();
        }
        if v == w {
            return Path::new(vec![
                self.net.leaf_up_channel(v, i),
                self.net.leaf_down_channel(w, j),
            ]);
        }
        // Outer Theorem 3: logical top g = (i, j).
        let g = i * n + j;
        // Inner fabric g: inner leaf ports are outer bottom indices.
        let (ib_s, ii) = (v / n, v % n); // inner bottom + local index of source side
        let (ib_d, ij) = (w / n, w % n);
        let mut channels = vec![self.net.leaf_up_channel(v, i), self.net.up1_channel(v, g)];
        if ib_s == ib_d {
            // Same inner bottom: hairpin inside it.
        } else {
            // Inner Theorem 3: inner top (ii, ij).
            let it = ii * n + ij;
            channels.push(self.net.up2_channel(g, ib_s, it));
            channels.push(self.net.down2_channel(g, it, ib_d));
        }
        channels.push(self.net.down1_channel(g, w));
        channels.push(self.net.leaf_down_channel(w, j));
        Path::new(channels)
    }

    fn name(&self) -> &'static str {
        "yuan-recursive-3level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_all;
    use ftclos_traffic::patterns;
    use rand::SeedableRng;

    #[test]
    fn paths_are_valid_walks() {
        let net = RecursiveNonblocking::new(2).unwrap();
        let router = YuanRecursive::new(&net);
        let ports = net.num_leaves() as u32;
        for s in 0..ports {
            for d in 0..ports {
                let path = router.route(SdPair::new(s, d));
                path.validate(
                    net.topology(),
                    ftclos_topo::NodeId(s),
                    ftclos_topo::NodeId(d),
                )
                .unwrap_or_else(|e| panic!("({s},{d}): {e}"));
            }
        }
    }

    #[test]
    fn hop_counts() {
        let net = RecursiveNonblocking::new(2).unwrap();
        let router = YuanRecursive::new(&net);
        // Same leaf.
        assert_eq!(router.route(SdPair::new(0, 0)).len(), 0);
        // Same bottom switch.
        assert_eq!(router.route(SdPair::new(0, 1)).len(), 2);
        // Different bottoms, same inner bottom (v=0, w=1 share ib 0).
        assert_eq!(router.route(SdPair::new(0, 2)).len(), 4);
        // Far apart: full 6-hop route.
        let far = (net.num_leaves() - 1) as u32;
        assert_eq!(router.route(SdPair::new(0, far)).len(), 6);
    }

    #[test]
    fn nonblocking_on_random_permutations() {
        for n in [2usize, 3] {
            let net = RecursiveNonblocking::new(n).unwrap();
            let router = YuanRecursive::new(&net);
            let ports = net.num_leaves() as u32;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(n as u64);
            for _ in 0..20 {
                let perm = patterns::random_full(ports, &mut rng);
                let a = route_all(&router, &perm).unwrap();
                assert!(
                    a.max_channel_load() <= 1,
                    "3-level recursion blocked at n={n}"
                );
            }
        }
    }

    #[test]
    fn structured_permutations_contention_free() {
        let net = RecursiveNonblocking::new(2).unwrap();
        let router = YuanRecursive::new(&net);
        let ports = net.num_leaves() as u32;
        for pat in patterns::StructuredPattern::ALL {
            if let Some(perm) = pat.generate(ports) {
                let a = route_all(&router, &perm).unwrap();
                assert!(a.max_channel_load() <= 1, "{pat:?} blocked");
            }
        }
    }

    #[test]
    fn lemma1_holds_per_physical_link() {
        // Route ALL cross pairs and audit: every channel carries one source
        // or one destination.
        let net = RecursiveNonblocking::new(2).unwrap();
        let router = YuanRecursive::new(&net);
        let ports = net.num_leaves() as u32;
        let mut per_channel: std::collections::HashMap<
            u32,
            (
                std::collections::HashSet<u32>,
                std::collections::HashSet<u32>,
            ),
        > = std::collections::HashMap::new();
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                let path = router.route(SdPair::new(s, d));
                for &c in path.channels() {
                    let entry = per_channel.entry(c.0).or_default();
                    entry.0.insert(s);
                    entry.1.insert(d);
                }
            }
        }
        for (c, (srcs, dsts)) in per_channel {
            assert!(
                srcs.len() == 1 || dsts.len() == 1,
                "channel {c} carries {} sources and {} dests",
                srcs.len(),
                dsts.len()
            );
        }
    }
}
