//! [`PathArena`] — every SD path of a single-path router, precomputed once
//! into CSR storage.
//!
//! Every theorem-checking pass in this workspace bottoms out in the same
//! loop: route the `r(r-1)n²` cross-switch SD pairs and inspect the channels
//! they cross. A single-path router's paths are pattern-independent by
//! definition, so that loop only ever needs to run **once** per router; the
//! arena captures its output in two compressed-sparse-row tables:
//!
//! * **pair → path**: pair `(s, d)` is row `s·ports + d` of a CSR over
//!   [`ChannelId`]s — `path(pair)` is a slice index, not a route computation;
//! * **channel → pairs**: the transpose, mapping each channel to the dense
//!   pair indices whose path crosses it — the *pair-incidence list* that
//!   turns the `O(p⁴)` two-pair blocking sweep into a per-channel scan.
//!
//! [`ChannelId`]s are dense `u32`s in every `ftclos-topo` topology, so both
//! tables live in flat vectors with zero hashing. The arena itself
//! implements [`SinglePathRouter`] (returning clones of the cached paths)
//! and [`LinkLoadView`] via [`ArenaLoadView`] (returning borrowed slices),
//! so downstream consumers — the Lemma 1 engine, the fluid flow expander,
//! the two-pair sweep — index instead of re-routing.

use crate::error::RoutingError;
use crate::loadview::{FlowLinks, LinkLoadView};
use crate::path::Path;
use crate::router::SinglePathRouter;
use ftclos_obs::{Noop, Recorder};
use ftclos_topo::ChannelId;
use ftclos_traffic::{Permutation, SdPair};

/// All SD paths of a single-path router, in CSR form, plus the transposed
/// channel → pair incidence table.
#[derive(Clone, Debug)]
pub struct PathArena {
    ports: u32,
    /// One past the largest channel id any path crosses (0 when no path
    /// crosses any channel). Dense tables downstream size themselves on it.
    num_channels: usize,
    /// Row `s·ports + d` holds pair `(s, d)`'s path channels:
    /// `path_channels[path_start[row]..path_start[row+1]]`.
    path_start: Vec<u32>,
    path_channels: Vec<ChannelId>,
    /// Channel `c`'s crossing pairs (dense pair indices):
    /// `chan_pairs[chan_start[c]..chan_start[c+1]]`, ascending.
    chan_start: Vec<u32>,
    chan_pairs: Vec<u32>,
    name: &'static str,
}

impl PathArena {
    /// Route every ordered pair of distinct leaves through `router` once and
    /// freeze the results. Self-pairs get the empty path.
    ///
    /// # Errors
    /// Propagates the router's [`SinglePathRouter::try_route`] errors (the
    /// arena enumerates only in-range ports, so errors indicate a router
    /// whose `ports()` disagrees with its routable universe).
    pub fn build<R: SinglePathRouter + ?Sized>(router: &R) -> Result<Self, RoutingError> {
        Self::build_with(router, &Noop)
    }

    /// [`PathArena::build`] with instrumentation: records the build under
    /// span `arena.build`, counts routed pairs (`arena.paths_routed`), and
    /// gauges the frozen tables (`arena.bytes`, `arena.channels`,
    /// `arena.hops`). With [`Noop`] this is exactly `build`.
    ///
    /// # Errors
    /// Same as [`PathArena::build`].
    pub fn build_with<R: SinglePathRouter + ?Sized, Rec: Recorder>(
        router: &R,
        rec: &Rec,
    ) -> Result<Self, RoutingError> {
        let _span = rec.span("arena.build");
        let ports = router.ports();
        let p = ports as usize;
        let rows = p * p;
        let mut path_start = Vec::with_capacity(rows + 1);
        let mut path_channels: Vec<ChannelId> = Vec::new();
        path_start.push(0u32);
        let mut max_channel: Option<u32> = None;
        for s in 0..ports {
            for d in 0..ports {
                if s != d {
                    let path = router.try_route(SdPair::new(s, d))?;
                    for &c in path.channels() {
                        max_channel = Some(max_channel.map_or(c.0, |m| m.max(c.0)));
                        path_channels.push(c);
                    }
                }
                path_start.push(path_channels.len() as u32);
            }
        }
        let num_channels = max_channel.map_or(0, |m| m as usize + 1);

        // Transpose: counting sort of path entries by channel.
        let mut chan_start = vec![0u32; num_channels + 1];
        for &c in &path_channels {
            chan_start[c.index() + 1] += 1;
        }
        for i in 1..chan_start.len() {
            chan_start[i] += chan_start[i - 1];
        }
        let mut cursor = chan_start.clone();
        let mut chan_pairs = vec![0u32; path_channels.len()];
        for row in 0..rows {
            let (lo, hi) = (path_start[row] as usize, path_start[row + 1] as usize);
            for &c in &path_channels[lo..hi] {
                let slot = cursor[c.index()];
                chan_pairs[slot as usize] = row as u32;
                cursor[c.index()] += 1;
            }
        }

        let arena = Self {
            ports,
            num_channels,
            path_start,
            path_channels,
            chan_start,
            chan_pairs,
            name: router.name(),
        };
        rec.add("arena.paths_routed", arena.num_pairs() as u64);
        rec.gauge("arena.bytes", arena.bytes() as u64);
        rec.gauge("arena.channels", arena.num_channels as u64);
        rec.gauge("arena.hops", arena.total_hops() as u64);
        Ok(arena)
    }

    /// Leaf universe size.
    #[inline]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// One past the largest channel id any cached path crosses.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Total path entries cached (sum of hop counts over all pairs).
    #[inline]
    pub fn total_hops(&self) -> usize {
        self.path_channels.len()
    }

    /// Number of ordered cross pairs cached (`ports·(ports-1)`).
    #[inline]
    pub fn num_pairs(&self) -> usize {
        let p = self.ports as usize;
        p * p.saturating_sub(1)
    }

    /// Dense row index of `pair` (valid for in-range ports).
    #[inline]
    pub fn pair_index(&self, pair: SdPair) -> usize {
        pair.src as usize * self.ports as usize + pair.dst as usize
    }

    /// The SD pair of dense row `index`.
    #[inline]
    pub fn pair_of(&self, index: u32) -> SdPair {
        let p = self.ports;
        SdPair::new(index / p, index % p)
    }

    /// Pair `(s, d)`'s cached path, as a borrowed channel slice.
    ///
    /// # Panics
    /// If either port is out of range.
    #[inline]
    pub fn path(&self, pair: SdPair) -> &[ChannelId] {
        let row = self.pair_index(pair);
        let (lo, hi) = (
            self.path_start[row] as usize,
            self.path_start[row + 1] as usize,
        );
        &self.path_channels[lo..hi]
    }

    /// Dense pair indices whose path crosses channel `c`, ascending (empty
    /// for channels no path uses, including ids at or past
    /// [`PathArena::num_channels`]).
    #[inline]
    pub fn pairs_on(&self, c: ChannelId) -> &[u32] {
        if c.index() >= self.num_channels {
            return &[];
        }
        let (lo, hi) = (
            self.chan_start[c.index()] as usize,
            self.chan_start[c.index() + 1] as usize,
        );
        &self.chan_pairs[lo..hi]
    }

    /// The SD pairs crossing channel `c`, in ascending dense-index order.
    pub fn sd_pairs_on(&self, c: ChannelId) -> impl Iterator<Item = SdPair> + '_ {
        self.pairs_on(c).iter().map(|&i| self.pair_of(i))
    }

    /// Resident bytes of the arena's tables (the bench's "peak arena
    /// bytes" metric).
    pub fn bytes(&self) -> usize {
        self.path_start.len() * size_of::<u32>()
            + self.path_channels.len() * size_of::<ChannelId>()
            + self.chan_start.len() * size_of::<u32>()
            + self.chan_pairs.len() * size_of::<u32>()
    }

    /// A [`LinkLoadView`] over the arena that expands patterns by slicing
    /// cached paths (no re-routing, no intermediate assignment).
    pub fn load_view(&self) -> ArenaLoadView<'_> {
        ArenaLoadView { arena: self }
    }
}

/// The arena is itself a single-path router: `route` clones the cached
/// slice, so any analyzer written against [`SinglePathRouter`] can run on
/// the arena and inherit the no-recompute property.
impl SinglePathRouter for PathArena {
    fn ports(&self) -> u32 {
        self.ports
    }

    fn route(&self, pair: SdPair) -> Path {
        Path::new(self.path(pair).to_vec())
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Borrowed [`LinkLoadView`] over a [`PathArena`]: the fluid simulator's
/// flow expansion reads cached slices instead of re-routing the pattern.
#[derive(Clone, Copy, Debug)]
pub struct ArenaLoadView<'a> {
    arena: &'a PathArena,
}

impl LinkLoadView for ArenaLoadView<'_> {
    fn ports(&self) -> u32 {
        self.arena.ports()
    }

    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError> {
        let ports = self.arena.ports();
        let mut out = Vec::with_capacity(perm.len());
        for &pair in perm.pairs() {
            for port in [pair.src, pair.dst] {
                if port >= ports {
                    return Err(RoutingError::PortOutOfRange { port, ports });
                }
            }
            out.push(FlowLinks::single_path(pair, self.arena.path(pair)));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        self.arena.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmodk::DModK;
    use crate::router::route_all;
    use crate::yuan::YuanDeterministic;
    use ftclos_topo::Ftree;
    use ftclos_traffic::patterns;

    #[test]
    fn arena_paths_match_router_paths() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let arena = PathArena::build(&yuan).unwrap();
        assert_eq!(arena.ports(), 10);
        assert_eq!(arena.num_pairs(), 90);
        for s in 0..10u32 {
            for d in 0..10u32 {
                let pair = SdPair::new(s, d);
                let expected = if s == d {
                    Path::empty()
                } else {
                    yuan.route(pair)
                };
                assert_eq!(arena.path(pair), expected.channels(), "{pair}");
                assert_eq!(SinglePathRouter::route(&arena, pair), expected);
            }
        }
        assert!(arena.num_channels() <= ft.topology().num_channels());
        assert!(arena.bytes() > 0);
    }

    #[test]
    fn incidence_transposes_exactly() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let dmodk = DModK::new(&ft);
        let arena = PathArena::build(&dmodk).unwrap();
        // Every (pair, channel) path entry appears in the incidence list and
        // vice versa.
        let mut from_paths = 0usize;
        for s in 0..arena.ports() {
            for d in 0..arena.ports() {
                let pair = SdPair::new(s, d);
                for &c in arena.path(pair) {
                    assert!(
                        arena.pairs_on(c).contains(&(arena.pair_index(pair) as u32)),
                        "{pair} on {c}"
                    );
                    from_paths += 1;
                }
            }
        }
        let from_incidence: usize = (0..arena.num_channels())
            .map(|c| arena.pairs_on(ChannelId(c as u32)).len())
            .sum();
        assert_eq!(from_paths, from_incidence);
        assert_eq!(from_paths, arena.total_hops());
        // Incidence lists are ascending (counting sort over ascending rows).
        for c in 0..arena.num_channels() {
            let pairs = arena.pairs_on(ChannelId(c as u32));
            assert!(pairs.windows(2).all(|w| w[0] < w[1]), "c{c} sorted");
        }
    }

    #[test]
    fn load_view_matches_blanket_expansion() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let arena = PathArena::build(&yuan).unwrap();
        let perm = patterns::shift(10, 3);
        let via_arena = arena.load_view().flow_links(&perm).unwrap();
        let via_router = LinkLoadView::flow_links(&yuan, &perm).unwrap();
        assert_eq!(via_arena, via_router);
        assert_eq!(arena.load_view().ports(), 10);
        assert_eq!(LinkLoadView::name(&arena.load_view()), "yuan-deterministic");
    }

    #[test]
    fn load_view_checks_port_range() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let dmodk = DModK::new(&ft);
        let arena = PathArena::build(&dmodk).unwrap();
        let perm = patterns::shift(12, 1); // 12 > 6 ports
        assert!(matches!(
            arena.load_view().flow_links(&perm),
            Err(RoutingError::PortOutOfRange { .. })
        ));
    }

    #[test]
    fn arena_route_all_agrees_with_router() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let dmodk = DModK::new(&ft);
        let arena = PathArena::build(&dmodk).unwrap();
        let perm = patterns::shift(10, 3);
        let a = route_all(&dmodk, &perm).unwrap();
        let b = route_all(&arena, &perm).unwrap();
        assert_eq!(a.routes(), b.routes());
    }

    #[test]
    fn recorded_build_matches_plain_build_and_emits_metrics() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let plain = PathArena::build(&yuan).unwrap();
        let reg = ftclos_obs::Registry::new();
        let recorded = PathArena::build_with(&yuan, &reg).unwrap();
        for s in 0..plain.ports() {
            for d in 0..plain.ports() {
                let pair = SdPair::new(s, d);
                assert_eq!(plain.path(pair), recorded.path(pair));
            }
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("arena.paths_routed"),
            Some(plain.num_pairs() as u64)
        );
        assert_eq!(snap.gauge("arena.bytes"), Some(plain.bytes() as u64));
        assert_eq!(snap.gauge("arena.hops"), Some(plain.total_hops() as u64));
        assert!(snap.spans.iter().any(|s| s.path == "arena.build"));
    }

    #[test]
    fn empty_universe_arena() {
        struct Null;
        impl SinglePathRouter for Null {
            fn ports(&self) -> u32 {
                1
            }
            fn route(&self, _: SdPair) -> Path {
                Path::empty()
            }
            fn name(&self) -> &'static str {
                "null"
            }
        }
        let arena = PathArena::build(&Null).unwrap();
        assert_eq!(arena.num_channels(), 0);
        assert_eq!(arena.total_hops(), 0);
        assert_eq!(arena.pairs_on(ChannelId(3)), &[] as &[u32]);
    }
}
