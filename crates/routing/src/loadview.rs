//! [`LinkLoadView`] — a uniform "per-link flow sets" interface over every
//! routing scheme in the crate.
//!
//! The fluid flow-rate simulator (crate `ftclos-flowsim`) does not care *how*
//! a router picks paths; it only needs, for each SD pair of a pattern, the
//! set of channels the pair's traffic crosses and the fraction of that
//! traffic on each channel. This trait is that contract:
//!
//! * a **single-path** scheme (Yuan, `d mod k`, adaptive plans, centralized
//!   edge coloring) puts the pair's whole unit of traffic on every channel
//!   of its one path — weight `1.0` per channel;
//! * an **oblivious multipath** spreader over `k` candidate paths puts
//!   `1/k` of the traffic on each candidate's channels (the fluid analog of
//!   round-robin / uniform-random spreading);
//! * the **fault-masked** variants expose the same shape computed over the
//!   surviving hardware only.
//!
//! Every implementation routes the *pattern*, not single pairs, so adaptive
//! schemes (whose path choice depends on the whole pattern) fit the same
//! interface as pattern-independent ones.

use crate::adaptive::{NonblockingAdaptive, PlanStrategy};
use crate::error::RoutingError;
use crate::fault_aware::FaultAware;
use crate::multipath::ObliviousMultipath;
use crate::router::{PatternRouter, SinglePathRouter};
use ftclos_topo::{ChannelId, FaultyView};
use ftclos_traffic::{Permutation, SdPair};
use serde::{Deserialize, Serialize};

/// One SD pair's link usage: the channels its traffic crosses, each with
/// the fraction of the pair's offered traffic carried by that channel.
///
/// Weights are *per channel*, not a distribution over channels: a
/// single-path 4-hop route is four entries of weight `1.0`. A `k`-way
/// spread is `4k` entries of weight `1/k` (candidate paths of one pair
/// never repeat a channel, so entries need no merging). Self-traffic
/// (`src == dst`) has an empty link set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowLinks {
    /// The SD pair this flow belongs to.
    pub pair: SdPair,
    /// `(channel, fraction of the pair's traffic crossing it)`.
    pub links: Vec<(ChannelId, f64)>,
}

impl FlowLinks {
    /// A flow that puts its whole unit of traffic on every channel of one
    /// path.
    pub fn single_path(pair: SdPair, channels: &[ChannelId]) -> Self {
        Self {
            pair,
            links: channels.iter().map(|&c| (c, 1.0)).collect(),
        }
    }

    /// A flow spread uniformly over `paths` (weight `1/paths.len()` per
    /// channel). An empty candidate list yields an empty link set.
    pub fn uniform_spread<'p>(
        pair: SdPair,
        paths: impl ExactSizeIterator<Item = &'p [ChannelId]>,
    ) -> Self {
        let k = paths.len();
        if k == 0 {
            return Self {
                pair,
                links: Vec::new(),
            };
        }
        let w = 1.0 / k as f64;
        let mut links = Vec::new();
        for path in paths {
            links.extend(path.iter().map(|&c| (c, w)));
        }
        Self { pair, links }
    }
}

/// Uniform access to the link-level flow sets a routing scheme induces for
/// a communication pattern.
pub trait LinkLoadView {
    /// Leaf universe size of the fabric this view serves.
    fn ports(&self) -> u32;

    /// Expand every SD pair of `perm` into its link-level flow set.
    ///
    /// # Errors
    /// Whatever the underlying router reports: out-of-range ports,
    /// infeasible plans, dead paths under fault masking.
    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError>;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}

/// Every pattern router (hence every single-path router, via the blanket
/// `SinglePathRouter → PatternRouter` impl) exposes unit-weight flow sets.
impl<R: PatternRouter> LinkLoadView for R {
    fn ports(&self) -> u32 {
        PatternRouter::ports(self)
    }

    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError> {
        let assignment = self.route_pattern(perm)?;
        Ok(assignment
            .routes()
            .iter()
            .map(|(pair, path)| FlowLinks::single_path(*pair, path.channels()))
            .collect())
    }

    fn name(&self) -> &'static str {
        PatternRouter::name(self)
    }
}

/// Oblivious multipath: uniform fractional spread over all candidates.
impl LinkLoadView for ObliviousMultipath<'_> {
    fn ports(&self) -> u32 {
        ObliviousMultipath::ports(self)
    }

    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError> {
        let spread = self.spread_pattern(perm)?;
        Ok(spread
            .entries()
            .iter()
            .map(|(pair, paths)| {
                FlowLinks::uniform_spread(*pair, paths.iter().map(|p| p.channels()))
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "multipath"
    }
}

/// Fault-masked single-path routing: the one deterministic path, checked
/// against the fault overlay (fails with [`RoutingError::PathFaulted`] when
/// any pair's pinned path is dead — deterministic routing has no fallback).
impl<R: SinglePathRouter> LinkLoadView for FaultAware<'_, R> {
    fn ports(&self) -> u32 {
        FaultAware::ports(self)
    }

    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError> {
        let assignment = self.route_pattern_checked(perm)?;
        Ok(assignment
            .routes()
            .iter()
            .map(|(pair, path)| FlowLinks::single_path(*pair, path.channels()))
            .collect())
    }

    fn name(&self) -> &'static str {
        "fault-aware"
    }
}

/// Oblivious multipath with dead candidates masked out: the spread narrows
/// to the surviving paths, so per-channel fractions *grow* as hardware dies
/// — exactly the load concentration the fluid model should see.
#[derive(Clone, Copy, Debug)]
pub struct MaskedMultipath<'a> {
    mp: ObliviousMultipath<'a>,
    view: &'a FaultyView<'a>,
}

impl<'a> MaskedMultipath<'a> {
    /// Wrap a spreader with a fault overlay.
    pub fn new(mp: ObliviousMultipath<'a>, view: &'a FaultyView<'a>) -> Self {
        Self { mp, view }
    }
}

impl LinkLoadView for MaskedMultipath<'_> {
    fn ports(&self) -> u32 {
        self.mp.ports()
    }

    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError> {
        let spread = self.mp.spread_pattern_masked(perm, self.view)?;
        Ok(spread
            .entries()
            .iter()
            .map(|(pair, paths)| {
                FlowLinks::uniform_spread(*pair, paths.iter().map(|p| p.channels()))
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "multipath+faults"
    }
}

/// NONBLOCKINGADAPTIVE with failed hardware masked out of the Fig. 4 plan
/// search (see [`NonblockingAdaptive::plan_masked`]).
#[derive(Clone, Copy, Debug)]
pub struct MaskedAdaptive<'a> {
    inner: &'a NonblockingAdaptive<'a>,
    view: &'a FaultyView<'a>,
    strategy: PlanStrategy,
}

impl<'a> MaskedAdaptive<'a> {
    /// Wrap an adaptive router with a fault overlay.
    pub fn new(
        inner: &'a NonblockingAdaptive<'a>,
        view: &'a FaultyView<'a>,
        strategy: PlanStrategy,
    ) -> Self {
        Self {
            inner,
            view,
            strategy,
        }
    }
}

impl LinkLoadView for MaskedAdaptive<'_> {
    fn ports(&self) -> u32 {
        PatternRouter::ports(self.inner)
    }

    fn flow_links(&self, perm: &Permutation) -> Result<Vec<FlowLinks>, RoutingError> {
        let plan = self.inner.plan_masked(perm, self.view, self.strategy)?;
        let assignment = self.inner.materialize_masked(&plan, self.view)?;
        Ok(assignment
            .routes()
            .iter()
            .map(|(pair, path)| FlowLinks::single_path(*pair, path.channels()))
            .collect())
    }

    fn name(&self) -> &'static str {
        "adaptive+faults"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmodk::DModK;
    use crate::multipath::SpreadPolicy;
    use crate::yuan::YuanDeterministic;
    use ftclos_topo::{FaultSet, Ftree};
    use ftclos_traffic::patterns;

    /// Sum of a flow's weights per channel must reconstruct the router's
    /// channel loads.
    #[test]
    fn single_path_view_matches_assignment_loads() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 3);
        let flows = LinkLoadView::flow_links(&yuan, &perm).unwrap();
        assert_eq!(flows.len(), perm.len());
        for f in &flows {
            // Cross-switch: 4 channels at weight 1; local: 2 channels.
            assert!(f.links.iter().all(|&(_, w)| w == 1.0));
            assert!(f.links.len() == 4 || f.links.len() == 2 || f.links.is_empty());
        }
        assert_eq!(LinkLoadView::name(&yuan), "yuan-deterministic");
    }

    #[test]
    fn multipath_view_spreads_uniformly() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = patterns::shift(10, 2);
        let flows = LinkLoadView::flow_links(&mp, &perm).unwrap();
        for f in &flows {
            let total: f64 = f.links.iter().map(|&(_, w)| w).sum();
            // 4 candidate paths x 4 hops x 1/4, or a 2-hop local path.
            let hops = if f.links.len() == 2 { 2.0 } else { 4.0 };
            assert!((total - hops).abs() < 1e-12, "weights sum to hop count");
        }
    }

    #[test]
    fn masked_views_shrink_to_live_hardware() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let view = FaultyView::new(ft.topology(), &faults);
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let masked = MaskedMultipath::new(mp, &view);
        let perm = patterns::shift(10, 2);
        let flows = masked.flow_links(&perm).unwrap();
        for f in &flows {
            if f.links.len() > 2 {
                // Cross-switch spreads narrowed from 4 to 3 candidates.
                assert_eq!(f.links.len(), 12);
                assert!(f.links.iter().all(|&(_, w)| (w - 1.0 / 3.0).abs() < 1e-12));
            }
            for &(c, _) in &f.links {
                assert!(view.path_alive(&[c]).is_ok(), "flows avoid dead channels");
            }
        }
    }

    #[test]
    fn fault_aware_view_propagates_dead_path_error() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let view = FaultyView::new(ft.topology(), &faults);
        let fa = FaultAware::new(yuan, &view);
        // shift:2 keeps i=j=0 pairs pinned to the dead top (0,0).
        let err = fa.flow_links(&patterns::shift(10, 2)).unwrap_err();
        assert!(matches!(err, RoutingError::PathFaulted { .. }));
    }

    #[test]
    fn dmodk_view_reconstructs_channel_loads() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let d = DModK::new(&ft);
        let perm = patterns::shift(10, 3);
        let flows = LinkLoadView::flow_links(&d, &perm).unwrap();
        let assignment = crate::router::route_all(&d, &perm).unwrap();
        let loads = assignment.channel_loads();
        let mut fluid: std::collections::HashMap<ChannelId, f64> = Default::default();
        for f in &flows {
            for &(c, w) in &f.links {
                *fluid.entry(c).or_insert(0.0) += w;
            }
        }
        for (c, &l) in &loads {
            assert!((fluid[c] - l as f64).abs() < 1e-12);
        }
    }
}
