//! Route assignments: the output of routing a communication pattern.

use crate::path::Path;
use ftclos_topo::{ChannelId, Topology};
use ftclos_traffic::SdPair;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One path per SD pair — the result of routing a pattern with a
/// single-path (deterministic or adaptive) scheme.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAssignment {
    routes: Vec<(SdPair, Path)>,
}

impl RouteAssignment {
    /// Build from `(pair, path)` entries.
    pub fn new(routes: Vec<(SdPair, Path)>) -> Self {
        Self { routes }
    }

    /// The routed pairs and their paths.
    #[inline]
    pub fn routes(&self) -> &[(SdPair, Path)] {
        &self.routes
    }

    /// Number of routed pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no pairs are routed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Append a routed pair.
    pub fn push(&mut self, pair: SdPair, path: Path) {
        self.routes.push((pair, path));
    }

    /// The path assigned to `pair`, if routed.
    pub fn path_of(&self, pair: SdPair) -> Option<&Path> {
        self.routes
            .iter()
            .find(|(p, _)| *p == pair)
            .map(|(_, path)| path)
    }

    /// Per-channel load: how many SD pairs traverse each channel.
    pub fn channel_loads(&self) -> HashMap<ChannelId, u32> {
        let mut loads = HashMap::new();
        for (_, path) in &self.routes {
            for &c in path.channels() {
                *loads.entry(c).or_insert(0) += 1;
            }
        }
        loads
    }

    /// Maximum channel load (0 for an empty assignment). A value above 1
    /// means two SD pairs share a link — *network contention* in the
    /// paper's sense.
    pub fn max_channel_load(&self) -> u32 {
        self.channel_loads().values().copied().max().unwrap_or(0)
    }

    /// Validate every path against the topology (walk connectivity and
    /// endpoints). Leaves are assumed to be the first node ids.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        for (pair, path) in &self.routes {
            path.validate(
                topo,
                ftclos_topo::NodeId(pair.src),
                ftclos_topo::NodeId(pair.dst),
            )
            .map_err(|e| format!("pair {pair}: {e}"))?;
        }
        Ok(())
    }

    /// Indices of the distinct top-of-path switches used, assuming 2-level
    /// paths (4 hops: up, up, down, down). Entries of shorter paths are
    /// skipped. Used to measure how many top switches a scheme consumes.
    pub fn tops_used(&self, topo: &Topology) -> std::collections::BTreeSet<ftclos_topo::NodeId> {
        let mut set = std::collections::BTreeSet::new();
        for (_, path) in &self.routes {
            let nodes = path.nodes(topo);
            for node in nodes {
                if topo.kind(node).level().is_some_and(|l| l >= 2) {
                    set.insert(node);
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_topo::Ftree;

    fn two_pair_assignment(ft: &Ftree) -> RouteAssignment {
        let mut a = RouteAssignment::default();
        a.push(
            SdPair::new(0, 5),
            Path::new(vec![
                ft.leaf_up_channel(0, 0),
                ft.up_channel(0, 0),
                ft.down_channel(0, 2),
                ft.leaf_down_channel(2, 1),
            ]),
        );
        a.push(
            SdPair::new(1, 4),
            Path::new(vec![
                ft.leaf_up_channel(0, 1),
                ft.up_channel(0, 0),
                ft.down_channel(0, 2),
                ft.leaf_down_channel(2, 0),
            ]),
        );
        a
    }

    #[test]
    fn loads_and_contention() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let a = two_pair_assignment(&ft);
        assert_eq!(a.len(), 2);
        let loads = a.channel_loads();
        assert_eq!(loads[&ft.up_channel(0, 0)], 2, "shared uplink");
        assert_eq!(loads[&ft.leaf_up_channel(0, 0)], 1);
        assert_eq!(a.max_channel_load(), 2);
        a.validate(ft.topology()).unwrap();
    }

    #[test]
    fn path_lookup() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let a = two_pair_assignment(&ft);
        assert!(a.path_of(SdPair::new(0, 5)).is_some());
        assert!(a.path_of(SdPair::new(0, 4)).is_none());
    }

    #[test]
    fn tops_used_counts_distinct() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let a = two_pair_assignment(&ft);
        let tops = a.tops_used(ft.topology());
        assert_eq!(tops.len(), 1);
        assert!(tops.contains(&ft.top(0)));
    }

    #[test]
    fn empty_assignment() {
        let a = RouteAssignment::default();
        assert!(a.is_empty());
        assert_eq!(a.max_channel_load(), 0);
    }

    #[test]
    fn validate_rejects_bad_path() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let mut a = RouteAssignment::default();
        a.push(SdPair::new(0, 5), Path::new(vec![ft.leaf_up_channel(0, 0)]));
        assert!(a.validate(ft.topology()).is_err());
    }
}
