//! Error type for routing computations.

use ftclos_topo::ChannelId;
use std::fmt;

/// Errors produced by routers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// The router's structural precondition on the fabric is unmet (e.g.
    /// the Theorem 3 routing needs `m >= n²`).
    Precondition {
        /// Router name.
        router: &'static str,
        /// What was violated.
        detail: String,
    },
    /// The pattern router needed more top-level switches than the fabric
    /// has (reported by NONBLOCKINGADAPTIVE when `m` is too small).
    NotEnoughTops {
        /// Top switches required by the computed plan.
        needed: usize,
        /// Top switches available (`m`).
        available: usize,
    },
    /// An SD pair references a port outside the fabric.
    PortOutOfRange {
        /// The offending port.
        port: u32,
        /// The fabric's leaf count.
        ports: u32,
    },
    /// The (single, pattern-independent) path of a deterministic router
    /// crosses a failed channel: the pair is unroutable without changing
    /// the routing algorithm.
    PathFaulted {
        /// Source port of the unroutable pair.
        src: u32,
        /// Destination port of the unroutable pair.
        dst: u32,
        /// The first failed channel on the pair's path.
        channel: ChannelId,
    },
    /// Every candidate path of a multipath/adaptive router is dead for this
    /// pair (e.g. the leaf's own cable failed): no routing algorithm can
    /// connect it.
    NoLivePath {
        /// Source port.
        src: u32,
        /// Destination port.
        dst: u32,
    },
    /// A route was requested from a plan computed in an older churn epoch:
    /// the fabric's liveness changed since the plan was made, so its paths
    /// may cross hardware that has since died. Re-plan instead of silently
    /// routing over a corpse.
    StaleEpoch {
        /// Epoch the plan was computed in.
        plan_epoch: u64,
        /// The planner's current epoch.
        current_epoch: u64,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::Precondition { router, detail } => {
                write!(f, "{router}: precondition violated: {detail}")
            }
            RoutingError::NotEnoughTops { needed, available } => {
                write!(
                    f,
                    "not enough top-level switches: plan needs {needed}, fabric has {available}"
                )
            }
            RoutingError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range (fabric has {ports} leaves)")
            }
            RoutingError::PathFaulted { src, dst, channel } => {
                write!(
                    f,
                    "pair {src} -> {dst} is unroutable: its deterministic path \
                     crosses failed channel {}",
                    channel.0
                )
            }
            RoutingError::NoLivePath { src, dst } => {
                write!(
                    f,
                    "pair {src} -> {dst} has no live path under the fault set"
                )
            }
            RoutingError::StaleEpoch {
                plan_epoch,
                current_epoch,
            } => {
                write!(
                    f,
                    "plan from epoch {plan_epoch} is stale: fabric is at epoch {current_epoch}"
                )
            }
        }
    }
}

impl std::error::Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = RoutingError::NotEnoughTops {
            needed: 9,
            available: 4,
        };
        assert!(e.to_string().contains("needs 9"));
        let e = RoutingError::PortOutOfRange { port: 5, ports: 4 };
        assert!(e.to_string().contains("port 5"));
        let e = RoutingError::PathFaulted {
            src: 1,
            dst: 7,
            channel: ChannelId(12),
        };
        assert!(e.to_string().contains("failed channel 12"));
        let e = RoutingError::NoLivePath { src: 0, dst: 3 };
        assert!(e.to_string().contains("no live path"));
        let e = RoutingError::StaleEpoch {
            plan_epoch: 2,
            current_epoch: 5,
        };
        assert!(e.to_string().contains("epoch 2"));
        assert!(e.to_string().contains("epoch 5"));
    }
}
