//! Error type for routing computations.

use std::fmt;

/// Errors produced by routers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// The router's structural precondition on the fabric is unmet (e.g.
    /// the Theorem 3 routing needs `m >= n²`).
    Precondition {
        /// Router name.
        router: &'static str,
        /// What was violated.
        detail: String,
    },
    /// The pattern router needed more top-level switches than the fabric
    /// has (reported by NONBLOCKINGADAPTIVE when `m` is too small).
    NotEnoughTops {
        /// Top switches required by the computed plan.
        needed: usize,
        /// Top switches available (`m`).
        available: usize,
    },
    /// An SD pair references a port outside the fabric.
    PortOutOfRange {
        /// The offending port.
        port: u32,
        /// The fabric's leaf count.
        ports: u32,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::Precondition { router, detail } => {
                write!(f, "{router}: precondition violated: {detail}")
            }
            RoutingError::NotEnoughTops { needed, available } => {
                write!(
                    f,
                    "not enough top-level switches: plan needs {needed}, fabric has {available}"
                )
            }
            RoutingError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range (fabric has {ports} leaves)")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = RoutingError::NotEnoughTops {
            needed: 9,
            available: 4,
        };
        assert!(e.to_string().contains("needs 9"));
        let e = RoutingError::PortOutOfRange { port: 5, ports: 4 };
        assert!(e.to_string().contains("port 5"));
    }
}
