//! Distributed forwarding tables compiled from a single-path router.
//!
//! In real folded-Clos deployments (e.g. InfiniBand), routing is realized as
//! per-switch forwarding tables, not as global path objects. This module
//! compiles any [`SinglePathRouter`] into `(switch, input port, destination)
//! → output channel` tables — the form the packet simulator consumes — and
//! verifies the router is *table-realizable* (the same key never demands two
//! different outputs). The Theorem 3 routing needs the input port in the
//! key (its top switch depends on the source's local index `i`), which
//! models source-routed or input-port-dependent switching.

use crate::error::RoutingError;
use crate::router::SinglePathRouter;
use ftclos_topo::{ChannelId, NodeId, Topology};
use ftclos_traffic::SdPair;
use std::collections::HashMap;

/// Key: switch node, arrival port (`u16::MAX` for packets injected by a
/// local leaf... never needed: leaf injections enter via the leaf uplink,
/// which is a real input port), destination leaf.
type Key = (u32, u16, u32);

/// Compiled forwarding state for a fabric.
#[derive(Clone, Debug, Default)]
pub struct ForwardingTables {
    table: HashMap<Key, ChannelId>,
    ports: u32,
}

impl ForwardingTables {
    /// Compile tables by tracing every ordered leaf pair through `router`.
    ///
    /// # Errors
    /// [`RoutingError::Precondition`] if two pairs demand different outputs
    /// for the same `(switch, in_port, dst)` key — i.e. the routing function
    /// cannot be realized by per-switch tables.
    pub fn compile<R: SinglePathRouter + ?Sized>(
        router: &R,
        topo: &Topology,
    ) -> Result<Self, RoutingError> {
        let ports = router.ports();
        let mut table: HashMap<Key, ChannelId> = HashMap::new();
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                let path = router.try_route(SdPair::new(s, d))?;
                let channels = path.channels();
                // Walk consecutive channel pairs: arriving on channels[k]
                // at its dst node, leave on channels[k+1].
                for k in 0..channels.len().saturating_sub(1) {
                    let arrive = topo.channel(channels[k]);
                    let depart = channels[k + 1];
                    let key = (arrive.dst.0, arrive.dst_port, d);
                    match table.insert(key, depart) {
                        None => {}
                        Some(prev) if prev == depart => {}
                        Some(prev) => {
                            return Err(RoutingError::Precondition {
                                router: "ForwardingTables",
                                detail: format!(
                                    "switch {} in-port {} dst {} maps to both {prev} and {depart}",
                                    arrive.dst, arrive.dst_port, d
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(Self { table, ports })
    }

    /// Leaf universe size.
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// Number of table entries across all switches.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Next-hop lookup: the packet is at `node`, arrived on input port
    /// `in_port`, and wants leaf `dst`.
    pub fn next_hop(&self, node: NodeId, in_port: u16, dst: u32) -> Option<ChannelId> {
        self.table.get(&(node.0, in_port, dst)).copied()
    }

    /// Whether the tables are input-port-independent (classic destination
    /// routing): for every `(switch, dst)` all input ports agree. `d mod k`
    /// is; Theorem 3 routing is not.
    pub fn is_destination_routed(&self) -> bool {
        let mut by_dst: HashMap<(u32, u32), ChannelId> = HashMap::new();
        for (&(node, _inport, dst), &out) in &self.table {
            match by_dst.insert((node, dst), out) {
                None => {}
                Some(prev) if prev == out => {}
                Some(_) => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmodk::DModK;
    use crate::yuan::YuanDeterministic;
    use ftclos_topo::Ftree;

    #[test]
    fn compile_yuan_and_follow() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let tables = ForwardingTables::compile(&router, ft.topology()).unwrap();
        assert!(!tables.is_empty());
        // Walk a packet from leaf 1 (v=0,i=1) to leaf 6 (w=3,j=0) by table
        // lookups and compare to the router's path.
        let expected = router.route(SdPair::new(1, 6));
        let topo = ft.topology();
        let mut walked = vec![expected.channels()[0]];
        loop {
            let last = topo.channel(*walked.last().unwrap());
            if last.dst == ftclos_topo::NodeId(6) {
                break;
            }
            let next = tables
                .next_hop(last.dst, last.dst_port, 6)
                .expect("table entry must exist");
            walked.push(next);
        }
        assert_eq!(walked, expected.channels());
    }

    #[test]
    fn yuan_needs_input_port_keys() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let tables = ForwardingTables::compile(&router, ft.topology()).unwrap();
        assert!(
            !tables.is_destination_routed(),
            "Theorem 3 routing is source-dependent"
        );
    }

    #[test]
    fn dmodk_is_destination_routed() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let tables = ForwardingTables::compile(&router, ft.topology()).unwrap();
        assert!(tables.is_destination_routed());
    }

    #[test]
    fn missing_entry_is_none() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let router = DModK::new(&ft);
        let tables = ForwardingTables::compile(&router, ft.topology()).unwrap();
        assert_eq!(tables.next_hop(ftclos_topo::NodeId(0), 99, 3), None);
    }
}
