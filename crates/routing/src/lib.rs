//! # ftclos-routing — routing algorithms for folded-Clos networks
//!
//! Implements every routing scheme the paper analyzes or uses as a
//! comparator:
//!
//! * [`YuanDeterministic`] — the Theorem 3 single-path deterministic routing
//!   that makes `ftree(n+n², r)` nonblocking: SD pair `(s=(v,i), d=(w,j))`
//!   goes through top switch `(i, j)`.
//! * [`DModK`] / [`SModK`] — destination-/source-modular deterministic
//!   routings (the InfiniBand-style defaults); blocking when `m < n²`, used
//!   to exhibit Theorem 2 witnesses.
//! * [`ObliviousMultipath`] — traffic-oblivious multi-path spreading
//!   (deterministic round-robin or per-packet random), Section IV.B.
//! * [`NonblockingAdaptive`] — the paper's Fig. 4 local adaptive algorithm
//!   (configurations of `c+1` partitions of `n` top switches each, greedy
//!   largest-subset selection), Theorems 4-5.
//! * [`GreedyLocalAdaptive`] — a least-loaded local adaptive baseline (in
//!   the spirit of Kim/Dally/Abts adaptive routing) that reduces but does
//!   not eliminate blocking.
//! * [`RearrangeableRouter`] — centralized rearrangeable routing via
//!   bipartite multigraph edge coloring (the Beneš `m >= n` construction);
//!   this is the "global adaptive / centralized controller" scheme the
//!   paper contrasts against.
//! * [`YuanRecursive`] — the composed routing for the three-level
//!   [`ftclos_topo::RecursiveNonblocking`] network.
//! * [`ForwardingTables`] — per-switch `(input port, destination) → output
//!   port` tables compiled from any single-path router, used by the packet
//!   simulator as its distributed control plane.
//! * [`LinkLoadView`] — the uniform per-link flow-set interface every router
//!   (including the fault-masked variants) exposes to the fluid flow-rate
//!   simulator in `ftclos-flowsim`.
//! * [`MinCongestion`] — the load-aware min-congestion router family
//!   (greedy min-max placement, seeded randomized rounding, local-search
//!   repair) planning whole patterns at once behind the [`GlobalRouter`]
//!   plan step, then lowering onto [`SinglePathRouter`] / [`LinkLoadView`].
//! * [`PathArena`] — every SD path of a single-path router precomputed once
//!   into CSR storage (pair → path and channel → pair incidence), so the
//!   exact analyzers in `ftclos-core` and the fluid flow expansion index
//!   instead of re-routing.

pub mod adaptive;
pub mod arena;
pub mod assignment;
pub mod churn;
pub mod congestion;
pub mod dmodk;
pub mod error;
pub mod fault_aware;
pub mod greedy;
pub mod loadview;
pub mod multipath;
pub mod path;
pub mod rearrangeable;
pub mod recursive;
pub mod router;
pub mod table;
pub mod xgft_routing;
pub mod yuan;

pub use adaptive::{AdaptivePlan, NonblockingAdaptive, PlanStrategy};
pub use arena::{ArenaLoadView, PathArena};
pub use assignment::RouteAssignment;
pub use churn::{EpochPlan, EpochPlanner, LinkAdmission};
pub use congestion::{
    demand_lower_bound, CongestionConfig, CongestionMode, CongestionPlan, FnCandidates,
    FtreeCandidates, GlobalRouter, LoweredPlan, MinCongestion, PathCandidates, PlanLoadView,
};
pub use dmodk::{DModK, SModK};
pub use error::RoutingError;
pub use fault_aware::FaultAware;
pub use greedy::GreedyLocalAdaptive;
pub use loadview::{FlowLinks, LinkLoadView, MaskedAdaptive, MaskedMultipath};
pub use multipath::{MultipathAssignment, ObliviousMultipath, SpreadPolicy};
pub use path::Path;
pub use rearrangeable::RearrangeableRouter;
pub use recursive::YuanRecursive;
pub use router::{route_all, PatternRouter, SinglePathRouter};
pub use table::ForwardingTables;
pub use xgft_routing::{UpChoice, XgftRouter};
pub use yuan::YuanDeterministic;
