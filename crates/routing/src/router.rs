//! Router traits.

use crate::assignment::RouteAssignment;
use crate::error::RoutingError;
use crate::path::Path;
use ftclos_traffic::{Permutation, SdPair};

/// A single-path routing function: each SD pair gets one pre-determined
/// path, independent of the traffic pattern (the paper's "single-path
/// deterministic routing").
pub trait SinglePathRouter {
    /// Leaf universe size of the fabric this router serves.
    fn ports(&self) -> u32;

    /// The (pattern-independent) path for `pair`.
    ///
    /// # Panics
    /// May panic if `pair` references ports outside the fabric; use
    /// [`SinglePathRouter::try_route`] for checked routing.
    fn route(&self, pair: SdPair) -> Path;

    /// Checked routing.
    fn try_route(&self, pair: SdPair) -> Result<Path, RoutingError> {
        for port in [pair.src, pair.dst] {
            if port >= self.ports() {
                return Err(RoutingError::PortOutOfRange {
                    port,
                    ports: self.ports(),
                });
            }
        }
        Ok(self.route(pair))
    }

    /// Router name for reports.
    fn name(&self) -> &'static str;
}

/// A pattern-level router: paths may depend on the communication pattern
/// (adaptive and centralized schemes).
pub trait PatternRouter {
    /// Leaf universe size of the fabric this router serves.
    fn ports(&self) -> u32;

    /// Route every SD pair of `perm`.
    fn route_pattern(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError>;

    /// Router name for reports.
    fn name(&self) -> &'static str;
}

/// Route a whole permutation with a single-path router.
pub fn route_all<R: SinglePathRouter + ?Sized>(
    router: &R,
    perm: &Permutation,
) -> Result<RouteAssignment, RoutingError> {
    let mut out = RouteAssignment::default();
    for &pair in perm.pairs() {
        out.push(pair, router.try_route(pair)?);
    }
    Ok(out)
}

/// Every single-path router is trivially a pattern router.
impl<R: SinglePathRouter> PatternRouter for R {
    fn ports(&self) -> u32 {
        SinglePathRouter::ports(self)
    }

    fn route_pattern(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError> {
        route_all(self, perm)
    }

    fn name(&self) -> &'static str {
        SinglePathRouter::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake router over 4 ports that routes everything over no channels.
    struct Loopback;

    impl SinglePathRouter for Loopback {
        fn ports(&self) -> u32 {
            4
        }
        fn route(&self, _pair: SdPair) -> Path {
            Path::empty()
        }
        fn name(&self) -> &'static str {
            "loopback"
        }
    }

    #[test]
    fn try_route_checks_range() {
        let r = Loopback;
        assert!(r.try_route(SdPair::new(0, 3)).is_ok());
        assert_eq!(
            r.try_route(SdPair::new(0, 9)).unwrap_err(),
            RoutingError::PortOutOfRange { port: 9, ports: 4 }
        );
    }

    #[test]
    fn route_all_covers_pattern() {
        let r = Loopback;
        let perm = Permutation::from_map(&[1, 0, 3, 2]).unwrap();
        let a = route_all(&r, &perm).unwrap();
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn blanket_pattern_router() {
        let r = Loopback;
        let perm = Permutation::from_map(&[1, 0, 3, 2]).unwrap();
        let a = PatternRouter::route_pattern(&r, &perm).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(PatternRouter::name(&r), "loopback");
        assert_eq!(PatternRouter::ports(&r), 4);
    }
}
