//! Base-`n` digit encoding of switches and leaves (paper Section V).
//!
//! For `ftree(n+m, r)` pick the smallest constant `c` with `r <= n^c`.
//! Bottom switches get `c` base-`n` digits `s_{c-1}…s_0`; leaf
//! `s_{c-1}…s_0 p` appends its local index `p` as the least-significant
//! digit. Partition `1` of a configuration keys destinations by `p`;
//! partition `i ∈ 2..=c+1` keys them by `(s_{i-2} - p) mod n`.

use crate::error::RoutingError;

/// Digit coder for the adaptive algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DigitCoder {
    n: usize,
    r: usize,
    c: usize,
}

impl DigitCoder {
    /// Build a coder for `ftree(n+m, r)` leaf numbering.
    ///
    /// # Errors
    /// `n == 1` only supports `r == 1` (one switch: every digit is 0);
    /// larger `r` cannot be encoded and the adaptive scheme degenerates.
    pub fn new(n: usize, r: usize) -> Result<Self, RoutingError> {
        if n == 0 || r == 0 {
            return Err(RoutingError::Precondition {
                router: "NonblockingAdaptive",
                detail: format!("n = {n}, r = {r}: both must be >= 1"),
            });
        }
        if n == 1 && r > 1 {
            return Err(RoutingError::Precondition {
                router: "NonblockingAdaptive",
                detail: format!("n = 1 cannot encode r = {r} switches in base-1 digits"),
            });
        }
        // Smallest c >= 1 with n^c >= r.
        let mut c = 1usize;
        let mut pow = n as u128;
        while pow < r as u128 {
            pow *= n as u128;
            c += 1;
        }
        Ok(Self { n, r, c })
    }

    /// Leaves per switch.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of bottom switches encoded.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// The digit-count constant `c` (`r <= n^c`, minimal).
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Number of partitions per configuration, `c + 1`.
    #[inline]
    pub fn partitions(&self) -> usize {
        self.c + 1
    }

    /// Switch digit `s_i` of switch `v` (base-`n`, `s_0` least significant).
    #[inline]
    pub fn switch_digit(&self, v: usize, i: usize) -> usize {
        debug_assert!(i < self.c);
        (v / self.n.pow(i as u32)) % self.n
    }

    /// Decompose a leaf index into `(v, p)`.
    #[inline]
    pub fn leaf_coords(&self, leaf: u32) -> (usize, usize) {
        ((leaf as usize) / self.n, (leaf as usize) % self.n)
    }

    /// The partition key of destination `leaf` in partition `pt ∈ 0..=c`:
    /// partition 0 keys by `p`; partition `pt >= 1` (the paper's partition
    /// `pt + 1`) keys by `(s_{pt-1} - p) mod n`.
    ///
    /// Within one bottom switch all destinations have distinct keys in every
    /// partition — the Class DIFF property (Lemma 4).
    #[inline]
    pub fn partition_key(&self, leaf: u32, pt: usize) -> usize {
        debug_assert!(pt <= self.c);
        let (v, p) = self.leaf_coords(leaf);
        if pt == 0 {
            p
        } else {
            let s = self.switch_digit(v, pt - 1);
            (s + self.n - p % self.n) % self.n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_is_minimal() {
        assert_eq!(DigitCoder::new(2, 1).unwrap().c(), 1);
        assert_eq!(DigitCoder::new(2, 2).unwrap().c(), 1);
        assert_eq!(DigitCoder::new(2, 3).unwrap().c(), 2);
        assert_eq!(DigitCoder::new(2, 4).unwrap().c(), 2);
        assert_eq!(DigitCoder::new(2, 5).unwrap().c(), 3);
        assert_eq!(DigitCoder::new(3, 9).unwrap().c(), 2);
        assert_eq!(DigitCoder::new(3, 10).unwrap().c(), 3);
        assert_eq!(DigitCoder::new(10, 1000).unwrap().c(), 3);
    }

    #[test]
    fn degenerate_parameters() {
        assert!(DigitCoder::new(0, 1).is_err());
        assert!(DigitCoder::new(1, 2).is_err());
        let one = DigitCoder::new(1, 1).unwrap();
        assert_eq!(one.c(), 1);
        assert_eq!(one.partition_key(0, 0), 0);
    }

    #[test]
    fn switch_digits() {
        let c = DigitCoder::new(3, 27).unwrap();
        assert_eq!(c.c(), 3);
        // v = 14 = 112 base 3.
        assert_eq!(c.switch_digit(14, 0), 2);
        assert_eq!(c.switch_digit(14, 1), 1);
        assert_eq!(c.switch_digit(14, 2), 1);
    }

    #[test]
    fn partition_keys_match_paper() {
        // n = 2, r = 4 -> c = 2, digits s1 s0 p.
        let c = DigitCoder::new(2, 4).unwrap();
        // leaf 5 = switch 2 (s1 s0 = 10), p = 1.
        assert_eq!(c.partition_key(5, 0), 1); // p
        assert_eq!(c.partition_key(5, 1), (2 - 1)); // (s0 - p) % n = 1
        assert_eq!(c.partition_key(5, 2), (1 + 2 - 1) % 2); // (s1 - p) % n = 0
    }

    #[test]
    fn class_diff_within_a_switch() {
        // Distinct destinations in the same switch must get distinct keys in
        // EVERY partition (Lemma 4).
        for (n, r) in [(2, 4), (3, 9), (4, 16), (3, 27)] {
            let coder = DigitCoder::new(n, r).unwrap();
            for v in 0..r {
                for pt in 0..=coder.c() {
                    let keys: std::collections::HashSet<usize> = (0..n)
                        .map(|p| coder.partition_key((v * n + p) as u32, pt))
                        .collect();
                    assert_eq!(keys.len(), n, "n={n} r={r} v={v} pt={pt}");
                }
            }
        }
    }

    #[test]
    fn keys_are_in_range() {
        let c = DigitCoder::new(3, 20).unwrap();
        for leaf in 0..60u32 {
            for pt in 0..=c.c() {
                assert!(c.partition_key(leaf, pt) < 3);
            }
        }
    }
}
