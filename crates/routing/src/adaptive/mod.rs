//! NONBLOCKINGADAPTIVE — the paper's Fig. 4 local adaptive routing
//! algorithm (Section V, Theorems 4-5).
//!
//! The algorithm routes the SD pairs of each source switch **independently**
//! (locality), in *configurations* of `(c+1)·n` top-level switches split
//! into `c+1` *partitions* of `n` switches. Within a partition, destination
//! leaf `s_{c-1}…s_0 p` is pinned to partition-local top switch
//! `key(partition, destination)` — a Class DIFF mapping (Lemma 4), so pairs
//! from different source switches can never contend. Per source switch the
//! algorithm greedily assigns the largest distinct-key subset of the
//! remaining pairs to an unused partition (Fig. 4 line (7)) until every pair
//! is routed, opening new configurations as needed.

pub mod digits;

use crate::assignment::RouteAssignment;
use crate::error::RoutingError;
use crate::path::Path;
use crate::router::PatternRouter;
use digits::DigitCoder;
use ftclos_topo::{FaultyView, Ftree};
use ftclos_traffic::{Permutation, SdPair};
use serde::{Deserialize, Serialize};

/// Partition-selection strategy for Fig. 4 line (7) (ablation hook).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanStrategy {
    /// The paper's greedy: route the largest distinct-key subset over all
    /// unused partitions.
    GreedyLargestSubset,
    /// Ablation: take partitions in index order without the max search.
    FirstFit,
}

/// Where the plan sends one SD pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogicalRoute {
    /// Source and destination share a bottom switch (or are the same leaf):
    /// no top-level switch involved.
    Local,
    /// Routed through configuration `config`, partition `partition`, at
    /// partition-local top switch `key`; the physical top switch index is
    /// `config·(c+1)·n + partition·n + key`.
    Top {
        /// Configuration index (per the merged, fabric-wide numbering).
        config: u16,
        /// Partition within the configuration, `0..=c`.
        partition: u16,
        /// Partition-local top switch, `0..n`.
        key: u16,
    },
}

/// The logical routing plan produced by the Fig. 4 algorithm, before
/// materialization onto a concrete fabric.
///
/// The plan exists independently of `m` so experiments can measure how many
/// top-level switches the algorithm *needs* (Theorem 5) without building
/// enormous topologies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdaptivePlan {
    n: usize,
    c: usize,
    configs_per_switch: Vec<usize>,
    logical: Vec<(SdPair, LogicalRoute)>,
}

impl AdaptivePlan {
    /// Leaves per switch.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The digit constant `c` (`r <= n^c`).
    pub fn c(&self) -> usize {
        self.c
    }

    /// Configurations consumed by each source switch.
    pub fn configs_per_switch(&self) -> &[usize] {
        &self.configs_per_switch
    }

    /// `totalconf` of Fig. 4 line (14): the maximum over source switches.
    pub fn total_configs(&self) -> usize {
        self.configs_per_switch.iter().copied().max().unwrap_or(0)
    }

    /// Top-level switches required: `totalconf · (c+1) · n`.
    pub fn tops_needed(&self) -> usize {
        self.total_configs() * (self.c + 1) * self.n
    }

    /// The per-pair logical routes.
    pub fn logical(&self) -> &[(SdPair, LogicalRoute)] {
        &self.logical
    }

    /// Physical top-switch index for a [`LogicalRoute::Top`] entry.
    pub fn top_index(&self, route: LogicalRoute) -> Option<usize> {
        match route {
            LogicalRoute::Local => None,
            LogicalRoute::Top {
                config,
                partition,
                key,
            } => Some(
                config as usize * (self.c + 1) * self.n
                    + partition as usize * self.n
                    + key as usize,
            ),
        }
    }
}

/// The NONBLOCKINGADAPTIVE pattern router over an `ftree(n+m, r)`.
///
/// ```
/// use ftclos_routing::{NonblockingAdaptive, PatternRouter};
/// use ftclos_topo::Ftree;
/// use ftclos_traffic::patterns;
/// use rand::SeedableRng;
///
/// let ft = Ftree::new(3, 36, 9).unwrap(); // ample top switches
/// let router = NonblockingAdaptive::new(&ft).unwrap();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let perm = patterns::random_full(27, &mut rng);
/// let plan = router.plan(&perm).unwrap();
/// assert!(plan.tops_needed() < 3 * 3 + (plan.c() + 1) * 3); // beats m = n²
/// let routes = router.route_pattern(&perm).unwrap();
/// assert!(routes.max_channel_load() <= 1); // Theorem 4
/// ```
#[derive(Clone, Copy, Debug)]
pub struct NonblockingAdaptive<'a> {
    ft: &'a Ftree,
    coder: DigitCoder,
}

impl<'a> NonblockingAdaptive<'a> {
    /// Create the router; fails for fabrics whose switches cannot be
    /// base-`n` digit encoded (`n == 1 && r > 1`).
    pub fn new(ft: &'a Ftree) -> Result<Self, RoutingError> {
        let coder = DigitCoder::new(ft.n(), ft.r())?;
        Ok(Self { ft, coder })
    }

    /// The digit coder in use.
    pub fn coder(&self) -> DigitCoder {
        self.coder
    }

    /// Run Fig. 4 on `perm` and return the logical plan (no fabric-size
    /// check: use this for Theorem 5 measurements).
    pub fn plan(&self, perm: &Permutation) -> Result<AdaptivePlan, RoutingError> {
        self.plan_with(perm, PlanStrategy::GreedyLargestSubset)
    }

    /// Run the algorithm with an explicit partition-selection strategy —
    /// the ablation hook for Fig. 4 line (7). The paper's algorithm uses
    /// [`PlanStrategy::GreedyLargestSubset`]; [`PlanStrategy::FirstFit`]
    /// removes the "largest subset" search and takes partitions in index
    /// order, isolating how much that greedy choice buys.
    pub fn plan_with(
        &self,
        perm: &Permutation,
        strategy: PlanStrategy,
    ) -> Result<AdaptivePlan, RoutingError> {
        let ports = self.ft.num_leaves() as u32;
        for pair in perm.pairs() {
            for port in [pair.src, pair.dst] {
                if port >= ports {
                    return Err(RoutingError::PortOutOfRange { port, ports });
                }
            }
        }
        let n = self.coder.n();
        let c = self.coder.c();
        let parts = self.coder.partitions();
        let mut logical: Vec<(SdPair, LogicalRoute)> = Vec::with_capacity(perm.len());
        let mut configs_per_switch = vec![0usize; self.ft.r()];

        // Line (1): split P into per-source-switch sets P^i.
        let groups = perm.group_by_source(|s| s as usize / n);
        for (switch, group) in groups {
            // Same-switch pairs never touch top switches.
            let mut pending: Vec<SdPair> = Vec::with_capacity(group.len());
            for pair in group {
                if pair.dst as usize / n == switch {
                    logical.push((pair, LogicalRoute::Local));
                } else {
                    pending.push(pair);
                }
            }
            // Lines (4)-(12): configurations of c+1 partitions.
            let mut config = 0u16;
            while !pending.is_empty() {
                let mut used = vec![false; parts];
                loop {
                    if pending.is_empty() {
                        break;
                    }
                    // Line (7): the largest subset routable on one unused
                    // partition = the partition with the most distinct keys.
                    // (FirstFit ablation: take the first unused partition's
                    // subset without comparing sizes.)
                    let mut best: Option<(usize, Vec<usize>)> = None;
                    #[allow(clippy::needless_range_loop)]
                    for pt in 0..parts {
                        if used[pt] {
                            continue;
                        }
                        // First pending pair per key value.
                        let mut seen = vec![false; n];
                        let mut subset = Vec::new();
                        for (idx, pair) in pending.iter().enumerate() {
                            let key = self.coder.partition_key(pair.dst, pt);
                            if !std::mem::replace(&mut seen[key], true) {
                                subset.push(idx);
                            }
                        }
                        if best.as_ref().is_none_or(|(_, b)| subset.len() > b.len()) {
                            best = Some((pt, subset));
                        }
                        if strategy == PlanStrategy::FirstFit {
                            break;
                        }
                    }
                    let Some((pt, subset)) = best else {
                        break; // no unused partition left
                    };
                    debug_assert!(!subset.is_empty());
                    // Lines (8)-(10): route LSET on PART, mark used, remove.
                    used[pt] = true;
                    // Remove back-to-front to keep indices stable.
                    for &idx in subset.iter().rev() {
                        let pair = pending.swap_remove(idx);
                        let key = self.coder.partition_key(pair.dst, pt) as u16;
                        logical.push((
                            pair,
                            LogicalRoute::Top {
                                config,
                                partition: pt as u16,
                                key,
                            },
                        ));
                    }
                    if used.iter().all(|&u| u) {
                        break;
                    }
                }
                config += 1;
            }
            configs_per_switch[switch] = config as usize;
        }
        Ok(AdaptivePlan {
            n,
            c,
            configs_per_switch,
            logical,
        })
    }

    /// Materialize a plan onto the fabric.
    ///
    /// # Errors
    /// * [`RoutingError::NotEnoughTops`] when the plan needs more than `m`
    ///   top-level switches,
    /// * [`RoutingError::PortOutOfRange`] when the plan carries a pair this
    ///   fabric has no leaves for (a plan built for a bigger fabric) — a
    ///   typed error instead of an out-of-bounds panic in the channel
    ///   accessors below.
    pub fn materialize(&self, plan: &AdaptivePlan) -> Result<RouteAssignment, RoutingError> {
        if plan.tops_needed() > self.ft.m() {
            return Err(RoutingError::NotEnoughTops {
                needed: plan.tops_needed(),
                available: self.ft.m(),
            });
        }
        self.check_plan_ports(plan)?;
        let n = self.ft.n();
        let mut out = RouteAssignment::default();
        for &(pair, route) in plan.logical() {
            let (v, i) = (pair.src as usize / n, pair.src as usize % n);
            let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
            let path = match plan.top_index(route) {
                None => {
                    if pair.src == pair.dst {
                        Path::empty()
                    } else {
                        Path::new(vec![
                            self.ft.leaf_up_channel(v, i),
                            self.ft.leaf_down_channel(w, j),
                        ])
                    }
                }
                Some(t) => Path::new(vec![
                    self.ft.leaf_up_channel(v, i),
                    self.ft.up_channel(v, t),
                    self.ft.down_channel(t, w),
                    self.ft.leaf_down_channel(w, j),
                ]),
            };
            out.push(pair, path);
        }
        Ok(out)
    }
}

impl<'a> NonblockingAdaptive<'a> {
    /// Run Fig. 4 with failed hardware masked out of the LSET/partition
    /// search: a `(config, partition, key)` slot is only eligible for a pair
    /// when its physical top switch exists (`t < m`) and both the up channel
    /// from the source switch and the down channel to the destination switch
    /// are alive. Spare top switches (`m > tops_needed`) thus become live
    /// fallback capacity: the algorithm simply opens more configurations.
    ///
    /// # Errors
    /// * [`RoutingError::PortOutOfRange`] for bad pairs,
    /// * [`RoutingError::NoLivePath`] when a pair's own leaf cable is dead,
    ///   or no live top switch can serve it at all,
    /// * [`RoutingError::NotEnoughTops`] when pairs remain unrouted after
    ///   every configuration that fits in `m` has been tried.
    pub fn plan_masked(
        &self,
        perm: &Permutation,
        view: &FaultyView<'_>,
        strategy: PlanStrategy,
    ) -> Result<AdaptivePlan, RoutingError> {
        let ports = self.ft.num_leaves() as u32;
        for pair in perm.pairs() {
            for port in [pair.src, pair.dst] {
                if port >= ports {
                    return Err(RoutingError::PortOutOfRange { port, ports });
                }
            }
        }
        let n = self.coder.n();
        let c = self.coder.c();
        let parts = self.coder.partitions();
        let m = self.ft.m();
        let config_width = (c + 1) * n;
        let mut logical: Vec<(SdPair, LogicalRoute)> = Vec::with_capacity(perm.len());
        let mut configs_per_switch = vec![0usize; self.ft.r()];

        let groups = perm.group_by_source(|s| s as usize / n);
        for (switch, group) in groups {
            let mut pending: Vec<SdPair> = Vec::with_capacity(group.len());
            for pair in group {
                // The leaf's own cables have no alternative: dead means the
                // pair is unreachable under any routing algorithm.
                if pair.src != pair.dst {
                    let (v, i) = (pair.src as usize / n, pair.src as usize % n);
                    let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
                    if !view.channel_alive(self.ft.leaf_up_channel(v, i))
                        || !view.channel_alive(self.ft.leaf_down_channel(w, j))
                    {
                        return Err(RoutingError::NoLivePath {
                            src: pair.src,
                            dst: pair.dst,
                        });
                    }
                }
                if pair.dst as usize / n == switch {
                    logical.push((pair, LogicalRoute::Local));
                } else {
                    pending.push(pair);
                }
            }
            let mut config = 0u16;
            while !pending.is_empty() {
                if config as usize * config_width >= m {
                    // Every further configuration lies wholly beyond the
                    // fabric. Distinguish "this pair cannot be served by any
                    // top switch" from "the fabric ran out of spare tops".
                    for &pair in &pending {
                        if !self.has_live_top(pair, view) {
                            return Err(RoutingError::NoLivePath {
                                src: pair.src,
                                dst: pair.dst,
                            });
                        }
                    }
                    return Err(RoutingError::NotEnoughTops {
                        needed: (config as usize + 1) * config_width,
                        available: m,
                    });
                }
                let mut used = vec![false; parts];
                loop {
                    if pending.is_empty() {
                        break;
                    }
                    let mut best: Option<(usize, Vec<usize>)> = None;
                    #[allow(clippy::needless_range_loop)]
                    for pt in 0..parts {
                        if used[pt] {
                            continue;
                        }
                        let mut seen = vec![false; n];
                        let mut subset = Vec::new();
                        for (idx, pair) in pending.iter().enumerate() {
                            let key = self.coder.partition_key(pair.dst, pt);
                            if seen[key] {
                                continue;
                            }
                            let t = config as usize * config_width + pt * n + key;
                            if !self.slot_alive(*pair, t, view) {
                                continue;
                            }
                            seen[key] = true;
                            subset.push(idx);
                        }
                        if !subset.is_empty()
                            && best.as_ref().is_none_or(|(_, b)| subset.len() > b.len())
                        {
                            best = Some((pt, subset));
                            if strategy == PlanStrategy::FirstFit {
                                break;
                            }
                        }
                    }
                    let Some((pt, subset)) = best else {
                        break; // no unused partition can take any pair
                    };
                    used[pt] = true;
                    for &idx in subset.iter().rev() {
                        let pair = pending.swap_remove(idx);
                        let key = self.coder.partition_key(pair.dst, pt) as u16;
                        logical.push((
                            pair,
                            LogicalRoute::Top {
                                config,
                                partition: pt as u16,
                                key,
                            },
                        ));
                    }
                    if used.iter().all(|&u| u) {
                        break;
                    }
                }
                config += 1;
            }
            configs_per_switch[switch] = configs_per_switch[switch].max(config as usize);
        }
        Ok(AdaptivePlan {
            n,
            c,
            configs_per_switch,
            logical,
        })
    }

    /// Whether physical top `t` can carry `pair` under the fault overlay.
    fn slot_alive(&self, pair: SdPair, t: usize, view: &FaultyView<'_>) -> bool {
        if t >= self.ft.m() {
            return false;
        }
        let n = self.ft.n();
        let v = pair.src as usize / n;
        let w = pair.dst as usize / n;
        view.channel_alive(self.ft.up_channel(v, t))
            && view.channel_alive(self.ft.down_channel(t, w))
    }

    /// Whether *some* top switch in the fabric can still carry `pair`.
    fn has_live_top(&self, pair: SdPair, view: &FaultyView<'_>) -> bool {
        (0..self.ft.m()).any(|t| self.slot_alive(pair, t, view))
    }

    /// Reject plans whose pairs reference ports this fabric does not have —
    /// the materializers index `leaf_up_channel(src / n, src % n)` directly,
    /// so a plan built for a bigger fabric must fail typed, not panic.
    fn check_plan_ports(&self, plan: &AdaptivePlan) -> Result<(), RoutingError> {
        let ports = self.ft.num_leaves() as u32;
        for &(pair, _) in plan.logical() {
            for port in [pair.src, pair.dst] {
                if port >= ports {
                    return Err(RoutingError::PortOutOfRange { port, ports });
                }
            }
        }
        Ok(())
    }

    /// Materialize a plan onto the fabric, verifying every used channel
    /// against the fault overlay (each used top is checked individually —
    /// [`AdaptivePlan::tops_needed`] over-counts for masked plans, which may
    /// skip dead slots inside a configuration).
    ///
    /// # Errors
    /// * [`RoutingError::NotEnoughTops`] when a route references a top
    ///   switch beyond `m`,
    /// * [`RoutingError::PortOutOfRange`] when the plan carries a pair this
    ///   fabric has no leaves for,
    /// * [`RoutingError::PathFaulted`] when a route crosses a dead channel
    ///   (never for plans produced by [`Self::plan_masked`] on this view).
    pub fn materialize_masked(
        &self,
        plan: &AdaptivePlan,
        view: &FaultyView<'_>,
    ) -> Result<RouteAssignment, RoutingError> {
        self.check_plan_ports(plan)?;
        let n = self.ft.n();
        let mut out = RouteAssignment::default();
        for &(pair, route) in plan.logical() {
            let (v, i) = (pair.src as usize / n, pair.src as usize % n);
            let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
            let path = match plan.top_index(route) {
                None => {
                    if pair.src == pair.dst {
                        Path::empty()
                    } else {
                        Path::new(vec![
                            self.ft.leaf_up_channel(v, i),
                            self.ft.leaf_down_channel(w, j),
                        ])
                    }
                }
                Some(t) => {
                    if t >= self.ft.m() {
                        return Err(RoutingError::NotEnoughTops {
                            needed: t + 1,
                            available: self.ft.m(),
                        });
                    }
                    Path::new(vec![
                        self.ft.leaf_up_channel(v, i),
                        self.ft.up_channel(v, t),
                        self.ft.down_channel(t, w),
                        self.ft.leaf_down_channel(w, j),
                    ])
                }
            };
            if let Err(ftclos_topo::FaultError::DeadChannel { channel }) =
                view.path_alive(path.channels())
            {
                return Err(RoutingError::PathFaulted {
                    src: pair.src,
                    dst: pair.dst,
                    channel,
                });
            }
            out.push(pair, path);
        }
        Ok(out)
    }

    /// Plan and materialize under a fault overlay in one step (the paper's
    /// greedy strategy).
    pub fn route_pattern_masked(
        &self,
        perm: &Permutation,
        view: &FaultyView<'_>,
    ) -> Result<RouteAssignment, RoutingError> {
        let plan = self.plan_masked(perm, view, PlanStrategy::GreedyLargestSubset)?;
        self.materialize_masked(&plan, view)
    }
}

impl PatternRouter for NonblockingAdaptive<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }

    fn route_pattern(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError> {
        let plan = self.plan(perm)?;
        self.materialize(&plan)
    }

    fn name(&self) -> &'static str {
        "nonblocking-adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_traffic::patterns;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    /// A fabric with ample top switches so materialization always succeeds.
    fn big_m_ftree(n: usize, r: usize) -> Ftree {
        Ftree::new(n, n * n * 4, r).unwrap()
    }

    #[test]
    fn plan_routes_every_pair_once() {
        let ft = big_m_ftree(3, 9);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let perm = patterns::random_full(27, &mut rng(3));
        let plan = router.plan(&perm).unwrap();
        assert_eq!(plan.logical().len(), 27);
        let mut srcs: Vec<u32> = plan.logical().iter().map(|(p, _)| p.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 27);
    }

    #[test]
    fn theorem4_random_permutations_contention_free() {
        for (n, r) in [(2, 4), (3, 9), (4, 8), (2, 7)] {
            let ft = big_m_ftree(n, r);
            let router = NonblockingAdaptive::new(&ft).unwrap();
            let ports = (n * r) as u32;
            let mut g = rng(n as u64 * 100 + r as u64);
            for _ in 0..30 {
                let perm = patterns::random_full(ports, &mut g);
                let a = router.route_pattern(&perm).unwrap();
                assert!(a.max_channel_load() <= 1, "contention with n={n} r={r}");
                a.validate(ft.topology()).unwrap();
            }
        }
    }

    #[test]
    fn exhaustive_tiny_fabric() {
        // n = 2, r = 3 -> 6 leaves, 720 permutations: check all of them.
        let ft = big_m_ftree(2, 3);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        for perm in ftclos_traffic::enumerate::AllPermutations::new(6) {
            let a = router.route_pattern(&perm).unwrap();
            assert!(a.max_channel_load() <= 1, "blocked {:?}", perm.pairs());
        }
    }

    #[test]
    fn tops_needed_below_n_squared_bound() {
        // Paper: at most ((c+1)/(c+2))·n² tops — always < n² — for full
        // permutations... the bound in the text is n/(c+2) configs; verify
        // the weaker guarantee tops_needed <= ((c+1)/(c+2)) n^2 rounded up.
        for (n, r) in [(4, 16), (6, 36), (8, 64)] {
            let ft = big_m_ftree(n, r);
            let router = NonblockingAdaptive::new(&ft).unwrap();
            let c = router.coder().c();
            let mut g = rng(99);
            let mut worst = 0usize;
            for _ in 0..20 {
                let perm = patterns::random_full((n * r) as u32, &mut g);
                let plan = router.plan(&perm).unwrap();
                worst = worst.max(plan.tops_needed());
            }
            let bound = ((c + 1) * n * n).div_ceil(c + 2) + (c + 1) * n;
            assert!(worst <= bound, "n={n} r={r}: worst {worst} > bound {bound}");
            assert!(worst < n * n + (c + 1) * n, "improves on deterministic");
        }
    }

    #[test]
    fn not_enough_tops_is_reported() {
        let ft = Ftree::new(3, 2, 9).unwrap(); // m = 2, far too small
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let perm = patterns::random_full(27, &mut rng(5));
        let err = router.route_pattern(&perm).unwrap_err();
        assert!(matches!(err, RoutingError::NotEnoughTops { .. }));
    }

    #[test]
    fn local_pairs_avoid_tops() {
        let ft = big_m_ftree(2, 4);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let perm =
            Permutation::from_pairs(8, [SdPair::new(0, 1), SdPair::new(2, 2), SdPair::new(4, 7)])
                .unwrap();
        let plan = router.plan(&perm).unwrap();
        let by_pair: std::collections::HashMap<SdPair, LogicalRoute> =
            plan.logical().iter().copied().collect();
        assert_eq!(by_pair[&SdPair::new(0, 1)], LogicalRoute::Local);
        assert_eq!(by_pair[&SdPair::new(2, 2)], LogicalRoute::Local);
        assert!(matches!(
            by_pair[&SdPair::new(4, 7)],
            LogicalRoute::Top { .. }
        ));
    }

    #[test]
    fn partial_permutations_work() {
        let ft = big_m_ftree(3, 9);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let mut g = rng(17);
        for _ in 0..20 {
            let perm = patterns::random_partial(27, 0.5, &mut g);
            let a = router.route_pattern(&perm).unwrap();
            assert!(a.max_channel_load() <= 1);
        }
    }

    #[test]
    fn single_pair_uses_one_config() {
        let ft = big_m_ftree(2, 4);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let perm = Permutation::from_pairs(8, [SdPair::new(0, 6)]).unwrap();
        let plan = router.plan(&perm).unwrap();
        assert_eq!(plan.total_configs(), 1);
        assert_eq!(plan.tops_needed(), (plan.c() + 1) * 2);
    }

    #[test]
    fn first_fit_is_still_nonblocking_but_never_cheaper() {
        let ft = big_m_ftree(4, 16);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let mut g = rng(41);
        for _ in 0..20 {
            let perm = patterns::random_full(64, &mut g);
            let greedy = router
                .plan_with(&perm, PlanStrategy::GreedyLargestSubset)
                .unwrap();
            let first_fit = router.plan_with(&perm, PlanStrategy::FirstFit).unwrap();
            assert!(greedy.tops_needed() <= first_fit.tops_needed());
            // Correctness is strategy-independent (Lemma 5 constrains only
            // which pairs share a partition, and both strategies respect it).
            let a = router.materialize(&first_fit).unwrap();
            assert!(a.max_channel_load() <= 1);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let ft = big_m_ftree(2, 4);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let perm = Permutation::from_pairs(100, [SdPair::new(0, 99)]).unwrap();
        assert!(matches!(
            router.plan(&perm),
            Err(RoutingError::PortOutOfRange { .. })
        ));
    }

    #[test]
    fn masked_plan_matches_unmasked_on_pristine_view() {
        let ft = big_m_ftree(3, 9);
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let view = ftclos_topo::FaultyView::pristine(ft.topology());
        let mut g = rng(7);
        for _ in 0..10 {
            let perm = patterns::random_full(27, &mut g);
            let a = router.route_pattern(&perm).unwrap();
            let b = router.route_pattern_masked(&perm, &view).unwrap();
            assert_eq!(a.max_channel_load(), b.max_channel_load());
            assert_eq!(b.len(), perm.len());
        }
    }

    #[test]
    fn masked_plan_routes_around_dead_top_with_spares() {
        // ftree(3 + 12, 9): the Fig. 4 configuration width is (c+1)·n = 9,
        // so m = 12 leaves a whole spare partition (tops 9..12) in a second
        // configuration. Any single dead top must be fully absorbed.
        let ft = Ftree::new(3, 12, 9).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let mut g = rng(23);
        for dead_top in 0..9usize {
            let mut faults = ftclos_topo::FaultSet::new();
            faults.fail_switch(ft.top(dead_top));
            let view = ftclos_topo::FaultyView::new(ft.topology(), &faults);
            for _ in 0..10 {
                let perm = patterns::random_full(27, &mut g);
                let a = router.route_pattern_masked(&perm, &view).unwrap();
                assert!(
                    a.max_channel_load() <= 1,
                    "contention with dead top {dead_top}"
                );
                a.validate(ft.topology()).unwrap();
            }
        }
    }

    #[test]
    fn masked_plan_dead_leaf_cable_is_no_live_path() {
        let ft = Ftree::new(3, 12, 9).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let mut faults = ftclos_topo::FaultSet::new();
        faults.fail_channel(ft.leaf_up_channel(0, 0)); // leaf 0's uplink
        let view = ftclos_topo::FaultyView::new(ft.topology(), &faults);
        let perm = patterns::shift(27, 3);
        let err = router
            .plan_masked(&perm, &view, PlanStrategy::GreedyLargestSubset)
            .unwrap_err();
        assert!(matches!(err, RoutingError::NoLivePath { src: 0, .. }));
    }

    #[test]
    fn masked_plan_distinguishes_no_live_path_from_not_enough_tops() {
        let ft = Ftree::new(3, 12, 9).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let coder = router.coder();
        let pair = SdPair::new(0, 26); // switch 0 -> switch 8
        let perm = Permutation::from_pairs(27, [pair]).unwrap();

        // Kill exactly the slots the key discipline would assign to this
        // pair: config 0 partitions 0..=c, plus the config-1 partition-0
        // spare. Other tops stay alive, so the hardware is not exhausted —
        // the *algorithm* is: NotEnoughTops.
        let c = coder.c();
        let n = ft.n();
        let mut faults = ftclos_topo::FaultSet::new();
        for pt in 0..=c {
            let key = coder.partition_key(pair.dst, pt);
            faults.fail_switch(ft.top(pt * n + key));
        }
        let spare_key = coder.partition_key(pair.dst, 0);
        faults.fail_switch(ft.top((c + 1) * n + spare_key));
        let view = ftclos_topo::FaultyView::new(ft.topology(), &faults);
        let err = router
            .plan_masked(&perm, &view, PlanStrategy::GreedyLargestSubset)
            .unwrap_err();
        assert!(matches!(err, RoutingError::NotEnoughTops { .. }), "{err}");

        // Now kill *every* top switch: no hardware can serve the pair.
        let mut all = ftclos_topo::FaultSet::new();
        for t in 0..ft.m() {
            all.fail_switch(ft.top(t));
        }
        let view = ftclos_topo::FaultyView::new(ft.topology(), &all);
        let err = router
            .plan_masked(&perm, &view, PlanStrategy::GreedyLargestSubset)
            .unwrap_err();
        assert!(matches!(err, RoutingError::NoLivePath { src: 0, dst: 26 }));
    }

    #[test]
    fn materialize_masked_rejects_unmasked_plan_through_dead_top() {
        // A plan computed blind to faults materializes onto dead hardware;
        // the masked materializer names the offending pair and channel.
        let ft = Ftree::new(3, 12, 9).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let perm = patterns::random_full(27, &mut rng(31));
        let plan = router.plan(&perm).unwrap();
        let used_top = plan
            .logical()
            .iter()
            .find_map(|&(_, route)| plan.top_index(route))
            .expect("a full permutation uses some top switch");
        let mut faults = ftclos_topo::FaultSet::new();
        faults.fail_switch(ft.top(used_top));
        let view = ftclos_topo::FaultyView::new(ft.topology(), &faults);
        let err = router.materialize_masked(&plan, &view).unwrap_err();
        assert!(matches!(err, RoutingError::PathFaulted { .. }));
    }
}
