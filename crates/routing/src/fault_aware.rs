//! Fault-aware wrapper for single-path deterministic routers.
//!
//! A single-path router is *pattern-independent by definition* — so when a
//! channel on its one path dies, the pair is simply unroutable: the paper's
//! deterministic routing has no second choice. [`FaultAware`] makes that a
//! typed error ([`RoutingError::PathFaulted`]) instead of silently producing
//! a path through dead hardware. The contrast with the masked multipath and
//! adaptive routers (which *do* have other choices) is the degradation story
//! the E17 experiment measures.

use crate::assignment::RouteAssignment;
use crate::error::RoutingError;
use crate::path::Path;
use crate::router::SinglePathRouter;
use ftclos_topo::FaultyView;
use ftclos_traffic::{Permutation, SdPair};

/// A single-path router checked against a fault overlay.
#[derive(Clone, Copy, Debug)]
pub struct FaultAware<'f, R> {
    inner: R,
    view: &'f FaultyView<'f>,
}

impl<'f, R: SinglePathRouter> FaultAware<'f, R> {
    /// Wrap `inner` so every returned path is checked against `view`.
    pub fn new(inner: R, view: &'f FaultyView<'f>) -> Self {
        Self { inner, view }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The fault overlay in use.
    pub fn view(&self) -> &'f FaultyView<'f> {
        self.view
    }

    /// Leaf universe size of the wrapped router.
    pub fn ports(&self) -> u32 {
        self.inner.ports()
    }

    /// Router name (`<inner>+faults`).
    pub fn name(&self) -> &'static str {
        "fault-aware"
    }

    /// Route `pair`, rejecting paths that cross dead hardware.
    ///
    /// # Errors
    /// * [`RoutingError::PortOutOfRange`] as for the wrapped router,
    /// * [`RoutingError::PathFaulted`] naming the first dead channel.
    pub fn route_checked(&self, pair: SdPair) -> Result<Path, RoutingError> {
        let path = self.inner.try_route(pair)?;
        match self.view.path_alive(path.channels()) {
            Ok(()) => Ok(path),
            Err(fault) => Err(RoutingError::PathFaulted {
                src: pair.src,
                dst: pair.dst,
                channel: match fault {
                    ftclos_topo::FaultError::DeadChannel { channel } => channel,
                    // A dead node is reported via one of its channels; paths
                    // are channel lists, so this arm is unreachable today.
                    ftclos_topo::FaultError::DeadNode { .. } => unreachable!(),
                },
            }),
        }
    }

    /// Route a whole pattern; fails on the first unroutable pair.
    pub fn route_pattern_checked(
        &self,
        perm: &Permutation,
    ) -> Result<RouteAssignment, RoutingError> {
        let mut out = RouteAssignment::default();
        for &pair in perm.pairs() {
            out.push(pair, self.route_checked(pair)?);
        }
        Ok(out)
    }

    /// All pairs of `perm` whose deterministic path is dead, with the error
    /// for each — the survivable remainder is returned alongside.
    pub fn partition_pattern(
        &self,
        perm: &Permutation,
    ) -> (RouteAssignment, Vec<(SdPair, RoutingError)>) {
        let mut routed = RouteAssignment::default();
        let mut dead = Vec::new();
        for &pair in perm.pairs() {
            match self.route_checked(pair) {
                Ok(path) => routed.push(pair, path),
                Err(e) => dead.push((pair, e)),
            }
        }
        (routed, dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yuan::YuanDeterministic;
    use ftclos_topo::{FaultSet, FaultyView, Ftree};
    use ftclos_traffic::patterns;

    #[test]
    fn pristine_view_routes_everything() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let view = FaultyView::pristine(ft.topology());
        let fa = FaultAware::new(yuan, &view);
        let perm = patterns::shift(10, 3);
        let a = fa.route_pattern_checked(&perm).unwrap();
        assert_eq!(a.len(), 10);
        assert!(a.max_channel_load() <= 1);
    }

    #[test]
    fn dead_top_makes_pinned_pairs_unroutable() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0)); // top (i=0, j=0)
        let view = FaultyView::new(ft.topology(), &faults);
        let fa = FaultAware::new(yuan, &view);
        // (v=0,i=0) -> (w=1,j=0) is pinned to top (0,0): unroutable.
        let err = fa.route_checked(SdPair::new(0, 2)).unwrap_err();
        assert!(matches!(
            err,
            RoutingError::PathFaulted { src: 0, dst: 2, .. }
        ));
        // (v=0,i=1) -> (w=1,j=1) uses top (1,1) = 3: fine.
        assert!(fa.route_checked(SdPair::new(1, 3)).is_ok());
    }

    #[test]
    fn partition_pattern_counts_match_pinning() {
        // Fail top (0,0): exactly the cross-switch pairs with i=0 and j=0
        // are unroutable.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let view = FaultyView::new(ft.topology(), &faults);
        let fa = FaultAware::new(yuan, &view);
        // shift by n=2 keeps i=j parity: src 2k -> dst 2k+2 has i=j=0.
        let perm = patterns::shift(10, 2);
        let (routed, dead) = fa.partition_pattern(&perm);
        assert_eq!(routed.len() + dead.len(), 10);
        assert_eq!(dead.len(), 5, "all five i=0->j=0 cross pairs die");
        for (pair, err) in &dead {
            assert_eq!(pair.src % 2, 0);
            assert!(matches!(err, RoutingError::PathFaulted { .. }));
        }
    }

    #[test]
    fn out_of_range_still_reported_first() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let view = FaultyView::pristine(ft.topology());
        let fa = FaultAware::new(yuan, &view);
        assert!(matches!(
            fa.route_checked(SdPair::new(0, 99)),
            Err(RoutingError::PortOutOfRange { .. })
        ));
    }
}
