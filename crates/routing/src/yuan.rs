//! The paper's Theorem 3 single-path deterministic routing.

use crate::error::RoutingError;
use crate::path::Path;
use crate::router::SinglePathRouter;
use ftclos_topo::Ftree;
use ftclos_traffic::SdPair;

/// Theorem 3 routing for `ftree(n+m, r)` with `m >= n²`:
///
/// SD pair `(s = (v, i), d = (w, j))` with `v != w` is routed through top
/// switch `(i, j)` — path `(v,i) → v → (i,j) → w → (w,j)`. Same-switch
/// pairs go `(v,i) → v → (v,j)` without touching top switches.
///
/// With this assignment every uplink `v → (i,j)` carries only pairs with the
/// single source `(v, i)`, and every downlink `(i,j) → w` carries only pairs
/// with the single destination `(w, j)` (paper Fig. 3), so by Lemma 1 the
/// fabric is nonblocking.
///
/// ```
/// use ftclos_routing::{route_all, YuanDeterministic};
/// use ftclos_topo::Ftree;
/// use ftclos_traffic::patterns;
///
/// let ft = Ftree::new(2, 4, 5).unwrap(); // m = n² = 4
/// let router = YuanDeterministic::new(&ft).unwrap();
/// let perm = patterns::shift(10, 3);
/// let routes = route_all(&router, &perm).unwrap();
/// assert_eq!(routes.max_channel_load(), 1); // zero contention
/// ```
#[derive(Clone, Copy, Debug)]
pub struct YuanDeterministic<'a> {
    ft: &'a Ftree,
}

impl<'a> YuanDeterministic<'a> {
    /// Create the router. Requires `m >= n²` (Theorem 2's tight bound).
    pub fn new(ft: &'a Ftree) -> Result<Self, RoutingError> {
        if ft.m() < ft.n() * ft.n() {
            return Err(RoutingError::Precondition {
                router: "YuanDeterministic",
                detail: format!(
                    "needs m >= n^2 top switches (m = {}, n = {})",
                    ft.m(),
                    ft.n()
                ),
            });
        }
        Ok(Self { ft })
    }

    /// The fabric this router serves.
    pub fn ftree(&self) -> &'a Ftree {
        self.ft
    }

    /// The top switch index used for a cross-switch pair: `t = i·n + j`
    /// where `i`/`j` are the source/destination local leaf indices.
    pub fn top_for(&self, pair: SdPair) -> usize {
        let n = self.ft.n() as u32;
        let i = pair.src % n;
        let j = pair.dst % n;
        (i * n + j) as usize
    }
}

impl SinglePathRouter for YuanDeterministic<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }

    fn route(&self, pair: SdPair) -> Path {
        let n = self.ft.n();
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        if pair.src == pair.dst {
            return Path::empty();
        }
        if v == w {
            return Path::new(vec![
                self.ft.leaf_up_channel(v, i),
                self.ft.leaf_down_channel(w, j),
            ]);
        }
        let t = i * n + j;
        Path::new(vec![
            self.ft.leaf_up_channel(v, i),
            self.ft.up_channel(v, t),
            self.ft.down_channel(t, w),
            self.ft.leaf_down_channel(w, j),
        ])
    }

    fn name(&self) -> &'static str {
        "yuan-deterministic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_all;
    use ftclos_traffic::patterns;

    #[test]
    fn requires_enough_tops() {
        let small = Ftree::new(2, 3, 5).unwrap();
        assert!(YuanDeterministic::new(&small).is_err());
        let ok = Ftree::new(2, 4, 5).unwrap();
        assert!(YuanDeterministic::new(&ok).is_ok());
    }

    #[test]
    fn cross_switch_path_shape() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = YuanDeterministic::new(&ft).unwrap();
        // (v=0, i=1) -> (w=3, j=0): top (1, 0) = index 2.
        let pair = SdPair::new(1, 6);
        assert_eq!(r.top_for(pair), 2);
        let path = r.route(pair);
        assert_eq!(path.len(), 4);
        path.validate(ft.topology(), ft.leaf(0, 1), ft.leaf(3, 0))
            .unwrap();
        let nodes = path.nodes(ft.topology());
        assert_eq!(nodes[2], ft.top_ij(1, 0));
    }

    #[test]
    fn same_switch_stays_local() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = YuanDeterministic::new(&ft).unwrap();
        let path = r.route(SdPair::new(2, 3)); // both in switch 1
        assert_eq!(path.len(), 2);
        path.validate(ft.topology(), ft.leaf(1, 0), ft.leaf(1, 1))
            .unwrap();
    }

    #[test]
    fn self_pair_is_empty() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = YuanDeterministic::new(&ft).unwrap();
        assert!(r.route(SdPair::new(3, 3)).is_empty());
    }

    #[test]
    fn fig3_uplink_single_source() {
        // All pairs routed on uplink v -> (i,j) share source (v,i).
        let ft = Ftree::new(3, 9, 7).unwrap();
        let r = YuanDeterministic::new(&ft).unwrap();
        let n = 3u32;
        for v in 0..7u32 {
            for t in 0..9usize {
                let up = ft.up_channel(v as usize, t);
                let mut sources = std::collections::HashSet::new();
                for s in 0..21u32 {
                    for d in 0..21u32 {
                        if s / n == d / n || s == d {
                            continue;
                        }
                        let path = r.route(SdPair::new(s, d));
                        if path.channels().contains(&up) {
                            sources.insert(s);
                        }
                    }
                }
                assert!(sources.len() <= 1, "uplink {v}->{t} sources {sources:?}");
                // Fig. 3: exactly r-1 = 6 SD pairs on each uplink, all from
                // source (v, i).
            }
        }
    }

    #[test]
    fn random_permutation_is_contention_free() {
        use rand::SeedableRng;
        let ft = Ftree::new(3, 9, 7).unwrap();
        let r = YuanDeterministic::new(&ft).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let perm = patterns::random_full(21, &mut rng);
            let a = route_all(&r, &perm).unwrap();
            assert!(a.max_channel_load() <= 1, "Theorem 3 violated");
            a.validate(ft.topology()).unwrap();
        }
    }
}
