//! Greedy least-loaded local adaptive routing — the conventional adaptive
//! baseline (in the spirit of Kim, Dally & Abts, SC'06).
//!
//! Each source switch assigns its cross-switch SD pairs to top switches one
//! by one, choosing the top switch whose uplink is least loaded *locally*
//! (ties broken by lowest index). This reduces blocking probability
//! substantially compared to `d mod k` but — unlike NONBLOCKINGADAPTIVE —
//! it coordinates nothing about **downlinks**, so two switches can still
//! collide below a top switch: it is not nonblocking.

use crate::assignment::RouteAssignment;
use crate::error::RoutingError;
use crate::path::Path;
use crate::router::PatternRouter;
use ftclos_topo::Ftree;
use ftclos_traffic::Permutation;

/// Least-loaded-uplink local adaptive router for `ftree(n+m, r)`.
#[derive(Clone, Copy, Debug)]
pub struct GreedyLocalAdaptive<'a> {
    ft: &'a Ftree,
}

impl<'a> GreedyLocalAdaptive<'a> {
    /// Create the router.
    pub fn new(ft: &'a Ftree) -> Self {
        Self { ft }
    }
}

impl PatternRouter for GreedyLocalAdaptive<'_> {
    fn ports(&self) -> u32 {
        self.ft.num_leaves() as u32
    }

    fn route_pattern(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError> {
        let ports = self.ports();
        let n = self.ft.n();
        let m = self.ft.m();
        let mut out = RouteAssignment::default();
        // Per-source-switch local uplink loads (local information only).
        let groups = perm.group_by_source(|s| s as usize / n);
        for (switch, group) in groups {
            let mut uplink_load = vec![0u32; m];
            for pair in group {
                for port in [pair.src, pair.dst] {
                    if port >= ports {
                        return Err(RoutingError::PortOutOfRange { port, ports });
                    }
                }
                let (v, i) = (pair.src as usize / n, pair.src as usize % n);
                let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
                debug_assert_eq!(v, switch);
                let path = if pair.src == pair.dst {
                    Path::empty()
                } else if v == w {
                    Path::new(vec![
                        self.ft.leaf_up_channel(v, i),
                        self.ft.leaf_down_channel(w, j),
                    ])
                } else {
                    let t = (0..m).min_by_key(|&t| (uplink_load[t], t)).expect("m >= 1");
                    uplink_load[t] += 1;
                    Path::new(vec![
                        self.ft.leaf_up_channel(v, i),
                        self.ft.up_channel(v, t),
                        self.ft.down_channel(t, w),
                        self.ft.leaf_down_channel(w, j),
                    ])
                };
                out.push(pair, path);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "greedy-local-adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_traffic::{patterns, SdPair};
    use rand::SeedableRng;

    #[test]
    fn uplinks_never_contend_when_m_at_least_n() {
        // With m >= n the greedy spread puts each of a switch's <= n pairs
        // on a distinct uplink.
        use rand::SeedableRng as _;
        let ft = Ftree::new(3, 3, 6).unwrap();
        let r = GreedyLocalAdaptive::new(&ft);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let perm = patterns::random_full(18, &mut rng);
            let a = r.route_pattern(&perm).unwrap();
            for (ch, load) in a.channel_loads() {
                let c = ft.topology().channel(ch);
                if ft.bottom_index(c.src).is_some() && ft.top_index(c.dst).is_some() {
                    assert!(load <= 1, "uplink contention");
                }
            }
            a.validate(ft.topology()).unwrap();
        }
    }

    #[test]
    fn downlinks_can_still_contend() {
        // Witness that greedy local adaptive is NOT nonblocking: two source
        // switches both pick top 0 first and send to the same dest switch.
        let ft = Ftree::new(2, 2, 4).unwrap();
        let r = GreedyLocalAdaptive::new(&ft);
        let perm = Permutation::from_pairs(8, [SdPair::new(0, 6), SdPair::new(2, 7)]).unwrap();
        let a = r.route_pattern(&perm).unwrap();
        assert_eq!(a.max_channel_load(), 2, "downlink into switch 3 shared");
    }

    #[test]
    fn blocks_fewer_random_perms_than_dmodk() {
        use crate::dmodk::DModK;
        let ft = Ftree::new(4, 4, 9).unwrap();
        let greedy = GreedyLocalAdaptive::new(&ft);
        let dmodk = DModK::new(&ft);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let mut greedy_blocked = 0;
        let mut dmodk_blocked = 0;
        for _ in 0..100 {
            let perm = patterns::random_full(36, &mut rng);
            if greedy.route_pattern(&perm).unwrap().max_channel_load() > 1 {
                greedy_blocked += 1;
            }
            if PatternRouter::route_pattern(&dmodk, &perm)
                .unwrap()
                .max_channel_load()
                > 1
            {
                dmodk_blocked += 1;
            }
        }
        assert!(
            greedy_blocked <= dmodk_blocked,
            "greedy {greedy_blocked} vs dmodk {dmodk_blocked}"
        );
    }

    #[test]
    fn self_and_local_pairs() {
        let ft = Ftree::new(2, 2, 4).unwrap();
        let r = GreedyLocalAdaptive::new(&ft);
        let perm = Permutation::from_pairs(8, [SdPair::new(0, 0), SdPair::new(2, 3)]).unwrap();
        // (2, 3) is same-switch (both in switch 1): local two-hop path.
        let a = r.route_pattern(&perm).unwrap();
        assert_eq!(a.path_of(SdPair::new(0, 0)).unwrap().len(), 0);
        assert_eq!(a.path_of(SdPair::new(2, 3)).unwrap().len(), 2);
    }
}
