//! Paths: ordered channel sequences from a source leaf to a destination leaf.

use ftclos_topo::{ChannelId, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// A route through the network: the ordered list of directed channels a
/// packet traverses from its source leaf to its destination leaf.
///
/// The empty path is legal and denotes self-traffic that never enters the
/// network (`src == dst`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    channels: Vec<ChannelId>,
}

impl Path {
    /// Build a path from channels. No validation; see [`Path::validate`].
    pub fn new(channels: Vec<ChannelId>) -> Self {
        Self { channels }
    }

    /// The empty (self-traffic) path.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The channels in traversal order.
    #[inline]
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// Number of hops (channels).
    #[inline]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True for the empty path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Check that the path is a connected walk from `src` to `dst` in
    /// `topo`. Returns a description of the first violation.
    pub fn validate(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Result<(), String> {
        if self.channels.is_empty() {
            if src == dst {
                return Ok(());
            }
            return Err(format!("empty path but src {src} != dst {dst}"));
        }
        let first = topo.channel(self.channels[0]);
        if first.src != src {
            return Err(format!("path starts at {} not {src}", first.src));
        }
        let mut at = first.dst;
        for &c in &self.channels[1..] {
            let ch = topo.channel(c);
            if ch.src != at {
                return Err(format!(
                    "discontinuity: at {at} but channel starts at {}",
                    ch.src
                ));
            }
            at = ch.dst;
        }
        if at != dst {
            return Err(format!("path ends at {at} not {dst}"));
        }
        Ok(())
    }

    /// The sequence of nodes visited, starting at the path's first channel's
    /// source (empty for the empty path).
    pub fn nodes(&self, topo: &Topology) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.channels.len() + 1);
        for (idx, &c) in self.channels.iter().enumerate() {
            let ch = topo.channel(c);
            if idx == 0 {
                out.push(ch.src);
            }
            out.push(ch.dst);
        }
        out
    }

    /// True if `self` and `other` share any channel — the paper's definition
    /// of *contention* between two routed SD pairs.
    pub fn shares_channel_with(&self, other: &Path) -> bool {
        // Paths are short (<= 6 hops in 3-level networks); quadratic scan
        // beats hashing here.
        self.channels.iter().any(|c| other.channels.contains(c))
    }
}

impl FromIterator<ChannelId> for Path {
    fn from_iter<T: IntoIterator<Item = ChannelId>>(iter: T) -> Self {
        Self {
            channels: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_topo::Ftree;

    #[test]
    fn validate_good_path() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let p = Path::new(vec![
            ft.leaf_up_channel(0, 0),
            ft.up_channel(0, 1),
            ft.down_channel(1, 2),
            ft.leaf_down_channel(2, 1),
        ]);
        p.validate(ft.topology(), ft.leaf(0, 0), ft.leaf(2, 1))
            .unwrap();
        assert_eq!(p.len(), 4);
        let nodes = p.nodes(ft.topology());
        assert_eq!(nodes.len(), 5);
        assert_eq!(nodes[0], ft.leaf(0, 0));
        assert_eq!(nodes[2], ft.top(1));
    }

    #[test]
    fn validate_detects_discontinuity() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let p = Path::new(vec![ft.leaf_up_channel(0, 0), ft.down_channel(1, 2)]);
        assert!(p
            .validate(ft.topology(), ft.leaf(0, 0), ft.bottom(2))
            .is_err());
    }

    #[test]
    fn validate_endpoints() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let p = Path::new(vec![ft.leaf_up_channel(0, 0)]);
        assert!(p
            .validate(ft.topology(), ft.leaf(0, 1), ft.bottom(0))
            .is_err());
        assert!(p
            .validate(ft.topology(), ft.leaf(0, 0), ft.bottom(1))
            .is_err());
        p.validate(ft.topology(), ft.leaf(0, 0), ft.bottom(0))
            .unwrap();
    }

    #[test]
    fn empty_path_rules() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let p = Path::empty();
        assert!(p.is_empty());
        p.validate(ft.topology(), ft.leaf(0, 0), ft.leaf(0, 0))
            .unwrap();
        assert!(p
            .validate(ft.topology(), ft.leaf(0, 0), ft.leaf(0, 1))
            .is_err());
        assert!(p.nodes(ft.topology()).is_empty());
    }

    #[test]
    fn sharing_detection() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let a = Path::new(vec![ft.leaf_up_channel(0, 0), ft.up_channel(0, 1)]);
        let b = Path::new(vec![ft.leaf_up_channel(0, 1), ft.up_channel(0, 1)]);
        let c = Path::new(vec![ft.leaf_up_channel(0, 1), ft.up_channel(0, 0)]);
        assert!(a.shares_channel_with(&b));
        assert!(!a.shares_channel_with(&c));
        assert!(!Path::empty().shares_channel_with(&a));
    }
}
