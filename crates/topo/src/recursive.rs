//! The paper's Discussion-section recursive construction: a three-level
//! nonblocking folded-Clos network built entirely from `(n+n²)`-port
//! switches.
//!
//! Logically the network is `ftree(n+n², n³+n²)` — `r = n³+n²` bottom
//! switches under `m = n²` *logical* top switches of radix `n³+n²`. Each
//! logical top switch is physically realized by a nonblocking
//! `ftree(n+n², n²+n)`, whose `(n²+n)·n = n³+n²` leaf-side ports are cabled
//! to the bottom switches' uplinks.

use crate::builder::TopologyBuilder;
use crate::compact::{build_paired_csr, Cable};
use crate::error::TopoError;
use crate::ids::{ChannelId, NodeId};
use crate::kind::NodeKind;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Physical three-level recursive nonblocking network for parameter `n`.
///
/// All switches have radix `n + n² = n² + n`. Structure:
/// * `n⁴ + n³` leaves, `n` per bottom switch;
/// * `n³ + n²` bottom switches (level 1), each with `n²` uplinks — uplink
///   `g` goes to logical top `g`;
/// * per logical top `g ∈ 0..n²`: `n² + n` *inner bottom* switches
///   (level 2) and `n²` *inner top* switches (level 3) forming
///   `ftree(n+n², n²+n)`; bottom switch `v`'s uplink enters inner bottom
///   `v / n` at its down-port `v mod n`.
///
/// The measured switch count is `2n⁴ + 2n³ + n²` (the paper's prose says
/// `2n⁴ + 3n³ + n²`; see `EXPERIMENTS.md` E10 for the accounting — the
/// `n³` difference is an arithmetic slip in the paper: `r + n²·(2n²+n)`
/// expands to `n³+n² + 2n⁴+n³`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecursiveNonblocking {
    n: usize,
    topo: Topology,
}

impl RecursiveNonblocking {
    /// Build the three-level network for `n >= 1`.
    pub fn new(n: usize) -> Result<Self, TopoError> {
        if n == 0 {
            return Err(TopoError::InvalidParameter {
                name: "n",
                value: 0,
                requirement: "must be >= 1",
            });
        }
        let n2 = n * n;
        let r = n2 * n + n2; // n^3 + n^2 bottom switches
        let inner_r = n2 + n; // bottoms per inner ftree
        let leaves = (r as u128) * (n as u128);
        let nodes = leaves + r as u128 + (n2 as u128) * (inner_r as u128 + n2 as u128);
        let cables = leaves // leaf cables
            + (r as u128) * (n2 as u128) // bottom -> logical top
            + (n2 as u128) * (inner_r as u128) * (n2 as u128); // inner bottom -> inner top
        TopologyBuilder::check_size(nodes, 2 * cables)?;

        let leaves = leaves as usize;
        let mut kinds = Vec::with_capacity(nodes as usize);
        kinds.resize(leaves, NodeKind::Leaf);
        kinds.resize(leaves + r, NodeKind::Switch { level: 1 });
        kinds.resize(leaves + r + n2 * inner_r, NodeKind::Switch { level: 2 });
        kinds.resize(
            leaves + r + n2 * inner_r + n2 * n2,
            NodeKind::Switch { level: 3 },
        );

        // Cable blocks mirror the historical connect order exactly so the
        // closed-form `*_channel` ids stay valid:
        //   A. leaf cables in (v, k) order;
        //   B. bottom uplinks in (v, g) order — bottom v's uplink g enters
        //      inner fabric g at inner-leaf-port v, i.e. inner bottom v/n,
        //      down-port v%n, and bottom up-ports are n..n+n²;
        //   C. inner tiers in (g, ib, t) order — inner bottom up-ports are
        //      n..n+n², inner top (g, t)'s port to inner bottom ib is ib.
        let block_b = leaves; // first uplink cable
        let block_c = leaves + r * n2; // first inner-tier cable
        let total_cables = block_c + n2 * inner_r * n2;
        let ib_first = leaves + r; // first inner-bottom node id
        let it_first = leaves + r + n2 * inner_r; // first inner-top node id
        let topo = build_paired_csr(
            kinds,
            |x| {
                if x < leaves {
                    1
                } else if x < it_first {
                    n + n2 // bottoms and inner bottoms: uniform radix
                } else {
                    inner_r // inner tops
                }
            },
            total_cables,
            |l| {
                if l < block_b {
                    Cable {
                        a: l as u32,
                        b: (leaves + l / n) as u32,
                        port_a: 0,
                        port_b: (l % n) as u32,
                    }
                } else if l < block_c {
                    let (v, g) = ((l - block_b) / n2, (l - block_b) % n2);
                    Cable {
                        a: (leaves + v) as u32,
                        b: (ib_first + g * inner_r + v / n) as u32,
                        port_a: (n + g) as u32,
                        port_b: (v % n) as u32,
                    }
                } else {
                    let l3 = l - block_c;
                    let (g, rem) = (l3 / (inner_r * n2), l3 % (inner_r * n2));
                    let (ib, t) = (rem / n2, rem % n2);
                    Cable {
                        a: (ib_first + g * inner_r + ib) as u32,
                        b: (it_first + g * n2 + t) as u32,
                        port_a: (n + t) as u32,
                        port_b: ib as u32,
                    }
                }
            },
        )?;
        Ok(Self { n, topo })
    }

    /// The construction parameter.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of bottom switches, `n³ + n²` (the logical `r`).
    #[inline]
    pub fn r(&self) -> usize {
        self.n * self.n * self.n + self.n * self.n
    }

    /// Number of logical top switches, `n²` (the logical `m`).
    #[inline]
    pub fn logical_tops(&self) -> usize {
        self.n * self.n
    }

    /// Bottoms per inner fabric, `n² + n`.
    #[inline]
    pub fn inner_r(&self) -> usize {
        self.n * self.n + self.n
    }

    /// Number of leaves, `n⁴ + n³` — the nonblocking port count.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.r() * self.n
    }

    /// Total physical switches: `2n⁴ + 2n³ + n²`.
    pub fn num_switches(&self) -> usize {
        self.r() + self.logical_tops() * (self.inner_r() + self.n * self.n)
    }

    /// Switch radix used throughout: `n + n²`.
    #[inline]
    pub fn switch_radix(&self) -> usize {
        self.n + self.n * self.n
    }

    /// Underlying flat topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Leaf `(v, k)` — `k`-th node of bottom switch `v`.
    #[inline]
    pub fn leaf(&self, v: usize, k: usize) -> NodeId {
        debug_assert!(v < self.r() && k < self.n);
        NodeId((v * self.n + k) as u32)
    }

    /// `(v, k)` coordinates of a leaf node id.
    #[inline]
    pub fn leaf_coords(&self, id: NodeId) -> Option<(usize, usize)> {
        let idx = id.index();
        (idx < self.num_leaves()).then(|| (idx / self.n, idx % self.n))
    }

    /// Bottom switch `v`.
    #[inline]
    pub fn bottom(&self, v: usize) -> NodeId {
        debug_assert!(v < self.r());
        NodeId((self.num_leaves() + v) as u32)
    }

    /// Inner bottom switch `ib` of logical top `g`.
    #[inline]
    pub fn inner_bottom(&self, g: usize, ib: usize) -> NodeId {
        debug_assert!(g < self.logical_tops() && ib < self.inner_r());
        NodeId((self.num_leaves() + self.r() + g * self.inner_r() + ib) as u32)
    }

    /// Inner top switch `t` of logical top `g`.
    #[inline]
    pub fn inner_top(&self, g: usize, t: usize) -> NodeId {
        let n2 = self.n * self.n;
        debug_assert!(g < n2 && t < n2);
        NodeId((self.num_leaves() + self.r() + n2 * self.inner_r() + g * n2 + t) as u32)
    }

    /// Uplink channel leaf `(v, k)` → bottom `v`.
    #[inline]
    pub fn leaf_up_channel(&self, v: usize, k: usize) -> ChannelId {
        ChannelId((2 * (v * self.n + k)) as u32)
    }

    /// Downlink channel bottom `v` → leaf `(v, k)`.
    #[inline]
    pub fn leaf_down_channel(&self, v: usize, k: usize) -> ChannelId {
        ChannelId((2 * (v * self.n + k) + 1) as u32)
    }

    /// Uplink channel bottom `v` → inner bottom of logical top `g`.
    #[inline]
    pub fn up1_channel(&self, v: usize, g: usize) -> ChannelId {
        let n2 = self.n * self.n;
        debug_assert!(v < self.r() && g < n2);
        ChannelId((2 * self.num_leaves() + 2 * (v * n2 + g)) as u32)
    }

    /// Downlink channel (inner bottom of logical top `g`) → bottom `v`.
    #[inline]
    pub fn down1_channel(&self, g: usize, v: usize) -> ChannelId {
        ChannelId(self.up1_channel(v, g).0 + 1)
    }

    /// Uplink channel inner bottom `(g, ib)` → inner top `(g, t)`.
    #[inline]
    pub fn up2_channel(&self, g: usize, ib: usize, t: usize) -> ChannelId {
        let n2 = self.n * self.n;
        debug_assert!(g < n2 && ib < self.inner_r() && t < n2);
        let base = 2 * self.num_leaves() + 2 * self.r() * n2;
        ChannelId((base + 2 * ((g * self.inner_r() + ib) * n2 + t)) as u32)
    }

    /// Downlink channel inner top `(g, t)` → inner bottom `(g, ib)`.
    #[inline]
    pub fn down2_channel(&self, g: usize, t: usize, ib: usize) -> ChannelId {
        ChannelId(self.up2_channel(g, ib, t).0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero() {
        assert!(RecursiveNonblocking::new(0).is_err());
    }

    #[test]
    fn counts_match_formulas() {
        for n in 1..=3usize {
            let net = RecursiveNonblocking::new(n).unwrap();
            assert_eq!(net.num_leaves(), n.pow(4) + n.pow(3), "ports for n={n}");
            assert_eq!(
                net.num_switches(),
                2 * n.pow(4) + 2 * n.pow(3) + n.pow(2),
                "switches for n={n}"
            );
            net.topology().audit().unwrap();
        }
    }

    #[test]
    fn uniform_switch_radix() {
        let net = RecursiveNonblocking::new(2).unwrap();
        let radix = net.switch_radix();
        assert_eq!(radix, 6);
        let t = net.topology();
        for v in 0..net.r() {
            assert_eq!(t.radix(net.bottom(v)), radix, "bottom {v}");
        }
        for g in 0..net.logical_tops() {
            for ib in 0..net.inner_r() {
                assert_eq!(t.radix(net.inner_bottom(g, ib)), radix);
            }
            for tt in 0..net.n() * net.n() {
                assert_eq!(t.radix(net.inner_top(g, tt)), radix);
            }
        }
    }

    #[test]
    fn channel_formulas_match_adjacency() {
        let net = RecursiveNonblocking::new(2).unwrap();
        let t = net.topology();
        let n2 = 4;
        for v in 0..net.r() {
            for g in 0..n2 {
                let up = net.up1_channel(v, g);
                assert_eq!(t.channel(up).src, net.bottom(v));
                assert_eq!(t.channel(up).dst, net.inner_bottom(g, v / 2));
                assert_eq!(t.reverse(up), Some(net.down1_channel(g, v)));
            }
        }
        for g in 0..n2 {
            for ib in 0..net.inner_r() {
                for tt in 0..n2 {
                    let up = net.up2_channel(g, ib, tt);
                    assert_eq!(t.channel(up).src, net.inner_bottom(g, ib));
                    assert_eq!(t.channel(up).dst, net.inner_top(g, tt));
                    assert_eq!(t.reverse(up), Some(net.down2_channel(g, tt, ib)));
                }
            }
        }
    }

    #[test]
    fn inner_fabric_is_a_leaf_port_per_bottom_uplink() {
        // Each inner bottom has exactly n down-cables from bottoms, and they
        // come from consecutive bottoms b*n..(b+1)*n.
        let net = RecursiveNonblocking::new(2).unwrap();
        let t = net.topology();
        for g in 0..4 {
            for ib in 0..net.inner_r() {
                let node = net.inner_bottom(g, ib);
                let from_bottoms: Vec<_> = t
                    .in_channels(node)
                    .iter()
                    .map(|&c| t.channel(c).src)
                    .filter(|&s| t.kind(s).level() == Some(1))
                    .collect();
                assert_eq!(from_bottoms.len(), 2);
                assert_eq!(from_bottoms[0], net.bottom(ib * 2));
                assert_eq!(from_bottoms[1], net.bottom(ib * 2 + 1));
            }
        }
    }

    #[test]
    fn leaves_connected_across_fabric() {
        let net = RecursiveNonblocking::new(2).unwrap();
        let d = net.topology().bfs_distances(net.leaf(0, 0));
        // Farthest leaf: up 3 levels, down 3 levels.
        let far = net.leaf(net.r() - 1, 1);
        assert_eq!(d[far.index()], 6);
    }
}
