//! The flat topology representation shared by all network families.

use crate::channel::Channel;
use crate::error::TopoError;
use crate::ids::{ChannelId, NodeId};
use crate::kind::NodeKind;
use serde::{Deserialize, Serialize};

/// How reverse channels are represented.
///
/// The closed-form family builders lay out every bidirectional cable `l` as
/// the adjacent channel pair `2l` / `2l + 1`, so the reverse map is the
/// constant-time involution `c ^ 1` and storing a table would waste
/// 4 bytes per channel (1.7 GB at recursive `n = 24`). Hand-built
/// topologies (crossbars, unidirectional Clos stages, test graphs) keep the
/// explicit table, which also encodes "no reverse" for unidirectional
/// channels.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum RevMap {
    /// Fully bidirectional fabric with cable directions at ids `2l`/`2l+1`:
    /// `rev(c) = c ^ 1`.
    Paired,
    /// Explicit per-channel table; [`ChannelId::INVALID`] marks
    /// unidirectional channels.
    Table(Vec<ChannelId>),
}

/// A directed multigraph of leaves and switches with CSR adjacency.
///
/// Construct through [`crate::TopologyBuilder`] or one of the family
/// builders ([`crate::Ftree`], [`crate::Clos`], [`crate::Xgft`], …).
///
/// Channels are directed; for bidirectional networks every channel has a
/// paired reverse channel retrievable with [`Topology::reverse`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) channels: Vec<Channel>,
    /// CSR row offsets into `out_chan`, indexed by node, length `nodes + 1`.
    pub(crate) out_first: Vec<u32>,
    /// Outgoing channels of each node, ordered by source port.
    pub(crate) out_chan: Vec<ChannelId>,
    /// CSR row offsets into `in_chan`, indexed by node, length `nodes + 1`.
    pub(crate) in_first: Vec<u32>,
    /// Incoming channels of each node, ordered by destination port.
    pub(crate) in_chan: Vec<ChannelId>,
    /// Reverse channel map (paired involution or explicit table).
    pub(crate) rev: RevMap,
}

impl Topology {
    /// Number of nodes (leaves plus switches).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of directed channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Kind of node `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// Checked variant of [`Topology::kind`].
    pub fn try_kind(&self, id: NodeId) -> Result<NodeKind, TopoError> {
        self.kinds
            .get(id.index())
            .copied()
            .ok_or(TopoError::NodeOutOfRange {
                node: id.index(),
                num_nodes: self.num_nodes(),
            })
    }

    /// The channel record for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range or the sentinel.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> Channel {
        self.channels[id.index()]
    }

    /// Directed channels leaving `node`, in source-port order.
    #[inline]
    pub fn out_channels(&self, node: NodeId) -> &[ChannelId] {
        let lo = self.out_first[node.index()] as usize;
        let hi = self.out_first[node.index() + 1] as usize;
        &self.out_chan[lo..hi]
    }

    /// Directed channels entering `node`, in destination-port order.
    #[inline]
    pub fn in_channels(&self, node: NodeId) -> &[ChannelId] {
        let lo = self.in_first[node.index()] as usize;
        let hi = self.in_first[node.index() + 1] as usize;
        &self.in_chan[lo..hi]
    }

    /// The paired reverse channel, if the link is bidirectional.
    #[inline]
    pub fn reverse(&self, ch: ChannelId) -> Option<ChannelId> {
        match &self.rev {
            RevMap::Paired => {
                debug_assert!(ch.index() < self.channels.len());
                Some(ChannelId(ch.0 ^ 1))
            }
            RevMap::Table(t) => {
                let r = t[ch.index()];
                r.is_valid().then_some(r)
            }
        }
    }

    /// Resident size of the topology's backing arrays, in bytes (excluding
    /// constant struct overhead). This is the figure the sparse-state work
    /// budgets against: at recursive `n = 24` the fabric itself is several
    /// GB while the simulator should stay `O(touched)`.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.kinds.len() * size_of::<NodeKind>()
            + self.channels.len() * size_of::<Channel>()
            + (self.out_first.len() + self.in_first.len()) * size_of::<u32>()
            + (self.out_chan.len() + self.in_chan.len()) * size_of::<ChannelId>()
            + match &self.rev {
                RevMap::Paired => 0,
                RevMap::Table(t) => t.len() * size_of::<ChannelId>(),
            }
    }

    /// Find the (first) channel from `src` to `dst`.
    pub fn channel_between(&self, src: NodeId, dst: NodeId) -> Result<ChannelId, TopoError> {
        self.out_channels(src)
            .iter()
            .copied()
            .find(|&c| self.channel(c).dst == dst)
            .ok_or(TopoError::NoChannel {
                src: src.index(),
                dst: dst.index(),
            })
    }

    /// All node ids, in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// All channel ids, in index order.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.channels.len() as u32).map(ChannelId)
    }

    /// All leaf node ids.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&id| self.kind(id).is_leaf())
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_leaf()).count()
    }

    /// All switches at a given level.
    pub fn switches_at_level(&self, level: u8) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |&id| self.kind(id).level() == Some(level))
    }

    /// Largest switch level present (0 if there are no switches).
    pub fn max_level(&self) -> u8 {
        self.kinds
            .iter()
            .filter_map(|k| k.level())
            .max()
            .unwrap_or(0)
    }

    /// Total port count (in + out, counting each bidirectional cable once
    /// per endpoint) of `node`. For switches this is the radix.
    pub fn radix(&self, node: NodeId) -> usize {
        // Bidirectional links contribute one port that appears in both the
        // in and out adjacency; count distinct cables.
        let out = self.out_channels(node).len();
        let ins = self.in_channels(node).len();
        let paired_out = self
            .out_channels(node)
            .iter()
            .filter(|&&c| self.reverse(c).is_some())
            .count();
        // Each bidirectional cable contributes one out channel and one in
        // channel that are the same physical port.
        out + ins - paired_out
    }

    /// Breadth-first distances (in hops) from `start` following directed
    /// channels. Unreachable nodes get `u32::MAX`.
    pub fn bfs_distances(&self, start: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for &c in self.out_channels(u) {
                let v = self.channel(c).dst;
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Validate internal invariants (CSR consistency, port density,
    /// reverse-pairing involution). Intended for tests and debug assertions.
    pub fn audit(&self) -> Result<(), String> {
        if self.out_first.len() != self.num_nodes() + 1 {
            return Err("out_first length mismatch".into());
        }
        if self.in_first.len() != self.num_nodes() + 1 {
            return Err("in_first length mismatch".into());
        }
        match &self.rev {
            RevMap::Table(t) => {
                if t.len() != self.num_channels() {
                    return Err("rev length mismatch".into());
                }
            }
            RevMap::Paired => {
                if !self.num_channels().is_multiple_of(2) {
                    return Err("paired rev map requires an even channel count".into());
                }
            }
        }
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.src.index() >= self.num_nodes() || ch.dst.index() >= self.num_nodes() {
                return Err(format!("channel {i} has endpoint out of range"));
            }
            if let Some(r) = self.reverse(ChannelId(i as u32)) {
                if r.index() >= self.num_channels() {
                    return Err(format!("channel {i} reverse out of range"));
                }
                let rc = self.channel(r);
                if rc.src != ch.dst || rc.dst != ch.src {
                    return Err(format!("channel {i} reverse endpoints mismatch"));
                }
                if self.reverse(r) != Some(ChannelId(i as u32)) {
                    return Err(format!(
                        "reverse pairing of channel {i} is not an involution"
                    ));
                }
            }
        }
        for node in self.node_ids() {
            for (slot, &c) in self.out_channels(node).iter().enumerate() {
                let ch = self.channel(c);
                if ch.src != node {
                    return Err(format!("out adjacency of {node} lists foreign channel"));
                }
                if ch.src_port as usize != slot {
                    return Err(format!("out ports of {node} not dense/ordered"));
                }
            }
            for (slot, &c) in self.in_channels(node).iter().enumerate() {
                let ch = self.channel(c);
                if ch.dst != node {
                    return Err(format!("in adjacency of {node} lists foreign channel"));
                }
                if ch.dst_port as usize != slot {
                    return Err(format!("in ports of {node} not dense/ordered"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::TopologyBuilder;
    use crate::ids::NodeId;
    use crate::kind::NodeKind;

    fn tiny() -> crate::Topology {
        // leaf(0) <-> switch(1) <-> leaf(2), plus a unidirectional 1 -> 0.
        let mut b = TopologyBuilder::new();
        let l0 = b.add_node(NodeKind::Leaf);
        let s = b.add_node(NodeKind::Switch { level: 1 });
        let l1 = b.add_node(NodeKind::Leaf);
        b.connect_bidir(l0, s);
        b.connect_bidir(s, l1);
        b.connect_uni(s, l0);
        b.finish()
    }

    #[test]
    fn counts_and_kinds() {
        let t = tiny();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_channels(), 5);
        assert_eq!(t.num_leaves(), 2);
        assert!(t.kind(NodeId(1)).is_switch());
        assert_eq!(t.max_level(), 1);
        t.audit().unwrap();
    }

    #[test]
    fn adjacency_and_reverse() {
        let t = tiny();
        let s = NodeId(1);
        assert_eq!(t.out_channels(s).len(), 3); // to l0 (bidir), to l1 (bidir), to l0 (uni)
        assert_eq!(t.in_channels(s).len(), 2);
        let up = t.channel_between(NodeId(0), s).unwrap();
        let down = t.reverse(up).unwrap();
        assert_eq!(t.channel(down).dst, NodeId(0));
        assert_eq!(t.reverse(down), Some(up));
    }

    #[test]
    fn channel_between_missing() {
        let t = tiny();
        assert!(t.channel_between(NodeId(0), NodeId(2)).is_err());
    }

    #[test]
    fn bfs() {
        let t = tiny();
        let d = t.bfs_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn radix_counts_cables() {
        let t = tiny();
        // switch: 2 bidirectional cables + 1 unidirectional out = 3 ports.
        assert_eq!(t.radix(NodeId(1)), 3);
        // leaf 0: 1 bidirectional cable + 1 unidirectional in = 2.
        assert_eq!(t.radix(NodeId(0)), 2);
    }

    #[test]
    fn try_kind_out_of_range() {
        let t = tiny();
        assert!(t.try_kind(NodeId(99)).is_err());
        assert!(t.try_kind(NodeId(2)).is_ok());
    }
}
