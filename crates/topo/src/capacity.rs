//! Per-channel capacities for fluid (rate-based) traffic models.
//!
//! The paper's fabrics are homogeneous — every channel is one link of unit
//! rate — but a rate allocator should not bake that in: oversubscribed
//! uplinks, trunked cables, and mixed-generation hardware are all just
//! per-channel capacity scalings. [`ChannelCapacities`] is the dense
//! channel-indexed capacity vector the fluid simulator allocates against.

use crate::ids::ChannelId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Dense per-channel capacity map (rate units; `1.0` = one link rate).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelCapacities {
    caps: Vec<f64>,
}

impl ChannelCapacities {
    /// Every channel of `topo` at the same capacity.
    ///
    /// Non-finite or negative capacities are clamped to `0.0` (a dead
    /// link), so the allocator never divides by a junk capacity.
    pub fn uniform(topo: &Topology, capacity: f64) -> Self {
        let capacity = if capacity.is_finite() && capacity > 0.0 {
            capacity
        } else {
            0.0
        };
        Self {
            caps: vec![capacity; topo.num_channels()],
        }
    }

    /// Unit capacity everywhere — the paper's homogeneous fabric.
    pub fn unit(topo: &Topology) -> Self {
        Self::uniform(topo, 1.0)
    }

    /// A map over `num_channels` dense channel ids without a topology in
    /// hand, every channel at `capacity` (clamped as in
    /// [`ChannelCapacities::uniform`]). Useful for solvers that receive
    /// only a channel count.
    pub fn dense_uniform(num_channels: usize, capacity: f64) -> Self {
        let capacity = if capacity.is_finite() && capacity > 0.0 {
            capacity
        } else {
            0.0
        };
        Self {
            caps: vec![capacity; num_channels],
        }
    }

    /// Capacity of one channel.
    ///
    /// # Panics
    /// Debug-panics if `c` is out of range (release indexing panics too).
    #[inline]
    pub fn get(&self, c: ChannelId) -> f64 {
        self.caps[c.index()]
    }

    /// Override one channel's capacity (clamped as in
    /// [`ChannelCapacities::uniform`]). Out-of-range ids are ignored.
    pub fn set(&mut self, c: ChannelId, capacity: f64) {
        if let Some(slot) = self.caps.get_mut(c.index()) {
            *slot = if capacity.is_finite() && capacity > 0.0 {
                capacity
            } else {
                0.0
            };
        }
    }

    /// Number of channels covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True when the map covers no channels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// The raw capacity slice, channel-id indexed.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::Ftree;

    #[test]
    fn uniform_covers_every_channel() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let caps = ChannelCapacities::unit(ft.topology());
        assert_eq!(caps.len(), ft.topology().num_channels());
        assert!(!caps.is_empty());
        assert_eq!(caps.get(ft.up_channel(0, 1)), 1.0);
    }

    #[test]
    fn set_and_clamp() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let mut caps = ChannelCapacities::uniform(ft.topology(), 2.5);
        assert_eq!(caps.get(ft.leaf_up_channel(0, 0)), 2.5);
        caps.set(ft.leaf_up_channel(0, 0), 0.5);
        assert_eq!(caps.get(ft.leaf_up_channel(0, 0)), 0.5);
        caps.set(ft.leaf_up_channel(0, 1), -3.0);
        assert_eq!(caps.get(ft.leaf_up_channel(0, 1)), 0.0);
        caps.set(ft.leaf_up_channel(1, 0), f64::NAN);
        assert_eq!(caps.get(ft.leaf_up_channel(1, 0)), 0.0);
        // Out-of-range set is a no-op, and junk uniform clamps to dead.
        caps.set(ChannelId(u32::MAX), 1.0);
        assert_eq!(
            ChannelCapacities::uniform(ft.topology(), f64::INFINITY).get(ChannelId(0)),
            0.0
        );
    }
}
