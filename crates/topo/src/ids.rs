//! Strongly-typed identifiers for topology elements.
//!
//! Indices are `u32` internally (networks in this domain have far fewer than
//! 2³² elements) to keep hot structures small, per the HPC sizing guidance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (leaf or switch) in a [`crate::Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a **directed** channel in a [`crate::Topology`].
///
/// A physical bidirectional cable is represented by two channels with
/// opposite directions; see [`crate::Topology::reverse`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl NodeId {
    /// The index as a `usize`, for container addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ChannelId {
    /// Sentinel value used for "no channel" slots in dense tables.
    pub const INVALID: ChannelId = ChannelId(u32::MAX);

    /// The index as a `usize`, for container addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this is the [`ChannelId::INVALID`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "c{}", self.0)
        } else {
            write!(f, "c<invalid>")
        }
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for ChannelId {
    fn from(v: u32) -> Self {
        ChannelId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn channel_id_sentinel() {
        assert!(!ChannelId::INVALID.is_valid());
        assert!(ChannelId(0).is_valid());
        assert_eq!(format!("{:?}", ChannelId::INVALID), "c<invalid>");
        assert_eq!(format!("{}", ChannelId(7)), "c7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ChannelId(3) < ChannelId::INVALID);
    }
}
