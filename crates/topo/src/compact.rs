//! Direct CSR construction for fully bidirectional, closed-form families.
//!
//! [`crate::TopologyBuilder`] is cable-by-cable: every `connect_bidir` does
//! four bounds-checked pushes plus two per-node port-counter updates, and
//! `finish()` re-derives the adjacency with a counting sort over all
//! channels. That is fine for crossbars and hand-built test graphs, but at
//! recursive `n = 24` (415M directed channels) the intermediate churn and
//! the explicit reverse table dominate build time and memory.
//!
//! The regular families (`ftree`, XGFT, the recursive construction) need
//! none of that machinery: every link is a bidirectional cable, and both
//! the cable list and each node's port count are closed-form functions of
//! the family parameters. [`build_paired_csr`] exploits this:
//!
//! * cable `l` becomes channels `2l` (`a → b`) and `2l + 1` (`b → a`), so
//!   the reverse map is `rev(c) = c ^ 1` ([`RevMap::Paired`]) and no
//!   reverse table is stored;
//! * because each cable contributes one **out** and one **in** port at each
//!   endpoint, the out- and in-CSR share one offset array, and the in
//!   adjacency at any `(node, port)` slot is the opposite direction of the
//!   out adjacency at the same slot: `in_chan[i] = out_chan[i] ^ 1`;
//! * the channel-record fill is embarrassingly parallel over disjoint
//!   cable chunks (rayon `par_chunks_mut`), with no intermediate
//!   `Vec<Channel>` staging or per-channel counter updates.

use crate::channel::Channel;
use crate::error::TopoError;
use crate::ids::{ChannelId, NodeId};
use crate::kind::NodeKind;
use crate::topology::{RevMap, Topology};
use rayon::prelude::*;

/// One physical cable: endpoints `a`/`b` and the dense port index each end
/// assigns to it. Channel `2l` runs `a → b` (src port `port_a`, dst port
/// `port_b`); channel `2l + 1` runs the reverse.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cable {
    /// First endpoint.
    pub a: u32,
    /// Second endpoint.
    pub b: u32,
    /// Port of the cable on `a` (also `a`'s in-port for the reverse channel).
    pub port_a: u32,
    /// Port of the cable on `b`.
    pub port_b: u32,
}

/// Cables per parallel fill chunk (channel chunks are twice this).
const CABLE_CHUNK: usize = 1 << 16;

/// Build a [`Topology`] directly in CSR form from a closed-form cable list.
///
/// `degree(x)` must be the exact port count of node `x` (== its out-degree
/// == its in-degree), and `cable(l)` for `l < num_cables` must enumerate
/// every cable with dense per-node ports: for each node `x`, the multiset
/// `{port on x of every cable touching x}` must be exactly `0..degree(x)`.
/// Violations are caught by the `debug_assert` audit (tests) rather than at
/// runtime in release builds — callers are the closed-form family builders
/// whose layouts are pinned by unit tests.
pub(crate) fn build_paired_csr(
    kinds: Vec<NodeKind>,
    degree: impl Fn(usize) -> usize,
    num_cables: usize,
    cable: impl Fn(usize) -> Cable + Sync,
) -> Result<Topology, TopoError> {
    let n = kinds.len();
    let num_channels = 2 * num_cables;

    // Shared out/in CSR offsets from the closed-form degrees. Ports are u16
    // in the channel record, so a radix beyond 65536 cannot be represented.
    let mut first = Vec::with_capacity(n + 1);
    first.push(0u32);
    let mut acc: u64 = 0;
    for x in 0..n {
        let d = degree(x);
        if d > u16::MAX as usize + 1 {
            return Err(TopoError::TooLarge {
                what: "radix",
                size: d as u128,
            });
        }
        acc += d as u64;
        first.push(acc as u32);
    }
    debug_assert_eq!(acc, num_channels as u64, "degrees must sum to channels");

    // Channel records, filled in parallel over disjoint cable chunks.
    let mut channels = vec![
        Channel {
            src: NodeId(0),
            dst: NodeId(0),
            src_port: 0,
            dst_port: 0,
        };
        num_channels
    ];
    channels
        .par_chunks_mut(2 * CABLE_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let base = ci * CABLE_CHUNK;
            for (j, pair) in chunk.chunks_exact_mut(2).enumerate() {
                let c = cable(base + j);
                pair[0] = Channel {
                    src: NodeId(c.a),
                    dst: NodeId(c.b),
                    src_port: c.port_a as u16,
                    dst_port: c.port_b as u16,
                };
                pair[1] = Channel {
                    src: NodeId(c.b),
                    dst: NodeId(c.a),
                    src_port: c.port_b as u16,
                    dst_port: c.port_a as u16,
                };
            }
        });

    // Out adjacency by scatter (each (node, port) slot is hit exactly once
    // when the degree/cable contract holds); the in adjacency at a slot is
    // the reverse direction of the same cable.
    let mut out_chan = vec![ChannelId::INVALID; num_channels];
    for (i, ch) in channels.iter().enumerate() {
        out_chan[first[ch.src.index()] as usize + ch.src_port as usize] = ChannelId(i as u32);
    }
    let in_chan: Vec<ChannelId> = out_chan.par_iter().map(|c| ChannelId(c.0 ^ 1)).collect();
    debug_assert!(out_chan.iter().all(|c| c.is_valid()));

    let topo = Topology {
        kinds,
        channels,
        out_first: first.clone(),
        out_chan,
        in_first: first,
        in_chan,
        rev: RevMap::Paired,
    };
    debug_assert_eq!(topo.audit(), Ok(()));
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-cable graph: leaf 0 <-> switch 1.
    #[test]
    fn single_cable() {
        let kinds = vec![NodeKind::Leaf, NodeKind::Switch { level: 1 }];
        let t = build_paired_csr(
            kinds,
            |_| 1,
            1,
            |_| Cable {
                a: 0,
                b: 1,
                port_a: 0,
                port_b: 0,
            },
        )
        .unwrap();
        assert_eq!(t.num_channels(), 2);
        assert_eq!(t.reverse(ChannelId(0)), Some(ChannelId(1)));
        assert_eq!(t.reverse(ChannelId(1)), Some(ChannelId(0)));
        assert_eq!(t.channel(ChannelId(0)).src, NodeId(0));
        assert_eq!(t.channel(ChannelId(1)).src, NodeId(1));
        t.audit().unwrap();
    }

    /// Star: switch 0 with three leaves, ports in cable order.
    #[test]
    fn star_ports_dense() {
        let mut kinds = vec![NodeKind::Switch { level: 1 }];
        kinds.extend([NodeKind::Leaf; 3]);
        let t = build_paired_csr(
            kinds,
            |x| if x == 0 { 3 } else { 1 },
            3,
            |l| Cable {
                a: (l + 1) as u32,
                b: 0,
                port_a: 0,
                port_b: l as u32,
            },
        )
        .unwrap();
        t.audit().unwrap();
        assert_eq!(t.out_channels(NodeId(0)).len(), 3);
        for (slot, &c) in t.out_channels(NodeId(0)).iter().enumerate() {
            assert_eq!(t.channel(c).src_port as usize, slot);
        }
        // memory_bytes accounts every backing array but no rev table.
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn radix_guard() {
        let kinds = vec![NodeKind::Leaf; 2];
        let err = build_paired_csr(
            kinds,
            |_| (u16::MAX as usize) + 2,
            1,
            |_| Cable {
                a: 0,
                b: 1,
                port_a: 0,
                port_b: 0,
            },
        );
        assert!(matches!(
            err,
            Err(TopoError::TooLarge { what: "radix", .. })
        ));
    }
}
