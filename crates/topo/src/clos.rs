//! The classical unidirectional three-stage `Clos(n, m, r)` (paper Fig. 1 (a)).

use crate::builder::TopologyBuilder;
use crate::error::TopoError;
use crate::ids::NodeId;
use crate::kind::NodeKind;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// `Clos(n, m, r)`: `r` input-stage `n×m` switches, `m` middle-stage `r×r`
/// switches, `r` output-stage `m×n` switches; all links unidirectional.
///
/// The folded-Clos `ftree(n+m, r)` is the one-sided version of this network
/// (it merges each input switch with the corresponding output switch); see
/// [`Clos::folds_to`] for the structural correspondence test used by the
/// Fig. 1 reproduction.
///
/// Node-id layout: input terminals `0..r·n`, output terminals `r·n..2·r·n`,
/// input switches, middle switches, output switches (in that order).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Clos {
    n: usize,
    m: usize,
    r: usize,
    topo: Topology,
}

impl Clos {
    /// Build `Clos(n, m, r)`.
    pub fn new(n: usize, m: usize, r: usize) -> Result<Self, TopoError> {
        for (name, value) in [("n", n), ("m", m), ("r", r)] {
            if value == 0 {
                return Err(TopoError::InvalidParameter {
                    name,
                    value,
                    requirement: "must be >= 1",
                });
            }
        }
        let nodes = 2 * (r as u128) * (n as u128) + 2 * r as u128 + m as u128;
        let channels = 2 * (r as u128) * (n as u128) + 2 * (r as u128) * (m as u128);
        TopologyBuilder::check_size(nodes, channels)?;

        let mut b = TopologyBuilder::with_capacity(nodes as usize, channels as usize);
        b.add_nodes(NodeKind::Leaf, r * n); // input terminals
        b.add_nodes(NodeKind::Leaf, r * n); // output terminals
        b.add_nodes(NodeKind::Switch { level: 1 }, r); // input stage
        b.add_nodes(NodeKind::Switch { level: 2 }, m); // middle stage
        b.add_nodes(NodeKind::Switch { level: 3 }, r); // output stage

        let rn = r * n;
        let in_term = |v: usize, k: usize| NodeId((v * n + k) as u32);
        let out_term = |w: usize, k: usize| NodeId((rn + w * n + k) as u32);
        let in_sw = |v: usize| NodeId((2 * rn + v) as u32);
        let mid = |t: usize| NodeId((2 * rn + r + t) as u32);
        let out_sw = |w: usize| NodeId((2 * rn + r + m + w) as u32);

        for v in 0..r {
            for k in 0..n {
                b.connect_uni(in_term(v, k), in_sw(v));
            }
        }
        for v in 0..r {
            for t in 0..m {
                b.connect_uni(in_sw(v), mid(t));
            }
        }
        for t in 0..m {
            for w in 0..r {
                b.connect_uni(mid(t), out_sw(w));
            }
        }
        for w in 0..r {
            for k in 0..n {
                b.connect_uni(out_sw(w), out_term(w, k));
            }
        }
        Ok(Self {
            n,
            m,
            r,
            topo: b.finish(),
        })
    }

    /// Inputs per input switch.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of middle switches.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of input (and output) switches.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Underlying flat topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Input terminal `(v, k)`.
    #[inline]
    pub fn input_terminal(&self, v: usize, k: usize) -> NodeId {
        debug_assert!(v < self.r && k < self.n);
        NodeId((v * self.n + k) as u32)
    }

    /// Output terminal `(w, k)`.
    #[inline]
    pub fn output_terminal(&self, w: usize, k: usize) -> NodeId {
        debug_assert!(w < self.r && k < self.n);
        NodeId((self.r * self.n + w * self.n + k) as u32)
    }

    /// Input-stage switch `v`.
    #[inline]
    pub fn input_switch(&self, v: usize) -> NodeId {
        NodeId((2 * self.r * self.n + v) as u32)
    }

    /// Middle-stage switch `t`.
    #[inline]
    pub fn middle_switch(&self, t: usize) -> NodeId {
        NodeId((2 * self.r * self.n + self.r + t) as u32)
    }

    /// Output-stage switch `w`.
    #[inline]
    pub fn output_switch(&self, w: usize) -> NodeId {
        NodeId((2 * self.r * self.n + self.r + self.m + w) as u32)
    }

    /// Strict-sense nonblocking condition of Clos (1953): `m >= 2n - 1`
    /// (valid only under a centralized controller, per the paper's Section I).
    #[inline]
    pub fn clos_strict_nonblocking(&self) -> bool {
        self.m >= 2 * self.n - 1
    }

    /// Rearrangeably-nonblocking condition of Beneš (1962): `m >= n`
    /// (again centralized-controller only).
    #[inline]
    pub fn benes_rearrangeable(&self) -> bool {
        self.m >= self.n
    }

    /// Check the "logical equivalence" of `Clos(n, m, r)` with
    /// `ftree(n+m, r)` claimed in the paper's introduction: same terminal
    /// count, same per-direction channel structure, and matching per-stage
    /// switch radix when input/output switches are merged.
    pub fn folds_to(&self, ft: &crate::Ftree) -> bool {
        ft.n() == self.n
            && ft.m() == self.m
            && ft.r() == self.r
            // Each directed Clos channel maps to one directed ftree channel.
            && self.topo.num_channels() == ft.topology().num_channels()
            // The merged input/output switch has radix n + m.
            && self.topo.radix(self.input_switch(0)) + self.topo.radix(self.output_switch(0))
                == 2 * (self.n + self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ftree;

    #[test]
    fn rejects_zero_parameters() {
        assert!(Clos::new(0, 1, 1).is_err());
        assert!(Clos::new(1, 0, 1).is_err());
        assert!(Clos::new(1, 1, 0).is_err());
    }

    #[test]
    fn structure_counts() {
        let c = Clos::new(2, 3, 4).unwrap();
        let t = c.topology();
        assert_eq!(t.num_nodes(), 2 * 8 + 4 + 3 + 4);
        // rn + rm + mr + rn unidirectional channels.
        assert_eq!(t.num_channels(), 8 + 12 + 12 + 8);
        t.audit().unwrap();
    }

    #[test]
    fn stage_radices() {
        let c = Clos::new(2, 3, 4).unwrap();
        let t = c.topology();
        assert_eq!(t.radix(c.input_switch(0)), 2 + 3); // n in + m out
        assert_eq!(t.radix(c.middle_switch(0)), 4 + 4); // r in + r out
        assert_eq!(t.radix(c.output_switch(0)), 3 + 2); // m in + n out
    }

    #[test]
    fn all_channels_unidirectional() {
        let c = Clos::new(2, 2, 3).unwrap();
        let t = c.topology();
        for ch in t.channel_ids() {
            assert_eq!(t.reverse(ch), None);
        }
    }

    #[test]
    fn terminals_flow_forward_only() {
        let c = Clos::new(2, 2, 3).unwrap();
        let t = c.topology();
        let d = t.bfs_distances(c.input_terminal(0, 0));
        // Every output terminal reachable in exactly 4 hops.
        for w in 0..3 {
            for k in 0..2 {
                assert_eq!(d[c.output_terminal(w, k).index()], 4);
            }
        }
        // Input terminals other than the start are unreachable (no turn-around).
        assert_eq!(d[c.input_terminal(1, 0).index()], u32::MAX);
    }

    #[test]
    fn nonblocking_conditions() {
        assert!(Clos::new(2, 3, 4).unwrap().clos_strict_nonblocking()); // m=3 = 2n-1
        assert!(!Clos::new(3, 4, 4).unwrap().clos_strict_nonblocking()); // m=4 < 5
        assert!(Clos::new(3, 3, 4).unwrap().benes_rearrangeable());
        assert!(!Clos::new(3, 2, 4).unwrap().benes_rearrangeable());
    }

    #[test]
    fn folds_to_equivalent_ftree() {
        let c = Clos::new(2, 4, 5).unwrap();
        let ft = Ftree::new(2, 4, 5).unwrap();
        assert!(c.folds_to(&ft));
        let other = Ftree::new(2, 4, 6).unwrap();
        assert!(!c.folds_to(&other));
    }
}
