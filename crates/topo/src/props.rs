//! Structural properties: bisection, diameter, and per-level census used by
//! the cost-model experiments.

use crate::ids::NodeId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Census of a topology: element counts and radix distribution per level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureReport {
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Switches per level, keyed by level.
    pub switches_per_level: BTreeMap<u8, usize>,
    /// Number of physical cables (bidirectional links counted once,
    /// unidirectional channels counted once each).
    pub cables: usize,
    /// Radix histogram over switches: radix → count.
    pub radix_histogram: BTreeMap<usize, usize>,
}

impl StructureReport {
    /// Build the census for `topo`.
    pub fn new(topo: &Topology) -> Self {
        let mut switches_per_level = BTreeMap::new();
        let mut radix_histogram = BTreeMap::new();
        let mut leaves = 0usize;
        for id in topo.node_ids() {
            match topo.kind(id).level() {
                None => leaves += 1,
                Some(l) => {
                    *switches_per_level.entry(l).or_insert(0) += 1;
                    *radix_histogram.entry(topo.radix(id)).or_insert(0) += 1;
                }
            }
        }
        let mut cables = 0usize;
        for c in topo.channel_ids() {
            match topo.reverse(c) {
                Some(rev) if rev.0 < c.0 => {} // counted at the lower id
                _ => cables += 1,
            }
        }
        Self {
            leaves,
            switches_per_level,
            cables,
            radix_histogram,
        }
    }

    /// Total switch count across levels.
    pub fn total_switches(&self) -> usize {
        self.switches_per_level.values().sum()
    }

    /// Maximum switch radix (`0` if there are no switches).
    pub fn max_radix(&self) -> usize {
        self.radix_histogram.keys().copied().max().unwrap_or(0)
    }
}

/// Number of directed channels crossing the leaf-index bisection: leaves are
/// split into low/high halves by index and we count channels whose removal
/// separates switches serving mostly-low from mostly-high leaves.
///
/// For a two-level `ftree(n+m, r)` this evaluates the classical full
/// bisection: `m * r / 2` cables cross when bottoms are split in half, so
/// full bisection bandwidth relative to `r·n/2` leaves needs `m >= n`.
/// We compute it structurally: assign each switch the side holding the
/// majority of its descendant leaves and count cut channels one way.
pub fn bisection_channels(topo: &Topology) -> usize {
    let leaves: Vec<NodeId> = topo.leaves().collect();
    if leaves.len() < 2 {
        return 0;
    }
    let half = leaves.len() / 2;
    // side[node] in {0, 1}: leaves by index halves; switches by majority of
    // leaf descendants (computed via BFS from each leaf, counting reachable
    // switches — in fat trees every switch reachable on the up-path serves
    // that leaf).
    let mut low_count = vec![0usize; topo.num_nodes()];
    let mut high_count = vec![0usize; topo.num_nodes()];
    for (i, &leaf) in leaves.iter().enumerate() {
        let dist = topo.bfs_distances(leaf);
        for id in topo.node_ids() {
            if topo.kind(id).is_switch() && dist[id.index()] != u32::MAX {
                if i < half {
                    low_count[id.index()] += 1;
                } else {
                    high_count[id.index()] += 1;
                }
            }
        }
    }
    // Leaf node id -> position among leaves (usize::MAX for non-leaves),
    // so `side` never has to unwrap a linear search.
    let mut leaf_pos = vec![usize::MAX; topo.num_nodes()];
    for (i, &leaf) in leaves.iter().enumerate() {
        leaf_pos[leaf.index()] = i;
    }
    let side = |id: NodeId| -> usize {
        if topo.kind(id).is_leaf() {
            usize::from(leaf_pos[id.index()] != usize::MAX && leaf_pos[id.index()] >= half)
        } else {
            usize::from(high_count[id.index()] > low_count[id.index()])
        }
    };
    topo.channel_ids()
        .filter(|&c| {
            let ch = topo.channel(c);
            side(ch.src) == 0 && side(ch.dst) == 1
        })
        .count()
}

/// Diameter in hops over leaves (longest shortest leaf-to-leaf path), or
/// `None` if some leaf pair is disconnected.
pub fn diameter(topo: &Topology) -> Option<u32> {
    let leaves: Vec<NodeId> = topo.leaves().collect();
    let mut best = 0;
    for &s in &leaves {
        let dist = topo.bfs_distances(s);
        for &d in &leaves {
            if s == d {
                continue;
            }
            let x = dist[d.index()];
            if x == u32::MAX {
                return None;
            }
            best = best.max(x);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{crossbar, kary_ntree, Ftree};

    #[test]
    fn census_of_ftree() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let rep = StructureReport::new(ft.topology());
        assert_eq!(rep.leaves, 10);
        assert_eq!(rep.switches_per_level[&1], 5);
        assert_eq!(rep.switches_per_level[&2], 4);
        assert_eq!(rep.total_switches(), 9);
        assert_eq!(rep.cables, 10 + 20);
        assert_eq!(rep.radix_histogram[&6], 5); // bottoms: n+m = 6 ports
        assert_eq!(rep.radix_histogram[&5], 4); // tops: r = 5 ports
        assert_eq!(rep.max_radix(), 6);
    }

    #[test]
    fn crossbar_diameter() {
        let xb = crossbar(6).unwrap();
        assert_eq!(diameter(xb.topology()), Some(2));
    }

    #[test]
    fn ftree_diameter() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        assert_eq!(diameter(ft.topology()), Some(4));
    }

    #[test]
    fn kary_diameter() {
        let t = kary_ntree(2, 3).unwrap();
        assert_eq!(diameter(t.topology()), Some(6));
    }

    #[test]
    fn bisection_of_balanced_ftree() {
        // ftree(2+2, 4): split bottoms 2/2; each of the 2 tops has 2 cables
        // to each side -> 2 tops * 2 cables... cut one way counts channels
        // from low side to high side: tops sit on one side, so cut = m *
        // (r/2) = 4 channels one way.
        let ft = Ftree::new(2, 2, 4).unwrap();
        let cut = bisection_channels(ft.topology());
        assert_eq!(cut, 4);
    }

    #[test]
    fn bisection_single_leaf_is_zero() {
        let xb = crossbar(1).unwrap();
        assert_eq!(bisection_channels(xb.topology()), 0);
    }
}
