//! The two-level folded-Clos network `ftree(n+m, r)` (paper Fig. 1 (b)).

use crate::builder::TopologyBuilder;
use crate::compact::{build_paired_csr, Cable};
use crate::error::TopoError;
use crate::ids::{ChannelId, NodeId};
use crate::kind::NodeKind;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// `ftree(n+m, r)`: `r` bottom-level `(n+m)`-port switches, `m` top-level
/// `r`-port switches, and `r·n` leaf nodes.
///
/// Numbering follows the paper (Section III):
/// * bottom switches `v ∈ 0..r`,
/// * top switches `t ∈ 0..m` — when `m = n²` the pair form `(i, j)` with
///   `t = i·n + j` is also available ([`Ftree::top_ij`]), as used by the
///   Theorem 3 routing,
/// * leaf `(v, k)` is the `k`-th node of bottom switch `v`, `k ∈ 0..n`.
///
/// Node-id layout (dense): leaves `0..r·n`, bottoms `r·n..r·n+r`, tops
/// `r·n+r..r·n+r+m`. Channel-id layout is closed-form so routing code can
/// compute channel ids without adjacency searches; see the `*_channel`
/// methods.
///
/// ```
/// use ftclos_topo::Ftree;
///
/// let ft = Ftree::new(3, 9, 7).unwrap(); // ftree(3+9, 7)
/// assert_eq!(ft.num_leaves(), 21);
/// assert_eq!(ft.topology().radix(ft.bottom(0)), 12); // (n+m)-port switch
/// assert_eq!(ft.topology().radix(ft.top(0)), 7);     // r-port switch
/// // Theorem 3 coordinates: top (i, j) is index i·n + j.
/// assert_eq!(ft.top_ij(1, 2), ft.top(5));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ftree {
    n: usize,
    m: usize,
    r: usize,
    topo: Topology,
}

impl Ftree {
    /// Build `ftree(n+m, r)`.
    ///
    /// # Errors
    /// All of `n`, `m`, `r` must be at least 1 and the resulting element
    /// counts must fit the `u32` index space.
    pub fn new(n: usize, m: usize, r: usize) -> Result<Self, TopoError> {
        for (name, value) in [("n", n), ("m", m), ("r", r)] {
            if value == 0 {
                return Err(TopoError::InvalidParameter {
                    name,
                    value,
                    requirement: "must be >= 1",
                });
            }
        }
        let nodes = (r as u128) * (n as u128) + r as u128 + m as u128;
        let channels = 2 * ((r as u128) * (n as u128) + (r as u128) * (m as u128));
        TopologyBuilder::check_size(nodes, channels)?;

        let mut kinds = Vec::with_capacity(nodes as usize);
        kinds.resize(r * n, NodeKind::Leaf);
        kinds.resize(r * n + r, NodeKind::Switch { level: 1 });
        kinds.resize(r * n + r + m, NodeKind::Switch { level: 2 });

        // Cable layout mirrors the historical connect order exactly, so the
        // closed-form `*_channel` ids below stay valid: leaf cables first
        // (bottom down-ports 0..n), then uplinks in (v, t) order (bottom
        // up-ports n..n+m; top switch t's port to bottom v is v).
        let leaf_cables = r * n;
        let topo = build_paired_csr(
            kinds,
            |x| {
                if x < r * n {
                    1
                } else if x < r * n + r {
                    n + m
                } else {
                    r
                }
            },
            leaf_cables + r * m,
            |l| {
                if l < leaf_cables {
                    Cable {
                        a: l as u32,
                        b: (r * n + l / n) as u32,
                        port_a: 0,
                        port_b: (l % n) as u32,
                    }
                } else {
                    let (v, t) = ((l - leaf_cables) / m, (l - leaf_cables) % m);
                    Cable {
                        a: (r * n + v) as u32,
                        b: (r * n + r + t) as u32,
                        port_a: (n + t) as u32,
                        port_b: v as u32,
                    }
                }
            },
        )?;
        Ok(Self { n, m, r, topo })
    }

    /// The Lemma 2 subgraph `ftree(n+1, r)` (paper Fig. 2): the same bottom
    /// layer with a single top-level switch.
    pub fn lemma2_subgraph(n: usize, r: usize) -> Result<Self, TopoError> {
        Self::new(n, 1, r)
    }

    /// Leaves per bottom switch (`n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of top-level switches (`m`).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of bottom-level switches (`r`).
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of leaf nodes (`r·n`), i.e. the port count of the fabric.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.r * self.n
    }

    /// Total switch count (`r + m`).
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.r + self.m
    }

    /// Underlying flat topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Consume into the flat topology.
    pub fn into_topology(self) -> Topology {
        self.topo
    }

    /// Node id of leaf `(v, k)`.
    ///
    /// # Panics
    /// Debug-panics if `v >= r` or `k >= n`.
    #[inline]
    pub fn leaf(&self, v: usize, k: usize) -> NodeId {
        debug_assert!(v < self.r && k < self.n);
        NodeId((v * self.n + k) as u32)
    }

    /// Node id of bottom switch `v`.
    #[inline]
    pub fn bottom(&self, v: usize) -> NodeId {
        debug_assert!(v < self.r);
        NodeId((self.r * self.n + v) as u32)
    }

    /// Node id of top switch `t`.
    #[inline]
    pub fn top(&self, t: usize) -> NodeId {
        debug_assert!(t < self.m);
        NodeId((self.r * self.n + self.r + t) as u32)
    }

    /// Checked variant of [`Ftree::leaf`]: out-of-range coordinates come
    /// back as a typed error instead of a (debug-only) panic, so callers
    /// that derive coordinates from external input — fault campaigns,
    /// CLI arguments — cannot silently produce a foreign node id in
    /// release builds.
    pub fn try_leaf(&self, v: usize, k: usize) -> Result<NodeId, TopoError> {
        if v >= self.r {
            return Err(TopoError::InvalidParameter {
                name: "v",
                value: v,
                requirement: "must be < r (bottom-switch index)",
            });
        }
        if k >= self.n {
            return Err(TopoError::InvalidParameter {
                name: "k",
                value: k,
                requirement: "must be < n (leaf index within its bottom)",
            });
        }
        Ok(NodeId((v * self.n + k) as u32))
    }

    /// Checked variant of [`Ftree::bottom`] (see [`Ftree::try_leaf`]).
    pub fn try_bottom(&self, v: usize) -> Result<NodeId, TopoError> {
        if v >= self.r {
            return Err(TopoError::InvalidParameter {
                name: "v",
                value: v,
                requirement: "must be < r (bottom-switch index)",
            });
        }
        Ok(NodeId((self.r * self.n + v) as u32))
    }

    /// Checked variant of [`Ftree::top`] (see [`Ftree::try_leaf`]).
    pub fn try_top(&self, t: usize) -> Result<NodeId, TopoError> {
        if t >= self.m {
            return Err(TopoError::InvalidParameter {
                name: "t",
                value: t,
                requirement: "must be < m (top-switch index)",
            });
        }
        Ok(NodeId((self.r * self.n + self.r + t) as u32))
    }

    /// Node id of top switch `(i, j)` under the Theorem 3 numbering
    /// (`t = i·n + j`); valid whenever `i·n + j < m`.
    #[inline]
    pub fn top_ij(&self, i: usize, j: usize) -> NodeId {
        debug_assert!(i < self.n && j < self.n);
        self.top(i * self.n + j)
    }

    /// `(v, k)` coordinates of a leaf node id.
    ///
    /// Returns `None` if `id` is not a leaf of this fabric.
    #[inline]
    pub fn leaf_coords(&self, id: NodeId) -> Option<(usize, usize)> {
        let idx = id.index();
        (idx < self.r * self.n).then(|| (idx / self.n, idx % self.n))
    }

    /// Bottom-switch index of a bottom node id, if it is one.
    #[inline]
    pub fn bottom_index(&self, id: NodeId) -> Option<usize> {
        let base = self.r * self.n;
        let idx = id.index();
        (idx >= base && idx < base + self.r).then(|| idx - base)
    }

    /// Top-switch index of a top node id, if it is one.
    #[inline]
    pub fn top_index(&self, id: NodeId) -> Option<usize> {
        let base = self.r * self.n + self.r;
        let idx = id.index();
        (idx >= base && idx < base + self.m).then(|| idx - base)
    }

    /// Bottom switch that hosts leaf node `id` (the paper's `SRC`/`DST`
    /// switch of an SD pair endpoint).
    #[inline]
    pub fn host_switch(&self, id: NodeId) -> Option<NodeId> {
        self.leaf_coords(id).map(|(v, _)| self.bottom(v))
    }

    /// Channel id of the uplink leaf `(v, k)` → bottom `v`.
    #[inline]
    pub fn leaf_up_channel(&self, v: usize, k: usize) -> ChannelId {
        debug_assert!(v < self.r && k < self.n);
        ChannelId((2 * (v * self.n + k)) as u32)
    }

    /// Channel id of the downlink bottom `v` → leaf `(v, k)`.
    #[inline]
    pub fn leaf_down_channel(&self, v: usize, k: usize) -> ChannelId {
        debug_assert!(v < self.r && k < self.n);
        ChannelId((2 * (v * self.n + k) + 1) as u32)
    }

    /// Channel id of the uplink bottom `v` → top `t`.
    #[inline]
    pub fn up_channel(&self, v: usize, t: usize) -> ChannelId {
        debug_assert!(v < self.r && t < self.m);
        ChannelId((2 * self.r * self.n + 2 * (v * self.m + t)) as u32)
    }

    /// Channel id of the downlink top `t` → bottom `v`.
    #[inline]
    pub fn down_channel(&self, t: usize, v: usize) -> ChannelId {
        debug_assert!(v < self.r && t < self.m);
        ChannelId((2 * self.r * self.n + 2 * (v * self.m + t) + 1) as u32)
    }

    /// True when the paper's "large top switches" regime `r >= 2n + 1`
    /// applies (Theorems 2-3 territory).
    #[inline]
    pub fn large_top_regime(&self) -> bool {
        self.r > 2 * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_accessors_reject_out_of_range() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        assert_eq!(ft.try_leaf(0, 1).unwrap(), ft.leaf(0, 1));
        assert_eq!(ft.try_bottom(4).unwrap(), ft.bottom(4));
        assert_eq!(ft.try_top(3).unwrap(), ft.top(3));
        assert!(ft.try_leaf(5, 0).is_err());
        assert!(ft.try_leaf(0, 2).is_err());
        assert!(ft.try_bottom(5).is_err());
        assert!(ft.try_top(4).is_err());
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(Ftree::new(0, 1, 1).is_err());
        assert!(Ftree::new(1, 0, 1).is_err());
        assert!(Ftree::new(1, 1, 0).is_err());
    }

    #[test]
    fn element_counts() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        assert_eq!(ft.num_leaves(), 10);
        assert_eq!(ft.num_switches(), 9);
        assert_eq!(ft.topology().num_nodes(), 19);
        // 10 leaf cables + 5*4 uplink cables, two channels each.
        assert_eq!(ft.topology().num_channels(), 2 * (10 + 20));
        ft.topology().audit().unwrap();
    }

    #[test]
    fn closed_form_channels_match_adjacency() {
        let ft = Ftree::new(3, 5, 4).unwrap();
        let t = ft.topology();
        for v in 0..4 {
            for k in 0..3 {
                let up = ft.leaf_up_channel(v, k);
                assert_eq!(t.channel(up).src, ft.leaf(v, k));
                assert_eq!(t.channel(up).dst, ft.bottom(v));
                let down = ft.leaf_down_channel(v, k);
                assert_eq!(t.channel(down).src, ft.bottom(v));
                assert_eq!(t.channel(down).dst, ft.leaf(v, k));
                assert_eq!(t.reverse(up), Some(down));
            }
            for tt in 0..5 {
                let up = ft.up_channel(v, tt);
                assert_eq!(t.channel(up).src, ft.bottom(v));
                assert_eq!(t.channel(up).dst, ft.top(tt));
                let down = ft.down_channel(tt, v);
                assert_eq!(t.channel(down).src, ft.top(tt));
                assert_eq!(t.channel(down).dst, ft.bottom(v));
                assert_eq!(t.reverse(up), Some(down));
            }
        }
    }

    #[test]
    fn switch_radices() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let t = ft.topology();
        for v in 0..5 {
            assert_eq!(
                t.radix(ft.bottom(v)),
                2 + 4,
                "bottom is an (n+m)-port switch"
            );
        }
        for tt in 0..4 {
            assert_eq!(t.radix(ft.top(tt)), 5, "top is an r-port switch");
        }
    }

    #[test]
    fn coordinates_roundtrip() {
        let ft = Ftree::new(3, 9, 7).unwrap();
        for v in 0..7 {
            for k in 0..3 {
                assert_eq!(ft.leaf_coords(ft.leaf(v, k)), Some((v, k)));
            }
            assert_eq!(ft.bottom_index(ft.bottom(v)), Some(v));
        }
        for t in 0..9 {
            assert_eq!(ft.top_index(ft.top(t)), Some(t));
        }
        assert_eq!(ft.leaf_coords(ft.bottom(0)), None);
        assert_eq!(ft.bottom_index(ft.leaf(0, 0)), None);
        assert_eq!(ft.top_index(ft.bottom(0)), None);
        assert_eq!(ft.host_switch(ft.leaf(4, 2)), Some(ft.bottom(4)));
        assert_eq!(ft.host_switch(ft.top(0)), None);
    }

    #[test]
    fn top_ij_numbering() {
        let ft = Ftree::new(3, 9, 7).unwrap();
        assert_eq!(ft.top_ij(0, 0), ft.top(0));
        assert_eq!(ft.top_ij(1, 2), ft.top(5));
        assert_eq!(ft.top_ij(2, 2), ft.top(8));
    }

    #[test]
    fn lemma2_subgraph_is_tree() {
        let sub = Ftree::lemma2_subgraph(2, 5).unwrap();
        assert_eq!(sub.m(), 1);
        assert_eq!(sub.topology().switches_at_level(2).count(), 1);
        // Root has r children.
        let root = sub.top(0);
        assert_eq!(sub.topology().out_channels(root).len(), 5);
    }

    #[test]
    fn large_top_regime_boundary() {
        assert!(!Ftree::new(2, 4, 4).unwrap().large_top_regime());
        assert!(Ftree::new(2, 4, 5).unwrap().large_top_regime());
    }

    #[test]
    fn leaf_reachability() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let d = ft.topology().bfs_distances(ft.leaf(0, 0));
        // Same-switch leaf at distance 2, cross-switch at 4.
        assert_eq!(d[ft.leaf(0, 1).index()], 2);
        assert_eq!(d[ft.leaf(2, 1).index()], 4);
        assert!(d.iter().all(|&x| x != u32::MAX), "fabric is connected");
    }
}
