//! # ftclos-topo — interconnect topology substrates
//!
//! Graph representations and builders for the network topologies used in
//! *"On Nonblocking Folded-Clos Networks in Computer Communication
//! Environments"* (Xin Yuan, IPDPS 2011) and its baselines:
//!
//! * [`Ftree`] — the two-level folded-Clos network `ftree(n+m, r)` that the
//!   paper analyzes (Fig. 1 (b)), with the paper's leaf/switch coordinate
//!   systems.
//! * [`Clos`] — the classical unidirectional three-stage `Clos(n, m, r)`
//!   (Fig. 1 (a)), logically equivalent to `ftree(n+m, r)`.
//! * [`Xgft`] — extended generalized fat trees `XGFT(h; m⃗; w⃗)` (Öhring et
//!   al.), the umbrella family containing every fat-tree variant below.
//! * [`kary_ntree`] — k-ary n-trees (Petrini & Vanneschi).
//! * [`mport_ntree`] — m-port n-trees `FT(m, h)` (Lin, Chung & Huang), the
//!   rearrangeably-nonblocking baseline of the paper's Table I.
//! * [`Crossbar`] — a single ideal crossbar switch (the performance target a
//!   nonblocking network must match).
//! * [`RecursiveNonblocking`] — the paper's Discussion-section three-level
//!   construction where every top-level switch of a nonblocking
//!   `ftree(n+n², n³+n²)` is realized by a nonblocking `ftree(n+n², n²+n)`.
//!
//! All topologies share the flat [`Topology`] representation: nodes are
//! leaves or switches, and every cable is modeled as **two directed
//! channels**, because the paper's Lemma 1 audits traffic per *direction*
//! (uplinks vs downlinks).
//!
//! ```
//! use ftclos_topo::Ftree;
//!
//! // ftree(2 + 4, 5): r = 5 bottom switches with n = 2 leaves each,
//! // m = 4 = n^2 top switches — the smallest nonblocking configuration
//! // with r >= 2n + 1.
//! let ft = Ftree::new(2, 4, 5).unwrap();
//! assert_eq!(ft.num_leaves(), 10);
//! assert_eq!(ft.topology().num_nodes(), 10 + 5 + 4);
//! ```

pub mod builder;
pub mod capacity;
pub mod channel;
pub mod clos;
pub(crate) mod compact;
pub mod crossbar;
pub mod dot;
pub mod error;
pub mod fault;
pub mod ftree;
pub mod ids;
pub mod kind;
pub mod props;
pub mod recursive;
pub mod topology;
pub mod xgft;

pub use builder::TopologyBuilder;
pub use capacity::ChannelCapacities;
pub use channel::Channel;
pub use clos::Clos;
pub use crossbar::{crossbar, Crossbar};
pub use error::TopoError;
pub use fault::{FaultError, FaultSet, FaultyView, Transition};
pub use ftree::Ftree;
pub use ids::{ChannelId, NodeId};
pub use kind::NodeKind;
pub use props::{bisection_channels, diameter, StructureReport};
pub use recursive::RecursiveNonblocking;
pub use topology::Topology;
pub use xgft::{kary_ntree, mport_ntree, Xgft};
