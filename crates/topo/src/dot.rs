//! Graphviz DOT export — the executable counterpart of the paper's Fig. 1
//! and Fig. 2 diagrams.

use crate::topology::Topology;
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name in the emitted `digraph`/`graph` header.
    pub name: String,
    /// Collapse reverse-paired channel pairs into a single undirected edge.
    pub merge_bidir: bool,
    /// Rank nodes by level (leaves at the bottom), like the paper's figures.
    pub rank_by_level: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            name: "topology".to_string(),
            merge_bidir: true,
            rank_by_level: true,
        }
    }
}

/// Render `topo` as a DOT document.
pub fn to_dot(topo: &Topology, opts: &DotOptions) -> String {
    let mut out = String::new();
    let edgeop = if opts.merge_bidir { "--" } else { "->" };
    let gkind = if opts.merge_bidir { "graph" } else { "digraph" };
    let _ = writeln!(out, "{gkind} \"{}\" {{", opts.name);
    let _ = writeln!(out, "  node [shape=box];");

    for id in topo.node_ids() {
        let kind = topo.kind(id);
        let (shape, label) = match kind.level() {
            None => ("ellipse", format!("leaf {}", id.0)),
            Some(l) => ("box", format!("sw L{l} {}", id.0)),
        };
        let _ = writeln!(out, "  n{} [shape={shape}, label=\"{label}\"];", id.0);
    }

    if opts.rank_by_level {
        let max = topo.max_level();
        let leaves: Vec<String> = topo.leaves().map(|id| format!("n{}", id.0)).collect();
        if !leaves.is_empty() {
            let _ = writeln!(out, "  {{ rank=max; {}; }}", leaves.join("; "));
        }
        for level in 1..=max {
            let nodes: Vec<String> = topo
                .switches_at_level(level)
                .map(|id| format!("n{}", id.0))
                .collect();
            if !nodes.is_empty() {
                let rank = if level == max { "min" } else { "same" };
                let _ = writeln!(out, "  {{ rank={rank}; {}; }}", nodes.join("; "));
            }
        }
    }

    for cid in topo.channel_ids() {
        let ch = topo.channel(cid);
        if opts.merge_bidir {
            if let Some(rev) = topo.reverse(cid) {
                // Emit each bidirectional cable once.
                if rev.0 < cid.0 {
                    continue;
                }
            }
        }
        let _ = writeln!(out, "  n{} {edgeop} n{};", ch.src.0, ch.dst.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clos, Ftree};

    #[test]
    fn ftree_dot_merges_cables() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let dot = to_dot(ft.topology(), &DotOptions::default());
        assert!(dot.starts_with("graph"));
        // One edge per cable: 6 leaf cables + 6 uplink cables.
        assert_eq!(dot.matches(" -- ").count(), 12);
        assert!(dot.contains("leaf 0"));
        assert!(dot.contains("sw L2"));
    }

    #[test]
    fn clos_dot_is_directed() {
        let c = Clos::new(2, 2, 2).unwrap();
        let opts = DotOptions {
            merge_bidir: false,
            ..DotOptions::default()
        };
        let dot = to_dot(c.topology(), &opts);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches(" -> ").count(), c.topology().num_channels());
    }

    #[test]
    fn rank_lines_present() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let dot = to_dot(ft.topology(), &DotOptions::default());
        assert!(dot.contains("rank=max"));
        assert!(dot.contains("rank=min"));
    }
}
