//! Incremental topology construction.

use crate::channel::Channel;
use crate::error::TopoError;
use crate::ids::{ChannelId, NodeId};
use crate::kind::NodeKind;
use crate::topology::{RevMap, Topology};

/// Builds a [`Topology`] node-by-node and cable-by-cable.
///
/// Ports are assigned densely in connection order on each node, matching how
/// real switches are cabled bottom-up. Family builders in this crate connect
/// down-ports before up-ports so that port indices are predictable:
/// on a bottom switch of `ftree(n+m, r)`, ports `0..n` face leaves and ports
/// `n..n+m` face top switches.
#[derive(Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    channels: Vec<Channel>,
    rev: Vec<ChannelId>,
    next_out_port: Vec<u16>,
    next_in_port: Vec<u16>,
}

impl TopologyBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, channels: usize) -> Self {
        Self {
            kinds: Vec::with_capacity(nodes),
            channels: Vec::with_capacity(channels),
            rev: Vec::with_capacity(channels),
            next_out_port: Vec::with_capacity(nodes),
            next_in_port: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.next_out_port.push(0);
        self.next_in_port.push(0);
        id
    }

    /// Add `count` nodes of the same kind; returns the first id (ids are
    /// contiguous).
    pub fn add_nodes(&mut self, kind: NodeKind, count: usize) -> NodeId {
        let first = NodeId(self.kinds.len() as u32);
        for _ in 0..count {
            self.add_node(kind);
        }
        first
    }

    fn push_channel(&mut self, src: NodeId, dst: NodeId) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        let src_port = self.next_out_port[src.index()];
        let dst_port = self.next_in_port[dst.index()];
        self.next_out_port[src.index()] += 1;
        self.next_in_port[dst.index()] += 1;
        self.channels.push(Channel {
            src,
            dst,
            src_port,
            dst_port,
        });
        self.rev.push(ChannelId::INVALID);
        id
    }

    /// Add a unidirectional channel `src -> dst`; returns its id.
    pub fn connect_uni(&mut self, src: NodeId, dst: NodeId) -> ChannelId {
        self.push_channel(src, dst)
    }

    /// Add a bidirectional cable between `a` and `b`; returns
    /// `(a_to_b, b_to_a)`, which are reverse-paired.
    pub fn connect_bidir(&mut self, a: NodeId, b: NodeId) -> (ChannelId, ChannelId) {
        let ab = self.push_channel(a, b);
        let ba = self.push_channel(b, a);
        self.rev[ab.index()] = ba;
        self.rev[ba.index()] = ab;
        (ab, ba)
    }

    /// Finalize into an immutable [`Topology`] with CSR adjacency.
    pub fn finish(self) -> Topology {
        let n = self.kinds.len();
        let mut out_first = vec![0u32; n + 1];
        let mut in_first = vec![0u32; n + 1];
        for ch in &self.channels {
            out_first[ch.src.index() + 1] += 1;
            in_first[ch.dst.index() + 1] += 1;
        }
        for i in 0..n {
            out_first[i + 1] += out_first[i];
            in_first[i + 1] += in_first[i];
        }
        let mut out_chan = vec![ChannelId::INVALID; self.channels.len()];
        let mut in_chan = vec![ChannelId::INVALID; self.channels.len()];
        for (i, ch) in self.channels.iter().enumerate() {
            let o = out_first[ch.src.index()] as usize + ch.src_port as usize;
            let ii = in_first[ch.dst.index()] as usize + ch.dst_port as usize;
            out_chan[o] = ChannelId(i as u32);
            in_chan[ii] = ChannelId(i as u32);
        }
        debug_assert!(out_chan.iter().all(|c| c.is_valid()));
        debug_assert!(in_chan.iter().all(|c| c.is_valid()));
        let topo = Topology {
            kinds: self.kinds,
            channels: self.channels,
            out_first,
            out_chan,
            in_first,
            in_chan,
            rev: RevMap::Table(self.rev),
        };
        debug_assert_eq!(topo.audit(), Ok(()));
        topo
    }

    /// Guard against index overflow for very large parameterizations.
    pub fn check_size(nodes: u128, channels: u128) -> Result<(), TopoError> {
        if nodes >= u32::MAX as u128 {
            return Err(TopoError::TooLarge {
                what: "nodes",
                size: nodes,
            });
        }
        if channels >= u32::MAX as u128 {
            return Err(TopoError::TooLarge {
                what: "channels",
                size: channels,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_assigned_densely_in_order() {
        let mut b = TopologyBuilder::new();
        let s = b.add_node(NodeKind::Switch { level: 1 });
        let l0 = b.add_node(NodeKind::Leaf);
        let l1 = b.add_node(NodeKind::Leaf);
        let (sl0, _) = b.connect_bidir(s, l0);
        let (sl1, _) = b.connect_bidir(s, l1);
        let t = b.finish();
        assert_eq!(t.channel(sl0).src_port, 0);
        assert_eq!(t.channel(sl1).src_port, 1);
        assert_eq!(t.out_channels(s), &[sl0, sl1]);
        t.audit().unwrap();
    }

    #[test]
    fn add_nodes_contiguous() {
        let mut b = TopologyBuilder::new();
        let first = b.add_nodes(NodeKind::Leaf, 4);
        assert_eq!(first, NodeId(0));
        assert_eq!(b.num_nodes(), 4);
    }

    #[test]
    fn size_guard() {
        assert!(TopologyBuilder::check_size(10, 10).is_ok());
        assert!(TopologyBuilder::check_size(u32::MAX as u128, 0).is_err());
        assert!(TopologyBuilder::check_size(0, u32::MAX as u128 + 5).is_err());
    }

    #[test]
    fn empty_topology() {
        let t = TopologyBuilder::new().finish();
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_channels(), 0);
        t.audit().unwrap();
    }
}
