//! Single-switch crossbar: the ideal reference fabric.

use crate::builder::TopologyBuilder;
use crate::error::TopoError;
use crate::ids::{ChannelId, NodeId};
use crate::kind::NodeKind;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// A `p`-port crossbar: one switch directly cabled to `p` leaves.
///
/// By construction it supports every permutation with no contention — each
/// leaf link carries traffic of exactly one source (up) or one destination
/// (down). The paper defines a nonblocking folded-Clos as one that "behaves
/// like a crossbar switch"; this type is the behavioural yardstick for the
/// throughput experiments (E11).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Crossbar {
    ports: usize,
    topo: Topology,
}

/// Convenience constructor for [`Crossbar`].
pub fn crossbar(ports: usize) -> Result<Crossbar, TopoError> {
    Crossbar::new(ports)
}

impl Crossbar {
    /// Build a `ports`-port crossbar.
    pub fn new(ports: usize) -> Result<Self, TopoError> {
        if ports == 0 {
            return Err(TopoError::InvalidParameter {
                name: "ports",
                value: 0,
                requirement: "must be >= 1",
            });
        }
        TopologyBuilder::check_size(ports as u128 + 1, 2 * ports as u128)?;
        let mut b = TopologyBuilder::with_capacity(ports + 1, 2 * ports);
        b.add_nodes(NodeKind::Leaf, ports);
        let sw = b.add_node(NodeKind::Switch { level: 1 });
        for p in 0..ports {
            b.connect_bidir(NodeId(p as u32), sw);
        }
        Ok(Self {
            ports,
            topo: b.finish(),
        })
    }

    /// Port (leaf) count.
    #[inline]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The single switch node.
    #[inline]
    pub fn switch(&self) -> NodeId {
        NodeId(self.ports as u32)
    }

    /// Leaf node `p`.
    #[inline]
    pub fn leaf(&self, p: usize) -> NodeId {
        debug_assert!(p < self.ports);
        NodeId(p as u32)
    }

    /// Uplink channel of leaf `p`.
    #[inline]
    pub fn up_channel(&self, p: usize) -> ChannelId {
        ChannelId((2 * p) as u32)
    }

    /// Downlink channel to leaf `p`.
    #[inline]
    pub fn down_channel(&self, p: usize) -> ChannelId {
        ChannelId((2 * p + 1) as u32)
    }

    /// Underlying flat topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let xb = crossbar(8).unwrap();
        assert_eq!(xb.ports(), 8);
        assert_eq!(xb.topology().num_nodes(), 9);
        assert_eq!(xb.topology().num_channels(), 16);
        assert_eq!(xb.topology().radix(xb.switch()), 8);
        xb.topology().audit().unwrap();
    }

    #[test]
    fn channel_formulas() {
        let xb = crossbar(4).unwrap();
        let t = xb.topology();
        for p in 0..4 {
            assert_eq!(t.channel(xb.up_channel(p)).src, xb.leaf(p));
            assert_eq!(t.channel(xb.down_channel(p)).dst, xb.leaf(p));
            assert_eq!(t.reverse(xb.up_channel(p)), Some(xb.down_channel(p)));
        }
    }

    #[test]
    fn rejects_zero_ports() {
        assert!(crossbar(0).is_err());
    }
}
