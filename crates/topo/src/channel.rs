//! Directed channels: the unit of contention in Lemma 1.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// One directed channel from `src` to `dst`.
///
/// The paper's nonblocking analysis (Lemma 1) is a per-link, per-direction
/// audit: an *uplink* (leaf→bottom or bottom→top) and the *downlink* on the
/// same cable carry independent traffic. We therefore model each cable as two
/// `Channel`s and never reason about undirected edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Channel {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Output port index on `src` (dense, per-node).
    pub src_port: u16,
    /// Input port index on `dst` (dense, per-node).
    pub dst_port: u16,
}

impl Channel {
    /// The endpoint that is not `node`, if `node` is an endpoint.
    #[inline]
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if self.src == node {
            Some(self.dst)
        } else if self.dst == node {
            Some(self.src)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_endpoint() {
        let ch = Channel {
            src: NodeId(3),
            dst: NodeId(7),
            src_port: 0,
            dst_port: 1,
        };
        assert_eq!(ch.other(NodeId(3)), Some(NodeId(7)));
        assert_eq!(ch.other(NodeId(7)), Some(NodeId(3)));
        assert_eq!(ch.other(NodeId(9)), None);
    }
}
