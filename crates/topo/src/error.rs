//! Error type for topology construction and queries.

use std::fmt;

/// Errors produced by topology builders and accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoError {
    /// A structural parameter (n, m, r, k, h, …) was zero or otherwise out of
    /// its legal range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was passed.
        value: usize,
        /// Human-readable constraint that was violated.
        requirement: &'static str,
    },
    /// Two parameter vectors that must have equal length differ.
    LengthMismatch {
        /// What the vectors describe.
        what: &'static str,
        /// Length of the first vector.
        left: usize,
        /// Length of the second vector.
        right: usize,
    },
    /// A node index was out of range for the topology.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// Number of nodes in the topology.
        num_nodes: usize,
    },
    /// No channel connects the two requested nodes in the requested
    /// direction.
    NoChannel {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
    },
    /// The requested topology would exceed the `u32` index space.
    TooLarge {
        /// What overflowed (nodes or channels).
        what: &'static str,
        /// The computed size.
        size: u128,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter {name} = {value}: {requirement}"),
            TopoError::LengthMismatch { what, left, right } => {
                write!(f, "length mismatch for {what}: {left} vs {right}")
            }
            TopoError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node index {node} out of range (num_nodes = {num_nodes})"
                )
            }
            TopoError::NoChannel { src, dst } => {
                write!(f, "no channel from node {src} to node {dst}")
            }
            TopoError::TooLarge { what, size } => {
                write!(
                    f,
                    "topology too large: {size} {what} exceeds u32 index space"
                )
            }
        }
    }
}

impl std::error::Error for TopoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TopoError::InvalidParameter {
            name: "n",
            value: 0,
            requirement: "must be >= 1",
        };
        assert!(e.to_string().contains("invalid parameter n = 0"));

        let e = TopoError::NoChannel { src: 1, dst: 2 };
        assert_eq!(e.to_string(), "no channel from node 1 to node 2");

        let e = TopoError::TooLarge {
            what: "channels",
            size: 1 << 40,
        };
        assert!(e.to_string().contains("channels"));
    }
}
