//! Extended generalized fat trees `XGFT(h; m⃗; w⃗)` (Öhring, Ibel, Das &
//! Kumar, IPPS 1995) and the derived families used as baselines:
//! k-ary n-trees (Petrini & Vanneschi) and m-port n-trees `FT(m, h)`
//! (Lin, Chung & Huang) — the paper's Table I comparator.

use crate::builder::TopologyBuilder;
use crate::compact::{build_paired_csr, Cable};
use crate::error::TopoError;
use crate::ids::NodeId;
use crate::kind::NodeKind;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// `XGFT(h; m_1..m_h; w_1..w_h)`: `h` switch levels above the leaves; each
/// level-`i` switch has `m_i` children and `w_{i+1}` parents.
///
/// Level-`i` element count is `(∏_{j>i} m_j) · (∏_{j<=i} w_j)`; leaves are
/// level 0. A level-`i` node is labeled `(x_h, …, x_{i+1}; y_i, …, y_1)`
/// with `x_j ∈ 0..m_j`, `y_j ∈ 0..w_j`; a level-`(i-1)` node connects to the
/// `w_i` level-`i` nodes that share all common digits (the free digit is
/// `y_i`).
///
/// Special cases provided as constructors:
/// * `ftree(n+m, r)` = `XGFT(2; n, r; 1, m)` (see [`Xgft::ftree_equivalent`]),
/// * k-ary n-tree = `XGFT(n; k,…,k; 1, k,…,k)` ([`kary_ntree`]),
/// * m-port n-tree `FT(m, h)` = `XGFT(h; m/2,…,m/2, m; 1, m/2,…,m/2)`
///   ([`mport_ntree`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Xgft {
    h: usize,
    ms: Vec<usize>,
    ws: Vec<usize>,
    /// First node id of each level, levels 0..=h, plus end sentinel.
    level_base: Vec<usize>,
    topo: Topology,
}

impl Xgft {
    /// Build `XGFT(h; ms; ws)`. `ms` and `ws` are indexed from level 1, so
    /// `ms[0]` is `m_1`.
    pub fn new(ms: &[usize], ws: &[usize]) -> Result<Self, TopoError> {
        let h = ms.len();
        if h == 0 {
            return Err(TopoError::InvalidParameter {
                name: "h",
                value: 0,
                requirement: "must be >= 1 level",
            });
        }
        if ws.len() != h {
            return Err(TopoError::LengthMismatch {
                what: "XGFT arity vectors (m⃗ vs w⃗)",
                left: ms.len(),
                right: ws.len(),
            });
        }
        for (&v, name) in ms.iter().zip(std::iter::repeat("m_i")) {
            if v == 0 {
                return Err(TopoError::InvalidParameter {
                    name,
                    value: v,
                    requirement: "all child arities must be >= 1",
                });
            }
        }
        for (&v, name) in ws.iter().zip(std::iter::repeat("w_i")) {
            if v == 0 {
                return Err(TopoError::InvalidParameter {
                    name,
                    value: v,
                    requirement: "all parent multiplicities must be >= 1",
                });
            }
        }

        // Level sizes.
        let mut count = vec![0usize; h + 1];
        let mut total: u128 = 0;
        for level in 0..=h {
            let mut c: u128 = 1;
            for &m in &ms[level..] {
                c = c.saturating_mul(m as u128);
            }
            for &w in &ws[..level] {
                c = c.saturating_mul(w as u128);
            }
            total = total.saturating_add(c);
            if c >= u32::MAX as u128 {
                return Err(TopoError::TooLarge {
                    what: "nodes",
                    size: c,
                });
            }
            count[level] = c as usize;
        }
        // Each level-(i-1) node has w_i parents -> cables per tier.
        let mut cables: u128 = 0;
        for i in 1..=h {
            cables = cables.saturating_add(count[i - 1] as u128 * ws[i - 1] as u128);
        }
        TopologyBuilder::check_size(total, 2 * cables)?;

        let mut level_base = vec![0usize; h + 2];
        for level in 0..=h {
            level_base[level + 1] = level_base[level] + count[level];
        }

        let mut kinds = Vec::with_capacity(total as usize);
        kinds.resize(count[0], NodeKind::Leaf);
        for level in 1..=h {
            kinds.resize(
                level_base[level + 1],
                NodeKind::Switch { level: level as u8 },
            );
        }

        // Cables are laid out tier-by-tier (level i-1 children to level i
        // parents), each tier in (child, yi) order — bottom-up so down-ports
        // precede up-ports on every switch, mirroring the historical connect
        // order. `wp` is ∏_{j<i} w_j, the y-suffix size of a level-(i-1)
        // label; a level-i parent's down-port for a child is the child's
        // free digit x_lo, its up-port for parent yi is (#children) + yi.
        let mut tier_base = vec![0usize; h + 2];
        let mut wps = vec![1usize; h + 1];
        for i in 1..=h {
            wps[i] = ws[..i - 1].iter().product();
            tier_base[i + 1] = tier_base[i] + count[i - 1] * ws[i - 1];
        }
        let total_cables = tier_base[h + 1];
        let ms_v = ms.to_vec();
        let ws_v = ws.to_vec();
        let lb = level_base.clone();
        let topo = build_paired_csr(
            kinds,
            |node| {
                let level = match lb.binary_search(&node) {
                    Ok(l) => l.min(h),
                    Err(l) => l - 1,
                };
                let down = if level == 0 { 0 } else { ms_v[level - 1] };
                let up = if level == h { 0 } else { ws_v[level] };
                down + up
            },
            total_cables,
            |l| {
                let mut i = 1;
                while tier_base[i + 1] <= l {
                    i += 1;
                }
                let j = l - tier_base[i];
                let (w_i, m_i, wp) = (ws_v[i - 1], ms_v[i - 1], wps[i]);
                let (child, yi) = (j / w_i, j % w_i);
                let (x, y) = (child / wp, child % wp);
                let parent = ((x / m_i) * w_i + yi) * wp + y;
                let down_ports = if i == 1 { 0 } else { ms_v[i - 2] };
                Cable {
                    a: (lb[i - 1] + child) as u32,
                    b: (lb[i] + parent) as u32,
                    port_a: (down_ports + yi) as u32,
                    port_b: (x % m_i) as u32,
                }
            },
        )?;
        Ok(Self {
            h,
            ms: ms.to_vec(),
            ws: ws.to_vec(),
            level_base,
            topo,
        })
    }

    /// The `XGFT(2; n, r; 1, m)` formulation of `ftree(n+m, r)`.
    pub fn ftree_equivalent(n: usize, m: usize, r: usize) -> Result<Self, TopoError> {
        Self::new(&[n, r], &[1, m])
    }

    /// Height (number of switch levels).
    #[inline]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Child arities `m_1..m_h`.
    #[inline]
    pub fn ms(&self) -> &[usize] {
        &self.ms
    }

    /// Parent multiplicities `w_1..w_h`.
    #[inline]
    pub fn ws(&self) -> &[usize] {
        &self.ws
    }

    /// Number of nodes at `level` (0 = leaves).
    #[inline]
    pub fn level_count(&self, level: usize) -> usize {
        self.level_base[level + 1] - self.level_base[level]
    }

    /// Node id of the `idx`-th node at `level`.
    #[inline]
    pub fn node(&self, level: usize, idx: usize) -> NodeId {
        debug_assert!(idx < self.level_count(level));
        NodeId((self.level_base[level] + idx) as u32)
    }

    /// `(level, index)` of a node id.
    pub fn locate(&self, id: NodeId) -> (usize, usize) {
        let i = id.index();
        let level = match self.level_base.binary_search(&i) {
            Ok(l) => l.min(self.h),
            Err(l) => l - 1,
        };
        (level, i - self.level_base[level])
    }

    /// Number of leaves (`∏ m_i`).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.level_count(0)
    }

    /// Total switch count across all levels.
    pub fn num_switches(&self) -> usize {
        (1..=self.h).map(|l| self.level_count(l)).sum()
    }

    /// Underlying flat topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Consume into the flat topology.
    pub fn into_topology(self) -> Topology {
        self.topo
    }
}

/// The k-ary n-tree of Petrini & Vanneschi: `k^n` leaves, `n` levels of
/// `k^{n-1}` switches built from `2k`-port switches.
pub fn kary_ntree(k: usize, n: usize) -> Result<Xgft, TopoError> {
    if k == 0 {
        return Err(TopoError::InvalidParameter {
            name: "k",
            value: k,
            requirement: "must be >= 1",
        });
    }
    if n == 0 {
        return Err(TopoError::InvalidParameter {
            name: "n",
            value: n,
            requirement: "must be >= 1",
        });
    }
    let ms = vec![k; n];
    let mut ws = vec![k; n];
    ws[0] = 1;
    Xgft::new(&ms, &ws)
}

/// The m-port n-tree `FT(m, h)` of Lin, Chung & Huang: `2(m/2)^h` leaves and
/// `(2h-1)(m/2)^{h-1}` switches of `m` ports — the paper's rearrangeably
/// nonblocking comparator (`FT(m, 2)` in Table I).
pub fn mport_ntree(m: usize, h: usize) -> Result<Xgft, TopoError> {
    if m < 2 || !m.is_multiple_of(2) {
        return Err(TopoError::InvalidParameter {
            name: "m",
            value: m,
            requirement: "must be even and >= 2",
        });
    }
    if h == 0 {
        return Err(TopoError::InvalidParameter {
            name: "h",
            value: h,
            requirement: "must be >= 1",
        });
    }
    let half = m / 2;
    let mut ms = vec![half; h];
    ms[h - 1] = m;
    let mut ws = vec![half; h];
    ws[0] = 1;
    Xgft::new(&ms, &ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ftree;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Xgft::new(&[], &[]).is_err());
        assert!(Xgft::new(&[2, 2], &[1]).is_err());
        assert!(Xgft::new(&[0], &[1]).is_err());
        assert!(Xgft::new(&[2], &[0]).is_err());
        assert!(kary_ntree(0, 2).is_err());
        assert!(kary_ntree(2, 0).is_err());
        assert!(mport_ntree(3, 2).is_err());
        assert!(mport_ntree(4, 0).is_err());
    }

    #[test]
    fn ftree_equivalent_matches_ftree_counts() {
        let x = Xgft::ftree_equivalent(2, 4, 5).unwrap();
        let ft = Ftree::new(2, 4, 5).unwrap();
        assert_eq!(x.num_leaves(), ft.num_leaves());
        assert_eq!(x.level_count(1), ft.r());
        assert_eq!(x.level_count(2), ft.m());
        assert_eq!(x.topology().num_channels(), ft.topology().num_channels());
        // Same radices per level.
        assert_eq!(x.topology().radix(x.node(1, 0)), 2 + 4);
        assert_eq!(x.topology().radix(x.node(2, 0)), 5);
        x.topology().audit().unwrap();
    }

    #[test]
    fn kary_ntree_counts() {
        // 2-ary 3-tree: 8 leaves, 3 levels of 4 switches, 4-port switches.
        let t = kary_ntree(2, 3).unwrap();
        assert_eq!(t.num_leaves(), 8);
        for level in 1..=3 {
            assert_eq!(t.level_count(level), 4, "level {level}");
        }
        assert_eq!(t.num_switches(), 12);
        // Interior switches have radix 2k = 4; top level has k = 2 (w_top
        // children only... top uses only down ports).
        assert_eq!(t.topology().radix(t.node(1, 0)), 4);
        assert_eq!(t.topology().radix(t.node(2, 0)), 4);
        assert_eq!(t.topology().radix(t.node(3, 0)), 2);
        t.topology().audit().unwrap();
    }

    #[test]
    fn mport_ntree_matches_lin_formulas() {
        // FT(m, h): 2(m/2)^h leaves, (2h-1)(m/2)^{h-1} switches.
        for (m, h) in [(4, 2), (6, 2), (8, 2), (4, 3), (6, 3)] {
            let t = mport_ntree(m, h).unwrap();
            let half = m / 2;
            assert_eq!(t.num_leaves(), 2 * half.pow(h as u32), "FT({m},{h}) leaves");
            assert_eq!(
                t.num_switches(),
                (2 * h - 1) * half.pow(h as u32 - 1),
                "FT({m},{h}) switches"
            );
            // Every switch radix is at most m, and interior radix is exactly m.
            for level in 1..=h {
                for idx in 0..t.level_count(level) {
                    let radix = t.topology().radix(t.node(level, idx));
                    assert!(radix <= m, "FT({m},{h}) level {level} radix {radix}");
                    if level < h {
                        assert_eq!(radix, m);
                    }
                }
            }
            t.topology().audit().unwrap();
        }
    }

    #[test]
    fn ft_m2_is_half_half_ftree() {
        // FT(N, 2) == ftree(N/2 + N/2, N): N level-1 switches, N/2 tops.
        let t = mport_ntree(8, 2).unwrap();
        assert_eq!(t.level_count(1), 8);
        assert_eq!(t.level_count(2), 4);
        assert_eq!(t.num_leaves(), 32);
        // Table I claim: FT(N,2) supports N^2/2 ports with 3N/2 switches.
        assert_eq!(t.num_leaves(), 8 * 8 / 2);
        assert_eq!(t.num_switches(), 3 * 8 / 2);
    }

    #[test]
    fn ft_m1_is_crossbar() {
        let t = mport_ntree(6, 1).unwrap();
        assert_eq!(t.num_leaves(), 6);
        assert_eq!(t.num_switches(), 1);
    }

    #[test]
    fn locate_roundtrip() {
        let t = kary_ntree(2, 3).unwrap();
        for level in 0..=3 {
            for idx in 0..t.level_count(level) {
                assert_eq!(t.locate(t.node(level, idx)), (level, idx));
            }
        }
    }

    #[test]
    fn every_leaf_reaches_every_leaf() {
        let t = kary_ntree(3, 2).unwrap();
        let d = t.topology().bfs_distances(t.node(0, 0));
        for idx in 0..t.num_leaves() {
            assert!(d[t.node(0, idx).index()] <= 4);
        }
    }

    #[test]
    fn parent_child_consistency() {
        // Every level-(i-1) node has exactly w_i distinct parents; every
        // level-i node exactly m_i distinct children.
        let t = Xgft::new(&[2, 3, 2], &[1, 2, 3]).unwrap();
        let topo = t.topology();
        for i in 1..=3 {
            for idx in 0..t.level_count(i - 1) {
                let node = t.node(i - 1, idx);
                let parents: std::collections::HashSet<_> = topo
                    .out_channels(node)
                    .iter()
                    .map(|&c| topo.channel(c).dst)
                    .filter(|&d| t.locate(d).0 == i)
                    .collect();
                assert_eq!(parents.len(), t.ws()[i - 1], "level {i} parents");
            }
            for idx in 0..t.level_count(i) {
                let node = t.node(i, idx);
                let children: std::collections::HashSet<_> = topo
                    .out_channels(node)
                    .iter()
                    .map(|&c| topo.channel(c).dst)
                    .filter(|&d| t.locate(d).0 == i - 1)
                    .collect();
                assert_eq!(children.len(), t.ms()[i - 1], "level {i} children");
            }
        }
    }
}
