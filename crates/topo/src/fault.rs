//! Fault injection: failed channels/switches as a non-mutating overlay.
//!
//! A production fabric is never pristine; the question the paper's spare-top
//! analysis raises ("what does `m = n² + k` buy?") only makes sense if we can
//! fail elements. Faults are modeled as an *overlay*: a [`FaultSet`] names
//! failed directed channels and switches, and a [`FaultyView`] combines a
//! borrowed [`Topology`] with a fault set into liveness queries. The
//! underlying `Topology` is never touched — injecting and clearing faults is
//! non-destructive by construction (and verified bit-for-bit in tests).
//!
//! Conventions:
//! * a failed *channel* kills one direction of a cable; use
//!   [`FaultSet::fail_link`] to cut both directions,
//! * a failed *switch* expands to every channel incident to it (in either
//!   direction) when the view is built — the switch can neither receive nor
//!   forward,
//! * samplers ([`FaultSet::random_links`], [`FaultSet::random_top_switches`])
//!   are deterministic in their seed so experiments are reproducible.

use std::collections::BTreeSet;
use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::ids::{ChannelId, NodeId};
use crate::topology::Topology;

/// Direction of a liveness transition: hardware going down or coming back.
///
/// Shared vocabulary for churn traces: the simulator's event schedule and
/// the core availability analyzer both describe a transient fault as a
/// `Down` transition later balanced by an `Up`. Ordered so that `Down`
/// sorts before `Up` — when both are scheduled for the same cycle, the
/// revival is applied last and wins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Transition {
    /// The element fails: it carries no traffic from this point on.
    Down,
    /// The element is repaired: it carries traffic again.
    Up,
}

impl Transition {
    /// True for [`Transition::Up`].
    pub fn is_up(self) -> bool {
        matches!(self, Transition::Up)
    }
}

/// A set of failed elements, independent of any topology.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    /// Explicitly failed directed channels.
    channels: BTreeSet<ChannelId>,
    /// Failed switches; each expands to all incident channels in a view.
    switches: BTreeSet<NodeId>,
}

impl FaultSet {
    /// The empty fault set (a pristine fabric).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if nothing is failed.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty() && self.switches.is_empty()
    }

    /// Fail one directed channel.
    pub fn fail_channel(&mut self, ch: ChannelId) -> &mut Self {
        self.channels.insert(ch);
        self
    }

    /// Fail a whole cable: the directed channel and its reverse (if any).
    pub fn fail_link(&mut self, topo: &Topology, ch: ChannelId) -> &mut Self {
        self.channels.insert(ch);
        if let Some(rev) = topo.reverse(ch) {
            self.channels.insert(rev);
        }
        self
    }

    /// Fail a switch (or any node): every incident channel dies.
    pub fn fail_switch(&mut self, node: NodeId) -> &mut Self {
        self.switches.insert(node);
        self
    }

    /// Repair one directed channel: the inverse of
    /// [`FaultSet::fail_channel`]. Repairing a channel that is not failed
    /// is a no-op. Note that a channel can *also* be dead via a failed
    /// endpoint switch — repair the switch to revive those.
    pub fn repair_channel(&mut self, ch: ChannelId) -> &mut Self {
        self.channels.remove(&ch);
        self
    }

    /// Repair a whole cable: the directed channel and its reverse (if any).
    /// The inverse of [`FaultSet::fail_link`].
    pub fn repair_link(&mut self, topo: &Topology, ch: ChannelId) -> &mut Self {
        self.channels.remove(&ch);
        if let Some(rev) = topo.reverse(ch) {
            self.channels.remove(&rev);
        }
        self
    }

    /// Repair a switch: the inverse of [`FaultSet::fail_switch`]. Its
    /// incident channels come back alive in future views unless they are
    /// also individually failed.
    pub fn repair_switch(&mut self, node: NodeId) -> &mut Self {
        self.switches.remove(&node);
        self
    }

    /// Apply one liveness transition to a directed channel: `Down` fails
    /// it, `Up` repairs it.
    pub fn apply_channel(&mut self, ch: ChannelId, transition: Transition) -> &mut Self {
        match transition {
            Transition::Down => self.fail_channel(ch),
            Transition::Up => self.repair_channel(ch),
        }
    }

    /// Remove all faults (the overlay analogue of "repair everything").
    pub fn clear(&mut self) {
        self.channels.clear();
        self.switches.clear();
    }

    /// Explicitly failed directed channels, ascending.
    pub fn failed_channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.channels.iter().copied()
    }

    /// Failed switches, ascending.
    pub fn failed_switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.switches.iter().copied()
    }

    /// Number of explicitly failed channels (not counting switch expansion).
    pub fn num_failed_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of failed switches.
    pub fn num_failed_switches(&self) -> usize {
        self.switches.len()
    }

    /// Union with another fault set.
    pub fn merge(&mut self, other: &FaultSet) -> &mut Self {
        self.channels.extend(other.channels.iter().copied());
        self.switches.extend(other.switches.iter().copied());
        self
    }

    /// Fail `f` distinct random cables (both directions of each), chosen
    /// uniformly from the topology's bidirectional links. Deterministic in
    /// `seed`. `f` is clamped to the number of cables.
    pub fn random_links(topo: &Topology, f: usize, seed: u64) -> Self {
        // One representative channel per cable: the lower-numbered direction
        // (unidirectional channels represent themselves).
        let mut cables: Vec<ChannelId> = topo
            .channel_ids()
            .filter(|&c| match topo.reverse(c) {
                Some(r) => c.0 < r.0,
                None => true,
            })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = f.min(cables.len());
        // Partial Fisher–Yates: the first f entries are a uniform sample.
        for i in 0..f {
            let j = rng.gen_range(i..cables.len());
            cables.swap(i, j);
        }
        let mut set = Self::new();
        for &c in &cables[..f] {
            set.fail_link(topo, c);
        }
        set
    }

    /// Fail `f` distinct random switches at the topology's highest switch
    /// level (the top switches of a folded Clos). Deterministic in `seed`.
    /// `f` is clamped to the number of top switches.
    pub fn random_top_switches(topo: &Topology, f: usize, seed: u64) -> Self {
        let level = topo.max_level();
        let mut tops: Vec<NodeId> = topo.switches_at_level(level).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let f = f.min(tops.len());
        for i in 0..f {
            let j = rng.gen_range(i..tops.len());
            tops.swap(i, j);
        }
        let mut set = Self::new();
        for &t in &tops[..f] {
            set.fail_switch(t);
        }
        set
    }
}

/// Why a path or element is unusable under a fault set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// The channel is failed (explicitly, or via a failed endpoint switch).
    DeadChannel {
        /// The failed channel.
        channel: ChannelId,
    },
    /// The node itself is failed.
    DeadNode {
        /// The failed node.
        node: NodeId,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::DeadChannel { channel } => {
                write!(f, "channel {} is failed", channel.0)
            }
            FaultError::DeadNode { node } => write!(f, "node {} is failed", node.0),
        }
    }
}

impl std::error::Error for FaultError {}

/// A topology as seen through a fault set: same structure, with dead
/// elements masked. Borrows the topology immutably — building and dropping
/// views never changes the underlying `Topology`.
#[derive(Clone, Debug)]
pub struct FaultyView<'a> {
    topo: &'a Topology,
    dead_channel: Vec<bool>,
    dead_node: Vec<bool>,
}

impl<'a> FaultyView<'a> {
    /// Apply `faults` to `topo`. Failed switches expand to all their
    /// incident channels (both directions). Out-of-range ids in the fault
    /// set are ignored (they cannot name anything in this topology).
    pub fn new(topo: &'a Topology, faults: &FaultSet) -> Self {
        let mut dead_channel = vec![false; topo.num_channels()];
        let mut dead_node = vec![false; topo.num_nodes()];
        for ch in faults.failed_channels() {
            if ch.index() < dead_channel.len() {
                dead_channel[ch.index()] = true;
            }
        }
        for node in faults.failed_switches() {
            if node.index() >= dead_node.len() {
                continue;
            }
            dead_node[node.index()] = true;
            for &c in topo.out_channels(node) {
                dead_channel[c.index()] = true;
            }
            for &c in topo.in_channels(node) {
                dead_channel[c.index()] = true;
            }
        }
        Self {
            topo,
            dead_channel,
            dead_node,
        }
    }

    /// A view with no faults.
    pub fn pristine(topo: &'a Topology) -> Self {
        Self::new(topo, &FaultSet::new())
    }

    /// The underlying (unmodified) topology.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// True if the channel carries traffic under this fault set.
    #[inline]
    pub fn channel_alive(&self, ch: ChannelId) -> bool {
        !self.dead_channel[ch.index()]
    }

    /// True if the node is not failed.
    #[inline]
    pub fn node_alive(&self, node: NodeId) -> bool {
        !self.dead_node[node.index()]
    }

    /// Out-channels of `node` that are still alive, in port order.
    pub fn live_out_channels(&self, node: NodeId) -> impl Iterator<Item = ChannelId> + '_ {
        self.topo
            .out_channels(node)
            .iter()
            .copied()
            .filter(move |&c| self.channel_alive(c))
    }

    /// In-channels of `node` that are still alive, in port order.
    pub fn live_in_channels(&self, node: NodeId) -> impl Iterator<Item = ChannelId> + '_ {
        self.topo
            .in_channels(node)
            .iter()
            .copied()
            .filter(move |&c| self.channel_alive(c))
    }

    /// Check every channel of a path; `Err` names the first dead one.
    pub fn path_alive(&self, channels: &[ChannelId]) -> Result<(), FaultError> {
        for &c in channels {
            if !self.channel_alive(c) {
                return Err(FaultError::DeadChannel { channel: c });
            }
        }
        Ok(())
    }

    /// Number of dead channels (including switch expansion).
    pub fn num_dead_channels(&self) -> usize {
        self.dead_channel.iter().filter(|&&d| d).count()
    }

    /// Number of dead nodes.
    pub fn num_dead_nodes(&self) -> usize {
        self.dead_node.iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::Ftree;

    #[test]
    fn overlay_is_non_destructive_bit_identical() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let before = ft.topology().clone();
        let mut faults = FaultSet::new();
        faults.fail_link(ft.topology(), ft.up_channel(0, 1));
        faults.fail_switch(ft.top(2));
        {
            let view = FaultyView::new(ft.topology(), &faults);
            assert!(view.num_dead_channels() > 0);
        }
        faults.clear();
        assert!(faults.is_empty());
        // The underlying topology is bit-identical after inject + clear.
        assert_eq!(*ft.topology(), before);
        ft.topology().audit().unwrap();
    }

    #[test]
    fn failed_switch_expands_to_incident_channels() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let t = ft.topology();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(1));
        let view = FaultyView::new(t, &faults);
        assert!(!view.node_alive(ft.top(1)));
        // All r uplinks into and r downlinks out of top 1 are dead.
        assert_eq!(view.num_dead_channels(), 2 * ft.r());
        for v in 0..ft.r() {
            assert!(!view.channel_alive(ft.up_channel(v, 1)));
            assert!(!view.channel_alive(ft.down_channel(1, v)));
            // Other tops unaffected.
            assert!(view.channel_alive(ft.up_channel(v, 0)));
        }
    }

    #[test]
    fn fail_link_cuts_both_directions() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let t = ft.topology();
        let mut faults = FaultSet::new();
        faults.fail_link(t, ft.up_channel(3, 2));
        let view = FaultyView::new(t, &faults);
        assert!(!view.channel_alive(ft.up_channel(3, 2)));
        assert!(!view.channel_alive(ft.down_channel(2, 3)));
        assert_eq!(view.num_dead_channels(), 2);
    }

    #[test]
    fn fail_channel_is_directional() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_channel(ft.up_channel(0, 0));
        let view = FaultyView::new(ft.topology(), &faults);
        assert!(!view.channel_alive(ft.up_channel(0, 0)));
        assert!(view.channel_alive(ft.down_channel(0, 0)));
    }

    #[test]
    fn path_alive_reports_first_dead_channel() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_channel(ft.up_channel(0, 1));
        let view = FaultyView::new(ft.topology(), &faults);
        let path = [
            ft.leaf_up_channel(0, 0),
            ft.up_channel(0, 1),
            ft.down_channel(1, 3),
            ft.leaf_down_channel(3, 1),
        ];
        assert_eq!(
            view.path_alive(&path),
            Err(FaultError::DeadChannel {
                channel: ft.up_channel(0, 1)
            })
        );
        let healthy = [
            ft.leaf_up_channel(0, 0),
            ft.up_channel(0, 2),
            ft.down_channel(2, 3),
            ft.leaf_down_channel(3, 1),
        ];
        assert!(view.path_alive(&healthy).is_ok());
    }

    #[test]
    fn live_out_channels_filters_dead() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let view = FaultyView::new(ft.topology(), &faults);
        let live: Vec<ChannelId> = view.live_out_channels(ft.bottom(0)).collect();
        // n leaf downlinks + (m - 1) surviving uplinks.
        assert_eq!(live.len(), ft.n() + ft.m() - 1);
        assert!(!live.contains(&ft.up_channel(0, 0)));
    }

    #[test]
    fn random_links_sampler_is_deterministic_and_exact() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let a = FaultSet::random_links(ft.topology(), 3, 7);
        let b = FaultSet::random_links(ft.topology(), 3, 7);
        assert_eq!(a, b);
        // 3 cables = 6 directed channels.
        assert_eq!(a.num_failed_channels(), 6);
        let c = FaultSet::random_links(ft.topology(), 3, 8);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn random_links_clamps_to_cable_count() {
        let ft = Ftree::new(1, 1, 1).unwrap(); // 1 leaf cable + 1 uplink cable
        let all = FaultSet::random_links(ft.topology(), 99, 0);
        assert_eq!(all.num_failed_channels(), ft.topology().num_channels());
    }

    #[test]
    fn random_top_switches_sampler_targets_top_level() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let set = FaultSet::random_top_switches(ft.topology(), 2, 11);
        assert_eq!(set.num_failed_switches(), 2);
        for s in set.failed_switches() {
            assert!(ft.top_index(s).is_some(), "sampled node must be a top");
        }
        // Deterministic.
        assert_eq!(set, FaultSet::random_top_switches(ft.topology(), 2, 11));
        // Clamped.
        let all = FaultSet::random_top_switches(ft.topology(), 99, 0);
        assert_eq!(all.num_failed_switches(), ft.m());
    }

    #[test]
    fn repair_inverts_each_fail() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let t = ft.topology();
        let mut faults = FaultSet::new();
        faults.fail_channel(ft.up_channel(0, 0));
        faults.fail_link(t, ft.up_channel(1, 2));
        faults.fail_switch(ft.top(3));
        faults.repair_channel(ft.up_channel(0, 0));
        faults.repair_link(t, ft.up_channel(1, 2));
        faults.repair_switch(ft.top(3));
        assert!(faults.is_empty());
        let view = FaultyView::new(t, &faults);
        assert_eq!(view.num_dead_channels(), 0);
        assert_eq!(view.num_dead_nodes(), 0);
    }

    #[test]
    fn repair_is_idempotent_and_selective() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_channel(ft.up_channel(0, 0));
        faults.fail_channel(ft.up_channel(0, 1));
        // Repairing a healthy channel is a no-op.
        faults.repair_channel(ft.up_channel(0, 2));
        faults.repair_channel(ft.up_channel(0, 1));
        faults.repair_channel(ft.up_channel(0, 1));
        assert_eq!(faults.num_failed_channels(), 1);
        let view = FaultyView::new(ft.topology(), &faults);
        assert!(!view.channel_alive(ft.up_channel(0, 0)));
        assert!(view.channel_alive(ft.up_channel(0, 1)));
    }

    #[test]
    fn switch_failure_shadows_channel_repair() {
        // A channel dead via its endpoint switch stays dead until the
        // *switch* is repaired; repairing the channel alone is not enough.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        faults.repair_channel(ft.up_channel(0, 0));
        let view = FaultyView::new(ft.topology(), &faults);
        assert!(!view.channel_alive(ft.up_channel(0, 0)));
        faults.repair_switch(ft.top(0));
        let view = FaultyView::new(ft.topology(), &faults);
        assert!(view.channel_alive(ft.up_channel(0, 0)));
    }

    #[test]
    fn apply_channel_follows_transition() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let ch = ft.up_channel(2, 3);
        let mut faults = FaultSet::new();
        faults.apply_channel(ch, Transition::Down);
        assert_eq!(faults.num_failed_channels(), 1);
        faults.apply_channel(ch, Transition::Up);
        assert!(faults.is_empty());
        assert!(Transition::Up.is_up());
        assert!(!Transition::Down.is_up());
        assert!(Transition::Down < Transition::Up, "revival sorts last");
    }

    #[test]
    fn merge_unions_faults() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut a = FaultSet::new();
        a.fail_channel(ft.up_channel(0, 0));
        let mut b = FaultSet::new();
        b.fail_switch(ft.top(3));
        a.merge(&b);
        assert_eq!(a.num_failed_channels(), 1);
        assert_eq!(a.num_failed_switches(), 1);
    }

    #[test]
    fn pristine_view_everything_alive() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let view = FaultyView::pristine(ft.topology());
        assert_eq!(view.num_dead_channels(), 0);
        assert_eq!(view.num_dead_nodes(), 0);
        assert!(view.topology().channel_ids().all(|c| view.channel_alive(c)));
    }
}
