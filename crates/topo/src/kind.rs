//! Node classification: leaves (communication endpoints) vs switches.

use serde::{Deserialize, Serialize};

/// What a node in the topology is.
///
/// The paper's `ftree(n+m, r)` has "two layers of switches and one layer of
/// leaf nodes"; general XGFTs have `h` switch levels. We store the level so
/// routing and rendering code can distinguish bottom/top switches without
/// re-deriving structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A communication source/destination ("processing node").
    Leaf,
    /// A switch at the given level; level 1 is adjacent to leaves, higher
    /// levels are further up the tree. Unidirectional Clos stages use levels
    /// 1 (input), 2 (middle), 3 (output).
    Switch {
        /// Tree level, starting at 1 for leaf-adjacent switches.
        level: u8,
    },
}

impl NodeKind {
    /// True for [`NodeKind::Leaf`].
    #[inline]
    pub fn is_leaf(self) -> bool {
        matches!(self, NodeKind::Leaf)
    }

    /// True for any switch.
    #[inline]
    pub fn is_switch(self) -> bool {
        matches!(self, NodeKind::Switch { .. })
    }

    /// Switch level, or `None` for leaves.
    #[inline]
    pub fn level(self) -> Option<u8> {
        match self {
            NodeKind::Leaf => None,
            NodeKind::Switch { level } => Some(level),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(NodeKind::Leaf.is_leaf());
        assert!(!NodeKind::Leaf.is_switch());
        assert_eq!(NodeKind::Leaf.level(), None);

        let sw = NodeKind::Switch { level: 2 };
        assert!(sw.is_switch());
        assert!(!sw.is_leaf());
        assert_eq!(sw.level(), Some(2));
    }
}
