//! Availability under churn: replay a liveness trace through the exact
//! flow-level checker, epoch by epoch.
//!
//! A churn trace is a sequence of [`ChurnEvent`]s — channels going down and
//! coming back up at given cycles. Between consecutive transition cycles the
//! fault set is constant, so the run decomposes into **epochs**; for each
//! epoch we ask the masked NONBLOCKINGADAPTIVE checker (see
//! [`crate::degraded::adaptive_degraded_verdict`]) whether the degraded
//! fabric is still nonblocking. The [`AvailabilityReport`] aggregates the
//! per-epoch verdicts two ways: the fraction of *epochs* that are
//! nonblocking, and the cycle-weighted fraction of *time* — the availability
//! figure an operator quotes. [`min_m_for_availability`] inverts the
//! analysis: the smallest top-stage width `m` whose availability under a
//! given flap model meets a target.
//!
//! This crate deliberately does not depend on `ftclos-sim`: traces come in
//! as plain event lists (the CLI converts the simulator's schedules), and
//! flap models for the `m` sweep come in as a trace-generating closure.

use crate::degraded::{adaptive_degraded_verdict, DegradedVerdict};
use ftclos_routing::RoutingError;
use ftclos_topo::{ChannelId, FaultSet, FaultyView, Ftree, Transition};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One channel liveness transition of a churn trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Cycle at the start of which the transition applies.
    pub cycle: u64,
    /// The directed channel changing state.
    pub channel: ChannelId,
    /// Whether the channel goes down or comes back up.
    pub transition: Transition,
}

impl ChurnEvent {
    /// Convenience constructor.
    pub fn new(cycle: u64, channel: ChannelId, transition: Transition) -> Self {
        Self {
            cycle,
            channel,
            transition,
        }
    }
}

/// The checker's verdict for one constant-fault interval of the trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochVerdict {
    /// First cycle of the epoch.
    pub start: u64,
    /// One past the last cycle of the epoch.
    pub end: u64,
    /// Directed channels down throughout the epoch.
    pub down_channels: usize,
    /// The flow-level verdict for this fault set.
    pub verdict: DegradedVerdict,
}

impl EpochVerdict {
    /// Cycles in the epoch.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the degraded fabric stayed nonblocking.
    pub fn nonblocking(&self) -> bool {
        self.verdict.survives()
    }
}

/// Per-epoch availability verdicts for one churn trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// Cycles analyzed (`[0, horizon)`).
    pub horizon: u64,
    /// One verdict per constant-fault interval, in time order.
    pub epochs: Vec<EpochVerdict>,
}

impl AvailabilityReport {
    /// Fraction of epochs that are nonblocking (1.0 for an empty trace).
    pub fn epoch_availability(&self) -> f64 {
        if self.epochs.is_empty() {
            return 1.0;
        }
        let ok = self.epochs.iter().filter(|e| e.nonblocking()).count();
        ok as f64 / self.epochs.len() as f64
    }

    /// Cycle-weighted fraction of time the fabric is nonblocking — the
    /// operator's availability number.
    pub fn time_availability(&self) -> f64 {
        let total: u64 = self.epochs.iter().map(EpochVerdict::cycles).sum();
        if total == 0 {
            return 1.0;
        }
        let ok: u64 = self
            .epochs
            .iter()
            .filter(|e| e.nonblocking())
            .map(EpochVerdict::cycles)
            .sum();
        ok as f64 / total as f64
    }

    /// The worst epoch: the blocking epoch with the most dead channels
    /// (`None` when every epoch is nonblocking).
    pub fn worst_epoch(&self) -> Option<&EpochVerdict> {
        self.epochs
            .iter()
            .filter(|e| !e.nonblocking())
            .max_by_key(|e| e.down_channels)
    }

    /// Largest number of contending pairs witnessed in any blocking epoch
    /// (0 when blocking, if any, shows up as unroutability or plan
    /// exhaustion rather than explicit contention).
    pub fn worst_contention(&self) -> usize {
        self.epochs
            .iter()
            .filter_map(|e| match &e.verdict {
                DegradedVerdict::Contention { pairs } => Some(pairs.len()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Whether cycle-weighted availability meets `target`.
    pub fn meets(&self, target: f64) -> bool {
        self.time_availability() >= target
    }
}

/// Replay `events` over `[0, horizon)` and check each constant-fault epoch
/// with the masked adaptive checker (`samples` permutations from `seed` per
/// distinct fault set; small fabrics are swept exhaustively).
///
/// Events are applied in `(cycle, channel, Down-before-Up)` order, so a
/// same-cycle flap of one channel nets to *up*, matching the simulator.
/// Events at or past the horizon are ignored. Identical fault sets are
/// checked once and the verdict reused — flapping traces revisit the same
/// few sets over and over. The distinct fault sets are independent, so the
/// replay first walks the trace to enumerate epochs, then judges each
/// *unique* fault set in parallel before assembling the time-ordered report.
///
/// # Errors
/// Propagates router-construction and pattern errors other than the
/// degradation outcomes captured in the verdicts.
pub fn availability(
    ft: &Ftree,
    events: &[ChurnEvent],
    horizon: u64,
    samples: usize,
    seed: u64,
) -> Result<AvailabilityReport, RoutingError> {
    let mut sorted: Vec<ChurnEvent> = events
        .iter()
        .copied()
        .filter(|e| e.cycle < horizon)
        .collect();
    sorted.sort_unstable();

    // Pass 1 (cheap): replay transitions into constant-fault epochs keyed by
    // their sorted failed-channel set.
    let mut faults = FaultSet::new();
    let mut intervals: Vec<(u64, u64, Vec<ChannelId>)> = Vec::new();
    let mut i = 0usize;
    let mut start = 0u64;
    while start < horizon {
        // Apply every transition scheduled at `start`.
        while i < sorted.len() && sorted[i].cycle == start {
            faults.apply_channel(sorted[i].channel, sorted[i].transition);
            i += 1;
        }
        let end = sorted.get(i).map(|e| e.cycle).unwrap_or(horizon);
        intervals.push((start, end, faults.failed_channels().collect()));
        start = end;
    }

    // Pass 2 (expensive): one checker run per unique fault set, in parallel.
    let unique: Vec<&Vec<ChannelId>> = {
        let mut seen = BTreeMap::new();
        for (_, _, key) in &intervals {
            seen.entry(key.clone()).or_insert(key);
        }
        seen.into_values().collect()
    };
    let verdicts: Vec<Result<DegradedVerdict, RoutingError>> = unique
        .par_iter()
        .map(|key| {
            let mut f = FaultSet::new();
            for &c in key.iter() {
                f.apply_channel(c, Transition::Down);
            }
            let view = FaultyView::new(ft.topology(), &f);
            adaptive_degraded_verdict(ft, &view, samples, seed)
        })
        .collect();
    let mut cache: BTreeMap<&Vec<ChannelId>, DegradedVerdict> = BTreeMap::new();
    for (key, verdict) in unique.iter().zip(verdicts) {
        cache.insert(key, verdict?);
    }

    let epochs = intervals
        .iter()
        .map(|(start, end, key)| EpochVerdict {
            start: *start,
            end: *end,
            down_channels: key.len(),
            verdict: cache[key].clone(),
        })
        .collect();
    Ok(AvailabilityReport { horizon, epochs })
}

/// The smallest `m ∈ [1, m_max]` for which `ftree(n+m, r)` keeps
/// cycle-weighted availability at least `target` under the flap model
/// `trace` (a deterministic trace generator — channel ids depend on `m`, so
/// the trace is rebuilt per fabric). Returns the winning `m` and its
/// report, or `None` when even `m_max` falls short.
///
/// # Errors
/// Fabric-construction failures surface as [`RoutingError::Precondition`];
/// checker errors propagate as in [`availability`].
#[allow(clippy::too_many_arguments)]
pub fn min_m_for_availability(
    n: usize,
    r: usize,
    m_max: usize,
    target: f64,
    horizon: u64,
    samples: usize,
    seed: u64,
    trace: impl Fn(&Ftree) -> Vec<ChurnEvent>,
) -> Result<Option<(usize, AvailabilityReport)>, RoutingError> {
    for m in 1..=m_max {
        let ft = Ftree::new(n, m, r).map_err(|e| RoutingError::Precondition {
            router: "min_m_for_availability",
            detail: e.to_string(),
        })?;
        let events = trace(&ft);
        let report = availability(&ft, &events, horizon, samples, seed)?;
        if report.meets(target) {
            return Ok(Some((m, report)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kill both directions of a cable at `cycle`.
    fn kill_link(events: &mut Vec<ChurnEvent>, ft: &Ftree, cycle: u64, ch: ChannelId) {
        events.push(ChurnEvent::new(cycle, ch, Transition::Down));
        if let Some(rev) = ft.topology().reverse(ch) {
            events.push(ChurnEvent::new(cycle, rev, Transition::Down));
        }
    }

    /// Revive both directions of a cable at `cycle`.
    fn revive_link(events: &mut Vec<ChurnEvent>, ft: &Ftree, cycle: u64, ch: ChannelId) {
        events.push(ChurnEvent::new(cycle, ch, Transition::Up));
        if let Some(rev) = ft.topology().reverse(ch) {
            events.push(ChurnEvent::new(cycle, rev, Transition::Up));
        }
    }

    #[test]
    fn fault_free_trace_is_fully_available() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let report = availability(&ft, &[], 1_000, 50, 1).unwrap();
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].cycles(), 1_000);
        assert!((report.epoch_availability() - 1.0).abs() < 1e-12);
        assert!((report.time_availability() - 1.0).abs() < 1e-12);
        assert!(report.worst_epoch().is_none());
        assert!(report.meets(1.0));
    }

    #[test]
    fn transient_violation_dents_availability() {
        // ftree(2+4, 3) is exactly nonblocking (m = n²): losing two uplink
        // cables of one switch transiently breaks the guarantee until the
        // repair lands. 200 of 1000 cycles degraded -> time availability 0.8.
        let ft = Ftree::new(2, 4, 3).unwrap();
        let mut events = Vec::new();
        for t in 0..2 {
            kill_link(&mut events, &ft, 300, ft.up_channel(0, t));
            revive_link(&mut events, &ft, 500, ft.up_channel(0, t));
        }
        let report = availability(&ft, &events, 1_000, 50, 1).unwrap();
        assert_eq!(report.epochs.len(), 3);
        assert!(report.epochs[0].nonblocking());
        assert!(!report.epochs[1].nonblocking(), "{:?}", report.epochs[1]);
        assert!(report.epochs[2].nonblocking(), "repair must restore");
        assert!(report.epoch_availability() < 1.0);
        assert!((report.time_availability() - 0.8).abs() < 1e-12);
        assert_eq!(report.worst_epoch().unwrap().start, 300);
        assert!(!report.meets(0.9));
        assert!(report.meets(0.8));
    }

    #[test]
    fn spare_tops_absorb_the_same_outage() {
        // With a spare configuration (m = n² + n) the same double flap
        // never blocks: the masked adaptive router plans around the dead
        // uplinks.
        let ft = Ftree::new(2, 6, 3).unwrap();
        let mut events = Vec::new();
        for t in 0..2 {
            kill_link(&mut events, &ft, 300, ft.up_channel(0, t));
            revive_link(&mut events, &ft, 500, ft.up_channel(0, t));
        }
        let report = availability(&ft, &events, 1_000, 50, 1).unwrap();
        assert!((report.time_availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_cycle_flap_nets_to_up() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let ch = ft.up_channel(0, 0);
        let events = vec![
            ChurnEvent::new(200, ch, Transition::Up),
            ChurnEvent::new(200, ch, Transition::Down),
        ];
        let report = availability(&ft, &events, 400, 50, 1).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[1].down_channels, 0);
        assert!((report.time_availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_past_horizon_are_ignored() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let events = vec![ChurnEvent::new(999, ft.up_channel(0, 0), Transition::Down)];
        let report = availability(&ft, &events, 500, 50, 1).unwrap();
        assert_eq!(report.epochs.len(), 1);
        assert!((report.time_availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_m_recovers_the_spare_top_threshold() {
        // Under a double-uplink flap, m = n² = 4 stays nonblocking only
        // outside the outage (availability 0.8) while m = n² + n = 6 rides
        // it out entirely: the sweep lands on 6 for a 0.99 target and on 4
        // for 0.8.
        let trace = |ft: &Ftree| {
            let mut events = Vec::new();
            for t in 0..2.min(ft.m()) {
                kill_link(&mut events, ft, 300, ft.up_channel(0, t));
                revive_link(&mut events, ft, 500, ft.up_channel(0, t));
            }
            events
        };
        let (m, report) = min_m_for_availability(2, 3, 8, 0.99, 1_000, 50, 1, trace)
            .unwrap()
            .expect("a wide enough fabric exists");
        assert_eq!(m, 6);
        assert!((report.time_availability() - 1.0).abs() < 1e-12);
        let (m_lo, _) = min_m_for_availability(2, 3, 8, 0.8, 1_000, 50, 1, trace)
            .unwrap()
            .unwrap();
        assert_eq!(m_lo, 4);
        // An unreachable target reports None.
        assert!(min_m_for_availability(2, 3, 5, 0.99, 1_000, 50, 1, trace)
            .unwrap()
            .is_none());
    }
}
