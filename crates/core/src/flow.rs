//! Flow-level throughput estimation.
//!
//! Before running the cycle-level simulator, the achievable throughput of a
//! routed pattern is visible analytically: if the most-loaded channel
//! carries `L` unit flows, fair sharing caps every flow at `1/L` of link
//! rate, so *saturation throughput* ≈ `1/L`. A nonblocking fabric keeps
//! `L = 1` for every permutation — crossbar behaviour — which is the
//! paper's definition of full bisection bandwidth delivery.

use ftclos_routing::{MultipathAssignment, RouteAssignment};

/// Ideal saturation throughput (fraction of injection bandwidth) of a
/// single-path assignment: `1 / max_channel_load`, or 1.0 for an empty
/// assignment.
pub fn saturation_throughput(assignment: &RouteAssignment) -> f64 {
    match assignment.max_channel_load() {
        0 => 1.0,
        l => 1.0 / l as f64,
    }
}

/// Ideal saturation throughput of a multipath spread under *perfect*
/// balancing: `1 / max_expected_load`. Note Section IV.B: the expectation
/// hides transient collisions, so this is an upper bound the packet
/// simulator will not exceed.
pub fn multipath_saturation_throughput(assignment: &MultipathAssignment) -> f64 {
    let l = assignment.max_expected_load();
    if l <= 0.0 {
        1.0
    } else {
        (1.0 / l).min(1.0)
    }
}

/// Summary statistics of channel loads in an assignment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadStats {
    /// Channels carrying at least one flow.
    pub used_channels: usize,
    /// Maximum load.
    pub max: u32,
    /// Mean load over used channels.
    pub mean: f64,
}

/// Compute [`LoadStats`] for an assignment.
pub fn load_stats(assignment: &RouteAssignment) -> LoadStats {
    let loads = assignment.channel_loads();
    let used_channels = loads.len();
    let max = loads.values().copied().max().unwrap_or(0);
    let mean = if used_channels == 0 {
        0.0
    } else {
        loads.values().map(|&v| v as f64).sum::<f64>() / used_channels as f64
    };
    LoadStats {
        used_channels,
        max,
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{route_all, DModK, ObliviousMultipath, SpreadPolicy, YuanDeterministic};
    use ftclos_topo::Ftree;
    use ftclos_traffic::{patterns, Permutation, SdPair};
    use rand::SeedableRng;

    #[test]
    fn nonblocking_saturates_at_one() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = YuanDeterministic::new(&ft).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let perm = patterns::random_full(10, &mut rng);
        let a = route_all(&r, &perm).unwrap();
        assert_eq!(saturation_throughput(&a), 1.0);
    }

    #[test]
    fn contended_assignment_halves() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = DModK::new(&ft);
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let a = route_all(&r, &perm).unwrap();
        assert_eq!(saturation_throughput(&a), 0.5);
    }

    #[test]
    fn multipath_expected_throughput() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let r = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let spread = r.spread_pattern(&perm).unwrap();
        // Leaf links carry full units -> expected max load 1 -> throughput 1
        // in expectation (though timing can still collide, per the paper).
        assert_eq!(multipath_saturation_throughput(&spread), 1.0);
    }

    #[test]
    fn load_stats_shape() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let r = DModK::new(&ft);
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let a = route_all(&r, &perm).unwrap();
        let stats = load_stats(&a);
        assert_eq!(stats.max, 2);
        assert!(stats.mean > 1.0 && stats.mean < 2.0);
        assert!(stats.used_channels >= 6);
        let empty = load_stats(&RouteAssignment::default());
        assert_eq!(empty.max, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(saturation_throughput(&RouteAssignment::default()), 1.0);
    }
}
