//! Adversarial fault-campaign engine: k-fault-tolerance certification,
//! randomized fault waves, and minimal killer-fault shrinking.
//!
//! The paper proves its fabrics nonblocking for the *pristine* topology; the
//! operational question is how many component failures that guarantee
//! survives. This module attacks any registered *property* — adaptive
//! all-pairs routability, the NONBLOCKINGADAPTIVE degraded-nonblocking
//! verdict, CDG deadlock-freedom, or deterministic-route coverage — with
//! seeded, deterministic fault campaigns over any topology:
//!
//! * [`certify_exhaustive`] enumerates **every** fault set up to size `k`
//!   and either certifies k-fault tolerance or returns the
//!   lexicographically-first killer, independent of thread count: the
//!   combination space is partitioned by first element, partitions run
//!   rayon-parallel, and a partition aborts only when a *strictly smaller*
//!   partition has already found a killer.
//! * [`run_randomized`] fires seeded waves of mixed link+switch fault sets;
//!   each wave is one parallel batch judged against the property, killers
//!   optionally shrunk in the same wave.
//! * [`shrink`] delta-debugs a killer fault set to a **1-minimal**
//!   counterexample — every proper subset obtained by removing one element
//!   survives — by repeated single-removal passes run to fixpoint, which is
//!   sound even for non-monotone properties.
//! * [`CampaignReport::criticality`] aggregates deduplicated minimal
//!   killers into a per-component criticality ranking: the hardening
//!   report (which cables and switches appear in the most minimal
//!   counterexamples).
//!
//! Campaigns checkpoint after every wave ([`CampaignReport::to_checkpoint_text`]
//! / [`CampaignReport::parse_checkpoint`]) and resume bit-identically: the
//! per-set RNG is keyed by `(seed, wave, index)`, never by elapsed state, so
//! an interrupted-and-resumed campaign produces the same report as an
//! uninterrupted one at any `RAYON_NUM_THREADS`.

use crate::cdg::cdg_of_masked_router;
use crate::degraded::{adaptive_degraded_verdict, DegradedVerdict};
use ftclos_obs::{Noop, Recorder};
use ftclos_routing::{PathArena, RoutingError, SinglePathRouter};
use ftclos_topo::{ChannelId, FaultSet, FaultyView, Ftree, NodeId, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One failable component: a bidirectional cable (named by either of its
/// directed channels; both directions die together) or a whole switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultElement {
    /// A cable, named by one of its directed [`ChannelId`]s.
    Link(ChannelId),
    /// A switch; all its attached channels die with it.
    Switch(NodeId),
}

impl FaultElement {
    /// Compact token form: `L<channel>` / `S<node>`.
    pub fn token(&self) -> String {
        match self {
            FaultElement::Link(c) => format!("L{}", c.0),
            FaultElement::Switch(n) => format!("S{}", n.0),
        }
    }

    /// Parse the [`FaultElement::token`] form.
    pub fn parse_token(s: &str) -> Option<FaultElement> {
        let (kind, num) = s.split_at(1);
        let id: u32 = num.parse().ok()?;
        match kind {
            "L" => Some(FaultElement::Link(ChannelId(id))),
            "S" => Some(FaultElement::Switch(NodeId(id))),
            _ => None,
        }
    }
}

/// A normalized fault set: sorted, deduplicated elements. Two vectors
/// naming the same components compare equal, and `Ord` gives the
/// lexicographic order certification reports killers in.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultVector {
    elems: Vec<FaultElement>,
}

impl FaultVector {
    /// Normalize a collection of elements (sort + dedup).
    pub fn new(mut elems: Vec<FaultElement>) -> Self {
        elems.sort_unstable();
        elems.dedup();
        Self { elems }
    }

    /// The elements, sorted ascending.
    pub fn elements(&self) -> &[FaultElement] {
        &self.elems
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when no component is failed.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The vector with element `i` removed (for shrinking).
    pub fn without(&self, i: usize) -> FaultVector {
        let mut elems = self.elems.clone();
        elems.remove(i);
        FaultVector { elems }
    }

    /// The union of this vector and `extra` (for antitonicity checks).
    pub fn with(&self, extra: &[FaultElement]) -> FaultVector {
        let mut elems = self.elems.clone();
        elems.extend_from_slice(extra);
        FaultVector::new(elems)
    }

    /// Expand into a [`FaultSet`]: links fail both directions of their
    /// cable, switches fail with all attached channels.
    pub fn to_fault_set(&self, topo: &Topology) -> FaultSet {
        let mut fs = FaultSet::new();
        for e in &self.elems {
            match e {
                FaultElement::Link(c) => {
                    fs.fail_link(topo, *c);
                }
                FaultElement::Switch(n) => {
                    fs.fail_switch(*n);
                }
            }
        }
        fs
    }

    /// Every directed channel this vector kills, sorted ascending.
    pub fn dead_channels(&self, topo: &Topology) -> Vec<ChannelId> {
        let mut dead = BTreeSet::new();
        for e in &self.elems {
            match e {
                FaultElement::Link(c) => {
                    dead.insert(*c);
                    if let Some(rev) = topo.reverse(*c) {
                        dead.insert(rev);
                    }
                }
                FaultElement::Switch(n) => {
                    dead.extend(topo.out_channels(*n).iter().copied());
                    dead.extend(topo.in_channels(*n).iter().copied());
                }
            }
        }
        dead.into_iter().collect()
    }

    /// Token form: elements joined with `+`, or `none` when empty.
    pub fn tokens(&self) -> String {
        if self.elems.is_empty() {
            return "none".to_string();
        }
        self.elems
            .iter()
            .map(FaultElement::token)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Parse the [`FaultVector::tokens`] form.
    pub fn parse_tokens(s: &str) -> Option<FaultVector> {
        if s == "none" {
            return Some(FaultVector::default());
        }
        let elems: Option<Vec<_>> = s.split('+').map(FaultElement::parse_token).collect();
        Some(FaultVector::new(elems?))
    }
}

impl fmt::Display for FaultVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tokens())
    }
}

/// One property evaluation: does the property still hold under the faults,
/// and a deterministic one-line explanation (witness or margin).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Judgement {
    /// True when the property survives the fault set.
    pub holds: bool,
    /// Deterministic detail: the first witness in a fixed scan order when
    /// violated, or the surviving margin. Never contains newlines.
    pub detail: String,
}

impl Judgement {
    fn holds(detail: impl Into<String>) -> Self {
        Judgement {
            holds: true,
            detail: detail.into(),
        }
    }

    fn killed(detail: impl Into<String>) -> Self {
        Judgement {
            holds: false,
            detail: detail.into(),
        }
    }
}

/// A property a campaign attacks. Implementations must be deterministic —
/// the same fault vector always yields the same [`Judgement`] — and
/// `Sync`, since waves judge fault sets rayon-parallel.
pub trait CampaignProperty: Sync {
    /// Stable name, recorded in certificates and checkpoints.
    fn name(&self) -> &'static str;
    /// Judge one fault set.
    fn judge(&self, faults: &FaultVector) -> Judgement;
}

/// What kind of cable a channel id names, precomputed per fabric.
#[derive(Clone, Copy, Debug)]
enum CableClass {
    /// Leaf ↔ bottom cable of host `host`.
    Leaf { host: usize },
    /// Bottom `v` ↔ top `t` cable.
    Fabric { v: usize, t: usize },
}

/// All-pairs **adaptive routability**: every SD pair keeps at least one
/// live path when routing may pick any top switch. Judged in closed form —
/// no path enumeration, no [`FaultyView`] — in `O(|F|²)` per fault set:
///
/// * a dead leaf cable, leaf node, or bottom switch severs its host(s)
///   outright (any fabric with ≥ 2 ports has a pair through them);
/// * a cross pair `(v, w)` dies exactly when every top is dead or cabled
///   off from `v` or `w`: `|C_v ∪ C_w ∪ T| = m`, where `C_x` is the set of
///   tops with a dead cable to bottom `x` and `T` the dead tops.
///
/// Only bottoms that lost a cable can have nonempty `C`, so the pair scan
/// touches at most `|F|²` bottom pairs plus one `|T| = m` check.
pub struct AdaptiveRoutability<'a> {
    ft: &'a Ftree,
    cable_class: Vec<Option<CableClass>>,
}

impl<'a> AdaptiveRoutability<'a> {
    /// Precompute the channel → cable classification for `ft`.
    pub fn new(ft: &'a Ftree) -> Self {
        let mut cable_class = vec![None; ft.topology().num_channels()];
        let (n, m, r) = (ft.n(), ft.m(), ft.r());
        for v in 0..r {
            for k in 0..n {
                let class = CableClass::Leaf { host: v * n + k };
                cable_class[ft.leaf_up_channel(v, k).index()] = Some(class);
                cable_class[ft.leaf_down_channel(v, k).index()] = Some(class);
            }
            for t in 0..m {
                let class = CableClass::Fabric { v, t };
                cable_class[ft.up_channel(v, t).index()] = Some(class);
                cable_class[ft.down_channel(t, v).index()] = Some(class);
            }
        }
        Self { ft, cable_class }
    }
}

impl CampaignProperty for AdaptiveRoutability<'_> {
    fn name(&self) -> &'static str {
        "routability"
    }

    fn judge(&self, faults: &FaultVector) -> Judgement {
        let ft = self.ft;
        let (n, m, r) = (ft.n(), ft.m(), ft.r());
        if n * r < 2 {
            return Judgement::holds("no SD pairs exist");
        }
        let mut dead_hosts: BTreeSet<usize> = BTreeSet::new();
        let mut dead_bottoms: BTreeSet<usize> = BTreeSet::new();
        let mut dead_tops: BTreeSet<usize> = BTreeSet::new();
        // Per-bottom set of tops reachable only through a dead cable.
        let mut cut: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for e in faults.elements() {
            match e {
                FaultElement::Link(c) => match self.cable_class.get(c.index()).copied().flatten() {
                    Some(CableClass::Leaf { host }) => {
                        dead_hosts.insert(host);
                    }
                    Some(CableClass::Fabric { v, t }) => {
                        cut.entry(v).or_default().insert(t);
                    }
                    None => return Judgement::killed(format!("unknown channel L{}", c.0)),
                },
                FaultElement::Switch(node) => {
                    if let Some(t) = ft.top_index(*node) {
                        dead_tops.insert(t);
                    } else if let Some(v) = ft.bottom_index(*node) {
                        dead_bottoms.insert(v);
                    } else if let Some((v, k)) = ft.leaf_coords(*node) {
                        dead_hosts.insert(v * n + k);
                    } else {
                        return Judgement::killed(format!("unknown node S{}", node.0));
                    }
                }
            }
        }
        // Witnesses in a fixed ascending scan order, so the detail string is
        // schedule-independent.
        if let Some(&h) = dead_hosts.iter().next() {
            return Judgement::killed(format!("host {h} severed (dead leaf cable or leaf)"));
        }
        if let Some(&v) = dead_bottoms.iter().next() {
            return Judgement::killed(format!("bottom switch {v} dead severs its {n} hosts"));
        }
        if r >= 2 {
            if dead_tops.len() == m {
                return Judgement::killed(format!("all {m} top switches dead"));
            }
            let affected: Vec<usize> = cut.keys().copied().collect();
            for &v in &affected {
                let blocked = cut[&v].union(&dead_tops).count();
                if blocked == m {
                    return Judgement::killed(format!("bottom {v} cut off from all {m} tops"));
                }
            }
            for (a, &v) in affected.iter().enumerate() {
                for &w in &affected[a + 1..] {
                    let blocked: BTreeSet<usize> = cut[&v]
                        .union(&cut[&w])
                        .chain(dead_tops.iter())
                        .copied()
                        .collect();
                    if blocked.len() == m {
                        return Judgement::killed(format!(
                            "no common live top for bottoms {v} and {w}"
                        ));
                    }
                }
            }
        }
        Judgement::holds("all pairs routable")
    }
}

/// The **degraded nonblocking** verdict: sweep permutations through the
/// masked NONBLOCKINGADAPTIVE ([`adaptive_degraded_verdict`]) and require
/// every one to route contention-free. The strongest — and most expensive —
/// property: a fabric can stay routable long after it stops being
/// nonblocking.
pub struct NonblockingMargin<'a> {
    ft: &'a Ftree,
    /// Random full permutations per judgement (fabrics with ≤ 6 ports are
    /// swept exhaustively regardless).
    samples: usize,
    seed: u64,
}

impl<'a> NonblockingMargin<'a> {
    /// Judge nonblocking survival with `samples` permutations from `seed`.
    pub fn new(ft: &'a Ftree, samples: usize, seed: u64) -> Self {
        Self { ft, samples, seed }
    }
}

impl CampaignProperty for NonblockingMargin<'_> {
    fn name(&self) -> &'static str {
        "nonblocking"
    }

    fn judge(&self, faults: &FaultVector) -> Judgement {
        let topo = self.ft.topology();
        let fs = faults.to_fault_set(topo);
        let view = FaultyView::new(topo, &fs);
        match adaptive_degraded_verdict(self.ft, &view, self.samples, self.seed) {
            Ok(DegradedVerdict::ContentionFree {
                permutations,
                exhaustive,
            }) => Judgement::holds(format!(
                "contention-free over {permutations} permutation(s){}",
                if exhaustive { " (exhaustive)" } else { "" }
            )),
            Ok(DegradedVerdict::Unroutable { src, dst }) => {
                Judgement::killed(format!("pair ({src}, {dst}) has no live path"))
            }
            Ok(DegradedVerdict::PlanExhausted { needed, available }) => Judgement::killed(format!(
                "plan exhausted: needed {needed} tops, {available} available"
            )),
            Ok(DegradedVerdict::Contention { pairs }) => {
                Judgement::killed(format!("contention among {} pairs", pairs.len()))
            }
            Err(e) => Judgement::killed(format!("routing error: {e}")),
        }
    }
}

/// **Deadlock-freedom** of a single-path router's channel dependency graph
/// under faults ([`cdg_of_masked_router`]): pairs whose path crosses dead
/// hardware contribute no dependencies, so for deterministic routers faults
/// only *remove* CDG edges — a fault campaign against an acyclic baseline
/// certifies that no fault set can introduce deadlock, while a cyclic
/// baseline (e.g. [`crate::ValleyRouter`]) lets campaigns hunt the fault
/// sets that *break* the cycle.
pub struct DeadlockFreedom<'a, R: SinglePathRouter + Sync + ?Sized> {
    topo: &'a Topology,
    router: &'a R,
}

impl<'a, R: SinglePathRouter + Sync + ?Sized> DeadlockFreedom<'a, R> {
    /// Attack `router`'s CDG over `topo`.
    pub fn new(topo: &'a Topology, router: &'a R) -> Self {
        Self { topo, router }
    }
}

impl<R: SinglePathRouter + Sync + ?Sized> CampaignProperty for DeadlockFreedom<'_, R> {
    fn name(&self) -> &'static str {
        "deadlock"
    }

    fn judge(&self, faults: &FaultVector) -> Judgement {
        let fs = faults.to_fault_set(self.topo);
        let view = FaultyView::new(self.topo, &fs);
        let analysis = cdg_of_masked_router(self.router, &view).check();
        match analysis.verdict.witness() {
            None => Judgement::holds(format!("acyclic CDG ({} deps)", analysis.num_deps)),
            Some(witness) => {
                let cycle = witness
                    .iter()
                    .map(|c| format!("L{}", c.0))
                    .collect::<Vec<_>>()
                    .join(">");
                Judgement::killed(format!("dependency cycle {cycle}"))
            }
        }
    }
}

/// **Deterministic-route coverage**: every pair of a prebuilt single-path
/// route set ([`PathArena`]) stays on live hardware. One fault set is a
/// scan of its dead channels against the arena's per-channel pair
/// incidence — no per-pair rerouting, no `O(p⁴)`. The detail names only
/// the lowest severed channel and its pair count, which is invariant under
/// host relabelings that permute pairs along the same physical routes.
pub struct ArenaRoutability<'a> {
    topo: &'a Topology,
    arena: PathArena,
}

impl<'a> ArenaRoutability<'a> {
    /// Route every pair of `router` once into an arena.
    ///
    /// # Errors
    /// Propagates route-walk failures from [`PathArena::build`].
    pub fn new<R: SinglePathRouter + ?Sized>(
        topo: &'a Topology,
        router: &R,
    ) -> Result<Self, RoutingError> {
        Ok(Self {
            topo,
            arena: PathArena::build(router)?,
        })
    }

    /// The underlying arena.
    pub fn arena(&self) -> &PathArena {
        &self.arena
    }
}

impl CampaignProperty for ArenaRoutability<'_> {
    fn name(&self) -> &'static str {
        "deterministic"
    }

    fn judge(&self, faults: &FaultVector) -> Judgement {
        for c in faults.dead_channels(self.topo) {
            let severed = self.arena.pairs_on(c).len();
            if severed > 0 {
                return Judgement::killed(format!("channel L{} severs {severed} pair(s)", c.0));
            }
        }
        Judgement::holds("no routed pair crosses a dead channel")
    }
}

/// Result of shrinking one killer fault set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shrunk {
    /// The 1-minimal killer: removing any single element makes the
    /// property hold again.
    pub minimal: FaultVector,
    /// Property evaluations spent shrinking.
    pub evals: u64,
    /// Judgement detail of the minimal killer.
    pub detail: String,
}

/// Delta-debug `killer` to a **1-minimal** counterexample.
///
/// Repeats single-removal passes until a full pass removes nothing: the
/// final pass proves every `minimal.without(i)` survives, which is exactly
/// 1-minimality — sound even for non-monotone properties, where removing
/// one element can change which *other* elements are load-bearing. If
/// `killer` itself survives (caller error), it is returned unshrunk.
pub fn shrink(property: &dyn CampaignProperty, killer: &FaultVector) -> Shrunk {
    let mut evals = 1u64;
    let first = property.judge(killer);
    if first.holds {
        return Shrunk {
            minimal: killer.clone(),
            evals,
            detail: first.detail,
        };
    }
    let mut cur = killer.clone();
    let mut detail = first.detail;
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < cur.len() {
            let cand = cur.without(i);
            let j = property.judge(&cand);
            evals += 1;
            if j.holds {
                i += 1;
            } else {
                cur = cand;
                detail = j.detail;
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }
    Shrunk {
        minimal: cur,
        evals,
        detail,
    }
}

/// The killer fault set a certification found, with its witness detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Killer {
    /// The fault set (lexicographically first among all killers of its
    /// size for exhaustive certification).
    pub faults: FaultVector,
    /// The property's violation detail.
    pub detail: String,
}

/// Outcome of [`certify_exhaustive`]: either a k-fault-tolerance
/// certificate or the smallest, lexicographically-first killer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Property name.
    pub property: String,
    /// Requested tolerance level.
    pub k: usize,
    /// Universe size the combinations were drawn from.
    pub universe_size: usize,
    /// Fault sets the certificate covers: `Σ C(universe, s)` over every
    /// size entered (including the empty set). A *planned* count — never a
    /// thread-schedule-dependent evaluation tally.
    pub sets_total: u128,
    /// Largest `s` such that **every** fault set of size ≤ `s` survives.
    /// Equals `k` when `killer` is `None`. Meaningless (0) when the
    /// baseline itself is violated (`killer` is the empty set).
    pub tolerant_up_to: usize,
    /// The smallest killer found, if any: lexicographically first among
    /// killers of the smallest killing size.
    pub killer: Option<Killer>,
}

impl Certificate {
    /// True when the property tolerates every fault set of size ≤ `k`.
    pub fn certified(&self) -> bool {
        self.killer.is_none()
    }
}

/// Saturating binomial coefficient in `u128`.
fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
    }
    acc
}

/// Visit every ascending `k`-subset of `lo..n` in lexicographic order.
/// Stops early when `visit` returns `false`.
fn for_each_combination(lo: usize, n: usize, k: usize, visit: &mut dyn FnMut(&[usize]) -> bool) {
    if k == 0 {
        visit(&[]);
        return;
    }
    if lo + k > n {
        return;
    }
    let mut idx: Vec<usize> = (lo..lo + k).collect();
    loop {
        if !visit(&idx) {
            return;
        }
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] < n - (k - i) {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Certify `property` against **every** fault set of size ≤ `k` drawn from
/// `universe`, or return the smallest killer.
///
/// Deterministic across thread counts: for each size the combination space
/// is partitioned by first element; partitions run in parallel, each
/// scanning its combinations in lexicographic order, and a partition aborts
/// only when a strictly smaller partition has registered a killer (via an
/// atomic first-partition watermark). The reduce takes the killer from the
/// smallest partition that found one — the globally lexicographically-first
/// killer of the smallest killing size, regardless of schedule.
pub fn certify_exhaustive(
    property: &dyn CampaignProperty,
    universe: &[FaultElement],
    k: usize,
) -> Certificate {
    certify_exhaustive_with(property, universe, k, &Noop)
}

/// [`certify_exhaustive`] with instrumentation: one `campaign.certify`
/// span, `campaign.sets` counting planned combinations per completed size.
pub fn certify_exhaustive_with<Rec: Recorder>(
    property: &dyn CampaignProperty,
    universe: &[FaultElement],
    k: usize,
    rec: &Rec,
) -> Certificate {
    let _span = rec.span("campaign.certify");
    let mut uni: Vec<FaultElement> = universe.to_vec();
    uni.sort_unstable();
    uni.dedup();
    let u = uni.len();
    let mut sets_total: u128 = 1; // the empty set
    let certificate = |tolerant: usize, sets_total: u128, killer: Option<Killer>| Certificate {
        property: property.name().to_string(),
        k,
        universe_size: u,
        sets_total,
        tolerant_up_to: tolerant,
        killer,
    };

    let baseline = property.judge(&FaultVector::default());
    rec.add("campaign.sets", 1);
    if !baseline.holds {
        return certificate(
            0,
            sets_total,
            Some(Killer {
                faults: FaultVector::default(),
                detail: baseline.detail,
            }),
        );
    }

    for s in 1..=k.min(u) {
        sets_total += binomial(u, s);
        rec.add(
            "campaign.sets",
            u64::try_from(binomial(u, s)).unwrap_or(u64::MAX),
        );
        let found_partition = AtomicUsize::new(usize::MAX);
        let hits: Vec<Option<Killer>> = (0..=u - s)
            .into_par_iter()
            .map(|first| {
                let mut hit = None;
                let mut set = Vec::with_capacity(s);
                for_each_combination(first + 1, u, s - 1, &mut |rest| {
                    if found_partition.load(Ordering::Relaxed) < first {
                        return false;
                    }
                    set.clear();
                    set.push(uni[first]);
                    set.extend(rest.iter().map(|&i| uni[i]));
                    let fv = FaultVector::new(set.clone());
                    let j = property.judge(&fv);
                    if j.holds {
                        true
                    } else {
                        found_partition.fetch_min(first, Ordering::Relaxed);
                        hit = Some(Killer {
                            faults: fv,
                            detail: j.detail,
                        });
                        false
                    }
                });
                hit
            })
            .collect();
        if let Some(killer) = hits.into_iter().flatten().next() {
            rec.add("campaign.killers", 1);
            return certificate(s - 1, sets_total, Some(killer));
        }
    }
    certificate(k, sets_total, None)
}

/// Knobs for one randomized campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed; every fault set is keyed by `(seed, wave, index)`.
    pub seed: u64,
    /// Waves to fire.
    pub waves: usize,
    /// Fault sets per wave (judged as one parallel batch).
    pub wave_size: usize,
    /// Distinct cables failed per set.
    pub links_per_set: usize,
    /// Distinct switches failed per set.
    pub switches_per_set: usize,
    /// Shrink every killer to a 1-minimal counterexample in-wave.
    pub shrink: bool,
}

/// One killer found by a randomized campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillerRecord {
    /// Wave that drew the set.
    pub wave: usize,
    /// Index within the wave.
    pub index: usize,
    /// The killer as drawn.
    pub faults: FaultVector,
    /// Violation detail of the drawn set.
    pub detail: String,
    /// The 1-minimal shrunk killer (when [`CampaignConfig::shrink`]).
    pub minimal: Option<FaultVector>,
    /// Property evaluations the shrink spent (0 when shrinking was off).
    pub shrink_evals: u64,
}

/// Campaign state: also the checkpoint payload — a finished report is just
/// a checkpoint with `waves_done == config.waves`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignReport {
    /// Property name.
    pub property: String,
    /// The configuration that produced (and resumes) this report.
    pub config: CampaignConfig,
    /// Waves completed so far.
    pub waves_done: usize,
    /// Property evaluations so far (wave judgements + shrink evaluations).
    pub sets_evaluated: u64,
    /// Killers found, in (wave, index) order.
    pub killers: Vec<KillerRecord>,
}

/// Per-component criticality ranking aggregated from minimal killers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Criticality {
    /// Distinct minimal killer sets aggregated.
    pub minimal_killers: usize,
    /// Cables by appearance count (count descending, id ascending).
    pub links: Vec<(ChannelId, u32)>,
    /// Switches by appearance count (count descending, id ascending).
    pub switches: Vec<(NodeId, u32)>,
}

impl CampaignReport {
    /// Rank components by how many **distinct minimal** killers they appear
    /// in — the hardening report: a component on every minimal
    /// counterexample is the single point whose protection buys the most.
    /// Falls back to the raw killer when a record was not shrunk.
    pub fn criticality(&self) -> Criticality {
        let uniq: BTreeSet<&FaultVector> = self
            .killers
            .iter()
            .map(|k| k.minimal.as_ref().unwrap_or(&k.faults))
            .collect();
        let mut links: BTreeMap<ChannelId, u32> = BTreeMap::new();
        let mut switches: BTreeMap<NodeId, u32> = BTreeMap::new();
        for fv in &uniq {
            for e in fv.elements() {
                match e {
                    FaultElement::Link(c) => *links.entry(*c).or_default() += 1,
                    FaultElement::Switch(n) => *switches.entry(*n).or_default() += 1,
                }
            }
        }
        let mut links: Vec<(ChannelId, u32)> = links.into_iter().collect();
        let mut switches: Vec<(NodeId, u32)> = switches.into_iter().collect();
        links.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        switches.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Criticality {
            minimal_killers: uniq.len(),
            links,
            switches,
        }
    }

    /// Serialize as the `ftclos-campaign-checkpoint v1` text format.
    pub fn to_checkpoint_text(&self) -> String {
        let mut out = String::new();
        out.push_str("ftclos-campaign-checkpoint v1\n");
        out.push_str(&format!("property {}\n", self.property));
        out.push_str(&format!("seed {}\n", self.config.seed));
        out.push_str(&format!("waves {}\n", self.config.waves));
        out.push_str(&format!("wave_size {}\n", self.config.wave_size));
        out.push_str(&format!("links {}\n", self.config.links_per_set));
        out.push_str(&format!("switches {}\n", self.config.switches_per_set));
        out.push_str(&format!("shrink {}\n", u8::from(self.config.shrink)));
        out.push_str(&format!("waves_done {}\n", self.waves_done));
        out.push_str(&format!("sets_evaluated {}\n", self.sets_evaluated));
        for k in &self.killers {
            let min = match &k.minimal {
                Some(fv) => fv.tokens(),
                None => "-".to_string(),
            };
            let detail = k.detail.replace(['\n', '\r'], " ");
            out.push_str(&format!(
                "killer {} {} {} min {} evals {} detail {}\n",
                k.wave,
                k.index,
                k.faults.tokens(),
                min,
                k.shrink_evals,
                detail
            ));
        }
        out.push_str("end\n");
        out
    }

    /// Parse the [`CampaignReport::to_checkpoint_text`] format.
    ///
    /// # Errors
    /// [`CampaignError::Checkpoint`] on any malformed or missing line.
    pub fn parse_checkpoint(text: &str) -> Result<CampaignReport, CampaignError> {
        let bad = |what: &str| CampaignError::Checkpoint(what.to_string());
        let mut lines = text.lines();
        if lines.next() != Some("ftclos-campaign-checkpoint v1") {
            return Err(bad("missing or unsupported header"));
        }
        let mut field = |name: &'static str| -> Result<String, CampaignError> {
            let line = lines
                .next()
                .ok_or_else(|| bad(&format!("missing '{name}' line")))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("expected '{name} <value>', got '{line}'")))
        };
        let property = field("property")?;
        let parse_num = |name: &str, v: &str| -> Result<u64, CampaignError> {
            v.parse()
                .map_err(|_| bad(&format!("non-numeric '{name}' value '{v}'")))
        };
        let seed = parse_num("seed", &field("seed")?)?;
        let waves = parse_num("waves", &field("waves")?)? as usize;
        let wave_size = parse_num("wave_size", &field("wave_size")?)? as usize;
        let links_per_set = parse_num("links", &field("links")?)? as usize;
        let switches_per_set = parse_num("switches", &field("switches")?)? as usize;
        let shrink = match field("shrink")?.as_str() {
            "0" => false,
            "1" => true,
            v => return Err(bad(&format!("shrink must be 0 or 1, got '{v}'"))),
        };
        let waves_done = parse_num("waves_done", &field("waves_done")?)? as usize;
        let sets_evaluated = parse_num("sets_evaluated", &field("sets_evaluated")?)?;
        let mut killers = Vec::new();
        for line in lines {
            if line == "end" {
                return Ok(CampaignReport {
                    property,
                    config: CampaignConfig {
                        seed,
                        waves,
                        wave_size,
                        links_per_set,
                        switches_per_set,
                        shrink,
                    },
                    waves_done,
                    sets_evaluated,
                    killers,
                });
            }
            let rest = line
                .strip_prefix("killer ")
                .ok_or_else(|| bad(&format!("expected 'killer' or 'end', got '{line}'")))?;
            let (head, detail) = rest
                .split_once(" detail ")
                .ok_or_else(|| bad("killer line missing ' detail '"))?;
            let parts: Vec<&str> = head.split_whitespace().collect();
            let [wave, index, tokens, min_kw, min, evals_kw, evals] = parts[..] else {
                return Err(bad(&format!("malformed killer line '{line}'")));
            };
            if min_kw != "min" || evals_kw != "evals" {
                return Err(bad(&format!("malformed killer line '{line}'")));
            }
            let faults = FaultVector::parse_tokens(tokens)
                .ok_or_else(|| bad(&format!("bad fault tokens '{tokens}'")))?;
            let minimal = if min == "-" {
                None
            } else {
                Some(
                    FaultVector::parse_tokens(min)
                        .ok_or_else(|| bad(&format!("bad minimal tokens '{min}'")))?,
                )
            };
            killers.push(KillerRecord {
                wave: parse_num("wave", wave)? as usize,
                index: parse_num("index", index)? as usize,
                faults,
                detail: detail.to_string(),
                minimal,
                shrink_evals: parse_num("evals", evals)?,
            });
        }
        Err(bad("missing 'end' terminator"))
    }
}

/// Campaign-level failures (property violations are *results*, not errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignError {
    /// A checkpoint file failed to parse.
    Checkpoint(String),
    /// A resume checkpoint disagrees with the requested campaign.
    Mismatch(String),
    /// Reading or writing campaign state failed.
    Io(String),
    /// A fault universe has fewer elements than one set draws.
    EmptyUniverse(&'static str),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Checkpoint(d) => write!(f, "malformed campaign checkpoint: {d}"),
            CampaignError::Mismatch(d) => write!(f, "checkpoint does not match campaign: {d}"),
            CampaignError::Io(d) => write!(f, "campaign I/O failed: {d}"),
            CampaignError::EmptyUniverse(which) => write!(
                f,
                "fault universe '{which}' has fewer elements than one set draws"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Mix `(wave, index)` into the master seed: golden-ratio multiplies keep
/// neighbouring coordinates decorrelated while staying pure functions of
/// the coordinates, so resumed campaigns redraw identical sets.
fn set_seed(seed: u64, wave: usize, index: usize) -> u64 {
    seed ^ (wave as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (index as u64 + 1)
            .wrapping_mul(0xD1B5_4A32_D192_ED03)
            .rotate_left(32)
}

/// Draw one fault set for `(wave, index)`: `links_per_set` distinct cables
/// and `switches_per_set` distinct switches by rejection sampling.
fn draw_set(
    links: &[ChannelId],
    switches: &[NodeId],
    cfg: &CampaignConfig,
    wave: usize,
    index: usize,
) -> FaultVector {
    let mut rng = ChaCha8Rng::seed_from_u64(set_seed(cfg.seed, wave, index));
    let mut elems = Vec::with_capacity(cfg.links_per_set + cfg.switches_per_set);
    let mut chosen = BTreeSet::new();
    while chosen.len() < cfg.links_per_set {
        chosen.insert(rng.gen_range(0..links.len()));
    }
    elems.extend(chosen.iter().map(|&i| FaultElement::Link(links[i])));
    chosen.clear();
    while chosen.len() < cfg.switches_per_set {
        chosen.insert(rng.gen_range(0..switches.len()));
    }
    elems.extend(chosen.iter().map(|&i| FaultElement::Switch(switches[i])));
    FaultVector::new(elems)
}

/// Fire seeded waves of random fault sets at `property`.
///
/// Each wave draws `wave_size` sets — every set keyed by
/// `(seed, wave, index)` only — judges them as one rayon-parallel batch,
/// and (with [`CampaignConfig::shrink`]) shrinks the wave's killers in
/// parallel. Pass a prior [`CampaignReport`] as `resume` to continue an
/// interrupted campaign: completed waves are skipped and the final report
/// is identical to an uninterrupted run.
///
/// # Errors
/// [`CampaignError::EmptyUniverse`] when a universe is smaller than one
/// set's draw; [`CampaignError::Mismatch`] when `resume` disagrees with
/// `property`/`cfg`.
pub fn run_randomized(
    property: &dyn CampaignProperty,
    links: &[ChannelId],
    switches: &[NodeId],
    cfg: &CampaignConfig,
    resume: Option<&CampaignReport>,
) -> Result<CampaignReport, CampaignError> {
    run_randomized_with(property, links, switches, cfg, resume, &Noop, &mut |_| {
        Ok(true)
    })
}

/// [`run_randomized`] with instrumentation and a per-wave callback.
///
/// `on_wave` runs after every completed wave with the up-to-date report —
/// the checkpoint hook: write [`CampaignReport::to_checkpoint_text`] to
/// disk, return `Ok(false)` to halt early (the report so far is returned),
/// or propagate an error to abort. Spans: `campaign.wave` per judged wave,
/// `campaign.shrink` per wave's shrink batch; counters `campaign.sets`,
/// `campaign.killers`.
///
/// # Errors
/// As [`run_randomized`], plus anything `on_wave` returns.
pub fn run_randomized_with<Rec: Recorder>(
    property: &dyn CampaignProperty,
    links: &[ChannelId],
    switches: &[NodeId],
    cfg: &CampaignConfig,
    resume: Option<&CampaignReport>,
    rec: &Rec,
    on_wave: &mut dyn FnMut(&CampaignReport) -> Result<bool, CampaignError>,
) -> Result<CampaignReport, CampaignError> {
    if cfg.links_per_set > links.len() {
        return Err(CampaignError::EmptyUniverse("links"));
    }
    if cfg.switches_per_set > switches.len() {
        return Err(CampaignError::EmptyUniverse("switches"));
    }
    let mut state = match resume {
        Some(prior) => {
            if prior.property != property.name() {
                return Err(CampaignError::Mismatch(format!(
                    "checkpoint is for property '{}', campaign attacks '{}'",
                    prior.property,
                    property.name()
                )));
            }
            if prior.config != *cfg {
                return Err(CampaignError::Mismatch(
                    "checkpoint configuration differs from the requested campaign".to_string(),
                ));
            }
            prior.clone()
        }
        None => CampaignReport {
            property: property.name().to_string(),
            config: *cfg,
            waves_done: 0,
            sets_evaluated: 0,
            killers: Vec::new(),
        },
    };
    for wave in state.waves_done..cfg.waves {
        let sets: Vec<FaultVector> = (0..cfg.wave_size)
            .map(|i| draw_set(links, switches, cfg, wave, i))
            .collect();
        let judged: Vec<Judgement> = {
            let _wave_span = rec.span("campaign.wave");
            sets.par_iter().map(|fv| property.judge(fv)).collect()
        };
        rec.add("campaign.sets", cfg.wave_size as u64);
        state.sets_evaluated += cfg.wave_size as u64;
        let killer_idx: Vec<usize> = judged
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.holds)
            .map(|(i, _)| i)
            .collect();
        rec.add("campaign.killers", killer_idx.len() as u64);
        let shrunk: Vec<Option<Shrunk>> = if cfg.shrink && !killer_idx.is_empty() {
            let _shrink_span = rec.span("campaign.shrink");
            killer_idx
                .par_iter()
                .map(|&i| Some(shrink(property, &sets[i])))
                .collect()
        } else {
            vec![None; killer_idx.len()]
        };
        for (&i, s) in killer_idx.iter().zip(shrunk) {
            let (minimal, shrink_evals) = match s {
                Some(s) => {
                    state.sets_evaluated += s.evals;
                    (Some(s.minimal), s.evals)
                }
                None => (None, 0),
            };
            state.killers.push(KillerRecord {
                wave,
                index: i,
                faults: sets[i].clone(),
                detail: judged[i].detail.clone(),
                minimal,
                shrink_evals,
            });
        }
        state.waves_done = wave + 1;
        if !on_wave(&state)? {
            break;
        }
    }
    Ok(state)
}

/// Every cable of `topo` by its representative (lower-numbered) directed
/// channel — the standard link universe for campaigns.
pub fn cable_universe(topo: &Topology) -> Vec<ChannelId> {
    (0..topo.num_channels() as u32)
        .map(ChannelId)
        .filter(|&c| match topo.reverse(c) {
            Some(rev) => c < rev,
            None => true,
        })
        .collect()
}

/// Every top-level switch of `topo` — the standard switch universe.
pub fn top_switch_universe(topo: &Topology) -> Vec<NodeId> {
    topo.switches_at_level(topo.max_level()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::ValleyRouter;
    use ftclos_routing::DModK;

    fn ft245() -> Ftree {
        Ftree::new(2, 4, 5).unwrap()
    }

    #[test]
    fn fault_vector_normalizes_and_round_trips() {
        let a = FaultVector::new(vec![
            FaultElement::Switch(NodeId(7)),
            FaultElement::Link(ChannelId(4)),
            FaultElement::Link(ChannelId(4)),
        ]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.tokens(), "L4+S7");
        assert_eq!(FaultVector::parse_tokens("S7+L4"), Some(a.clone()));
        assert_eq!(
            FaultVector::parse_tokens("none"),
            Some(FaultVector::default())
        );
        assert_eq!(FaultVector::parse_tokens("X3"), None);
        assert_eq!(a.without(0).tokens(), "S7");
    }

    #[test]
    fn combination_enumerator_is_lexicographic_and_complete() {
        let mut seen = Vec::new();
        for_each_combination(0, 5, 3, &mut |c| {
            seen.push(c.to_vec());
            true
        });
        assert_eq!(seen.len() as u128, binomial(5, 3));
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(seen, sorted);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen.last().unwrap(), &vec![2, 3, 4]);
        // Early exit stops immediately.
        let mut count = 0;
        for_each_combination(0, 5, 2, &mut |_| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn routability_judge_matches_structure() {
        let ft = ft245();
        let prop = AdaptiveRoutability::new(&ft);
        assert!(prop.judge(&FaultVector::default()).holds);
        // A dead leaf cable severs its host.
        let leaf = FaultVector::new(vec![FaultElement::Link(ft.leaf_up_channel(0, 0))]);
        let j = prop.judge(&leaf);
        assert!(!j.holds && j.detail.contains("host 0"));
        // One fabric cable: three other tops still serve bottom 0.
        let one = FaultVector::new(vec![FaultElement::Link(ft.up_channel(0, 1))]);
        assert!(prop.judge(&one).holds);
        // All four cables of bottom 0 cut it off.
        let cut = FaultVector::new(
            (0..4)
                .map(|t| FaultElement::Link(ft.up_channel(0, t)))
                .collect(),
        );
        let j = prop.judge(&cut);
        assert!(!j.holds && j.detail.contains("bottom 0"));
        // Complementary cable cuts on two bottoms with no common live top.
        let split = FaultVector::new(vec![
            FaultElement::Link(ft.up_channel(0, 0)),
            FaultElement::Link(ft.up_channel(0, 1)),
            FaultElement::Link(ft.up_channel(1, 2)),
            FaultElement::Link(ft.up_channel(1, 3)),
        ]);
        let j = prop.judge(&split);
        assert!(!j.holds && j.detail.contains("no common live top"));
        // Dead switches: a top is survivable, a bottom is not.
        assert!(
            prop.judge(&FaultVector::new(vec![FaultElement::Switch(ft.top(2))]))
                .holds
        );
        assert!(
            !prop
                .judge(&FaultVector::new(vec![FaultElement::Switch(ft.bottom(1))]))
                .holds
        );
    }

    #[test]
    fn routability_agrees_with_masked_adaptive_on_random_sets() {
        // The closed form must agree with the real masked router's
        // reachability on unroutability (not contention): compare against
        // NonblockingMargin's Unroutable outcomes for top-switch faults.
        let ft = ft245();
        let prop = AdaptiveRoutability::new(&ft);
        // Failing any 3 of 4 tops leaves one live top: routable.
        let three = FaultVector::new((0..3).map(|t| FaultElement::Switch(ft.top(t))).collect());
        assert!(prop.judge(&three).holds);
        // All 4 tops dead: cross pairs unroutable.
        let four = FaultVector::new((0..4).map(|t| FaultElement::Switch(ft.top(t))).collect());
        assert!(!prop.judge(&four).holds);
    }

    #[test]
    fn deterministic_property_uses_arena_incidence() {
        // r = 1: every pair is intra-bottom, fabric cables carry no route.
        let ft = Ftree::new(2, 4, 1).unwrap();
        let router = DModK::new(&ft);
        let prop = ArenaRoutability::new(ft.topology(), &router).unwrap();
        assert!(prop.judge(&FaultVector::default()).holds);
        let unused = FaultVector::new(vec![FaultElement::Link(ft.up_channel(0, 0))]);
        assert!(prop.judge(&unused).holds);
        let used = FaultVector::new(vec![FaultElement::Link(ft.leaf_up_channel(0, 0))]);
        let j = prop.judge(&used);
        assert!(!j.holds && j.detail.contains("severs"));
    }

    #[test]
    fn deadlock_property_baselines() {
        let ft = Ftree::new(1, 1, 4).unwrap();
        let valley = ValleyRouter::new(&ft);
        let prop = DeadlockFreedom::new(ft.topology(), &valley);
        let j = prop.judge(&FaultVector::default());
        assert!(!j.holds && j.detail.contains("cycle"));
        let ft2 = ft245();
        let dmodk = DModK::new(&ft2);
        let prop2 = DeadlockFreedom::new(ft2.topology(), &dmodk);
        assert!(prop2.judge(&FaultVector::default()).holds);
    }

    #[test]
    fn shrink_finds_one_minimal_core() {
        let ft = ft245();
        let prop = AdaptiveRoutability::new(&ft);
        // Superset killer: a severed leaf cable plus two harmless extras.
        let killer = FaultVector::new(vec![
            FaultElement::Link(ft.leaf_up_channel(0, 0)),
            FaultElement::Link(ft.up_channel(2, 1)),
            FaultElement::Switch(ft.top(3)),
        ]);
        let s = shrink(&prop, &killer);
        assert_eq!(
            s.minimal,
            FaultVector::new(vec![FaultElement::Link(ft.leaf_up_channel(0, 0))])
        );
        assert!(s.evals >= 3);
        // 1-minimality: removing the only element must survive.
        for i in 0..s.minimal.len() {
            assert!(prop.judge(&s.minimal.without(i)).holds);
        }
        // A surviving "killer" comes back unshrunk.
        let healthy = FaultVector::new(vec![FaultElement::Switch(ft.top(0))]);
        assert_eq!(shrink(&prop, &healthy).minimal, healthy);
    }

    #[test]
    fn certify_k2_on_ftree_8_64_exactly() {
        // Acceptance: exhaustive k = 2 certification over the 64 top
        // switches of ftree(8+64, 9). Any two dead tops leave 62 live ones,
        // so routability is certified, covering exactly 1 + C(64,1) +
        // C(64,2) fault sets.
        let ft = Ftree::new(8, 64, 9).unwrap();
        let prop = AdaptiveRoutability::new(&ft);
        let universe: Vec<FaultElement> = top_switch_universe(ft.topology())
            .into_iter()
            .map(FaultElement::Switch)
            .collect();
        assert_eq!(universe.len(), 64);
        let cert = certify_exhaustive(&prop, &universe, 2);
        assert!(cert.certified());
        assert_eq!(cert.tolerant_up_to, 2);
        assert_eq!(cert.sets_total, 1 + 64 + 2016);
    }

    #[test]
    fn certify_reports_lexicographically_first_killer() {
        let ft = ft245();
        let prop = AdaptiveRoutability::new(&ft);
        // Universe of every leaf cable: each single cable is already a
        // killer, and the smallest-id one must win regardless of schedule.
        let mut universe: Vec<FaultElement> = Vec::new();
        for v in 0..ft.r() {
            for k in 0..ft.n() {
                universe.push(FaultElement::Link(ft.leaf_up_channel(v, k)));
            }
        }
        let cert = certify_exhaustive(&prop, &universe, 2);
        assert!(!cert.certified());
        assert_eq!(cert.tolerant_up_to, 0);
        let killer = cert.killer.unwrap();
        assert_eq!(
            killer.faults,
            FaultVector::new(vec![FaultElement::Link(ft.leaf_up_channel(0, 0))])
        );
        // Only size-1 sets were planned after the baseline.
        assert_eq!(cert.sets_total, 1 + universe.len() as u128);
    }

    #[test]
    fn certify_flags_violated_baseline() {
        let ft = Ftree::new(1, 1, 4).unwrap();
        let valley = ValleyRouter::new(&ft);
        let prop = DeadlockFreedom::new(ft.topology(), &valley);
        let cert = certify_exhaustive(&prop, &[], 1);
        let killer = cert.killer.unwrap();
        assert!(killer.faults.is_empty());
        assert_eq!(cert.sets_total, 1);
    }

    fn campaign_cfg(waves: usize) -> CampaignConfig {
        CampaignConfig {
            seed: 0xC0FFEE,
            waves,
            wave_size: 8,
            links_per_set: 2,
            switches_per_set: 1,
            shrink: true,
        }
    }

    #[test]
    fn randomized_campaign_finds_and_shrinks_killers() {
        let ft = ft245();
        let prop = AdaptiveRoutability::new(&ft);
        let links = cable_universe(ft.topology());
        let switches = top_switch_universe(ft.topology());
        let report = run_randomized(&prop, &links, &switches, &campaign_cfg(6), None).unwrap();
        assert_eq!(report.waves_done, 6);
        assert_eq!(report.property, "routability");
        // Half the cables are leaf cables, each an instant killer: with 6
        // waves of 8 two-link draws, killers are certain for this seed.
        assert!(!report.killers.is_empty());
        for k in &report.killers {
            let minimal = k.minimal.as_ref().unwrap();
            assert!(!minimal.is_empty());
            assert!(!prop.judge(minimal).holds);
            for i in 0..minimal.len() {
                assert!(prop.judge(&minimal.without(i)).holds, "not 1-minimal");
            }
        }
        let crit = report.criticality();
        assert!(crit.minimal_killers > 0);
        assert!(!crit.links.is_empty() || !crit.switches.is_empty());
        // Ranking is count-descending.
        for w in crit.links.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn checkpoint_round_trips_and_resume_is_equivalent() {
        let ft = ft245();
        let prop = AdaptiveRoutability::new(&ft);
        let links = cable_universe(ft.topology());
        let switches = top_switch_universe(ft.topology());
        let cfg = campaign_cfg(4);
        let full = run_randomized(&prop, &links, &switches, &cfg, None).unwrap();

        // Halt after two waves, round-trip through text, resume.
        let mut checkpoint_text = String::new();
        let halted =
            run_randomized_with(&prop, &links, &switches, &cfg, None, &Noop, &mut |state| {
                checkpoint_text = state.to_checkpoint_text();
                Ok(state.waves_done < 2)
            })
            .unwrap();
        assert_eq!(halted.waves_done, 2);
        let parsed = CampaignReport::parse_checkpoint(&checkpoint_text).unwrap();
        assert_eq!(parsed, halted);
        let resumed = run_randomized(&prop, &links, &switches, &cfg, Some(&parsed)).unwrap();
        assert_eq!(resumed, full);
    }

    #[test]
    fn resume_rejects_mismatched_campaigns() {
        let ft = ft245();
        let prop = AdaptiveRoutability::new(&ft);
        let links = cable_universe(ft.topology());
        let switches = top_switch_universe(ft.topology());
        let cfg = campaign_cfg(2);
        let report = run_randomized(&prop, &links, &switches, &cfg, None).unwrap();
        let mut other = cfg;
        other.seed ^= 1;
        assert!(matches!(
            run_randomized(&prop, &links, &switches, &other, Some(&report)),
            Err(CampaignError::Mismatch(_))
        ));
        let dmodk = DModK::new(&ft);
        let arena_prop = ArenaRoutability::new(ft.topology(), &dmodk).unwrap();
        assert!(matches!(
            run_randomized(&arena_prop, &links, &switches, &cfg, Some(&report)),
            Err(CampaignError::Mismatch(_))
        ));
        assert!(matches!(
            run_randomized(&prop, &[], &switches, &cfg, None),
            Err(CampaignError::EmptyUniverse("links"))
        ));
    }

    #[test]
    fn checkpoint_parser_rejects_malformed_input() {
        assert!(CampaignReport::parse_checkpoint("bogus").is_err());
        let ok = concat!(
            "ftclos-campaign-checkpoint v1\n",
            "property routability\n",
            "seed 1\nwaves 2\nwave_size 3\nlinks 1\nswitches 0\nshrink 1\n",
            "waves_done 1\nsets_evaluated 3\n",
            "killer 0 2 L4+S9 min L4 evals 5 detail host 2 severed\n",
            "end\n"
        );
        let r = CampaignReport::parse_checkpoint(ok).unwrap();
        assert_eq!(r.killers.len(), 1);
        assert_eq!(r.killers[0].detail, "host 2 severed");
        assert_eq!(r.to_checkpoint_text(), ok);
        let truncated = ok.replace("end\n", "");
        assert!(CampaignReport::parse_checkpoint(&truncated).is_err());
        let garbled = ok.replace("min L4", "min X4");
        assert!(CampaignReport::parse_checkpoint(&garbled).is_err());
    }

    #[test]
    fn cable_universe_picks_representatives() {
        let ft = ft245();
        let cables = cable_universe(ft.topology());
        // One representative per bidirectional cable: rn leaf + rm fabric.
        assert_eq!(cables.len(), ft.r() * ft.n() + ft.r() * ft.m());
        for &c in &cables {
            let rev = ft.topology().reverse(c).unwrap();
            assert!(c < rev);
        }
        assert_eq!(top_switch_universe(ft.topology()).len(), ft.m());
    }
}
